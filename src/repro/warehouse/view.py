"""SB-tree-backed materialized temporal aggregate views.

The paper's proposal (Sections 1 and 3): instead of materializing a
temporal aggregate's contents, the warehouse materializes and maintains
an SB-tree *index* of the aggregate, which is cheap to update (O(log n)
per base change, even for tuples with long valid intervals) and can
reconstruct the view contents on demand.

A :class:`TemporalAggregateView` subscribes to a
:class:`~repro.relation.table.TemporalRelation` and routes every change
event into the right index structure for its aggregate kind and window
specification:

===============  =============================  ==========================
window           kinds                          backing structure
===============  =============================  ==========================
``0`` (default)  all five                       one SB-tree (Section 3)
fixed ``w > 0``  all five                       one SB-tree on stretched
                                                effect intervals (4.1)
``ANY_WINDOW``   SUM / COUNT / AVG              dual SB-trees (4.2)
``ANY_WINDOW``   MIN / MAX                      one MSB-tree (4.3)
===============  =============================  ==========================
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from .. import obs
from ..core.dual import DualTreeAggregate
from ..core.fixed_window import FixedWindowTree
from ..core.intervals import Interval, Time
from ..core.msbtree import MSBTree
from ..core.results import ConstantIntervalTable
from ..core.sbtree import SBTree
from ..core.store import NodeStore
from ..core.values import spec_for
from ..relation.table import TemporalRelation
from ..relation.tuples import ChangeEvent, ChangeKind, TemporalTuple

__all__ = ["TemporalAggregateView", "ANY_WINDOW"]


class _AnyWindow:
    """Sentinel: the view must answer queries for arbitrary offsets."""

    def __repr__(self) -> str:
        return "ANY_WINDOW"


ANY_WINDOW = _AnyWindow()

ValueOf = Callable[[TemporalTuple], Any]


class _ChangeHandler:
    """The subscriber object a view registers with its relation.

    Exposes the two-phase protocol: ``validate`` (may veto, must not
    mutate) and ``__call__`` (applies the change to the backing index).
    """

    def __init__(self, view: "TemporalAggregateView") -> None:
        self._view = view

    def validate(self, event: ChangeEvent) -> None:
        self._view._validate_change(event)

    def __call__(self, event: ChangeEvent) -> None:
        self._view._on_change(event)


class TemporalAggregateView:
    """An incrementally maintained temporal aggregate over a relation.

    Parameters
    ----------
    name:
        View name (used in the warehouse catalog and error messages).
    relation:
        The base :class:`TemporalRelation`; the view subscribes to its
        change stream and replays existing contents.
    kind:
        Aggregate kind.
    window:
        ``0`` for an instantaneous aggregate, a positive offset for a
        fixed-window cumulative aggregate, or :data:`ANY_WINDOW`.
    value_of:
        Extracts the aggregated quantity from a tuple (defaults to the
        tuple's ``value`` field).
    store / ended_store:
        Optional node stores (e.g. :class:`repro.storage.PagedNodeStore`)
        for the backing tree(s); dual-tree views take two.
    """

    def __init__(
        self,
        name: str,
        relation: TemporalRelation,
        kind,
        *,
        window: Union[Time, _AnyWindow] = 0,
        value_of: Optional[ValueOf] = None,
        store: Optional[NodeStore] = None,
        ended_store: Optional[NodeStore] = None,
        branching: int = 32,
        leaf_capacity: Optional[int] = None,
    ) -> None:
        self.name = name
        self.relation = relation
        self.spec = spec_for(kind)
        self.window = window
        self._value_of: ValueOf = value_of or (lambda row: row.value)
        tree_args = dict(branching=branching, leaf_capacity=leaf_capacity)
        if isinstance(window, _AnyWindow):
            if self.spec.invertible:
                self._index = DualTreeAggregate(
                    self.spec, store, ended_store, **tree_args
                )
            else:
                self._index = MSBTree(self.spec, store, **tree_args)
        elif window == 0:
            self._index = SBTree(self.spec, store, **tree_args)
        elif window > 0:
            self._index = FixedWindowTree(self.spec, window, store, **tree_args)
        else:
            raise ValueError(f"invalid window specification: {window!r}")
        self._handler = _ChangeHandler(self)
        relation.subscribe(self._handler, replay=True)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _validate_change(self, event: ChangeEvent) -> None:
        """Veto changes this view cannot absorb, before anything mutates."""
        if event.kind is ChangeKind.DELETE and not self.spec.invertible:
            raise ValueError(
                f"view {self.name!r}: {self.spec.kind} aggregates cannot "
                "be maintained under deletions (paper, Section 3.4); "
                "drop the view before retracting tuples"
            )

    def _on_change(self, event: ChangeEvent) -> None:
        if not obs.ENABLED:
            self._apply_change(event)
            return
        # Per-view maintenance cost: one op record per base-table change
        # routed into this view, named so each view is distinguishable.
        with obs.Op(
            f"view.{self.name}.maintain",
            obs.stores_of(self._index),
            subject=type(self._index).__name__,
        ):
            self._apply_change(event)

    def _apply_change(self, event: ChangeEvent) -> None:
        value = self._value_of(event.tuple)
        if event.kind is ChangeKind.INSERT:
            self._index.insert(value, event.tuple.valid)
        else:
            self._validate_change(event)
            self._index.delete(value, event.tuple.valid)

    def detach(self) -> None:
        """Stop maintaining this view."""
        self.relation.unsubscribe(self._handler)

    def compact(self) -> None:
        """Batch-compact the backing tree(s) (bmerge / mbmerge)."""
        if isinstance(self._index, DualTreeAggregate):
            self._index.current.compact()
            self._index.ended.compact()
        else:
            self._index.compact()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def index(self):
        """The backing index structure (for inspection and stats)."""
        return self._index

    @property
    def supports_any_window(self) -> bool:
        return isinstance(self.window, _AnyWindow)

    def value_at(self, t: Time, w: Optional[Time] = None) -> Any:
        """The (user-facing) aggregate value at instant *t*.

        Pass *w* only on ANY_WINDOW views; fixed-window views answer for
        their configured offset alone.
        """
        if w is None:
            if self.supports_any_window:
                raise ValueError(
                    f"view {self.name!r} answers arbitrary offsets; pass w"
                )
            return self._index.lookup_final(t)
        if not self.supports_any_window:
            raise ValueError(
                f"view {self.name!r} was built for window={self.window!r}; "
                "create it with window=ANY_WINDOW for arbitrary offsets"
            )
        if isinstance(self._index, DualTreeAggregate):
            return self._index.window_lookup_final(t, w)
        return self.spec.finalize(self._index.window_lookup(t, w))

    def table(self, w: Optional[Time] = None, **kwargs) -> ConstantIntervalTable:
        """Reconstruct the view contents (finalized values)."""
        if w is None:
            if self.supports_any_window:
                raise ValueError(
                    f"view {self.name!r} answers arbitrary offsets; pass w"
                )
            raw = self._index.to_table(**kwargs)
        elif isinstance(self._index, DualTreeAggregate):
            raw = self._index.window_table(w, **kwargs)
        elif isinstance(self._index, MSBTree):
            raw = self._index.window_query(
                Interval(float("-inf"), float("inf")), w
            )
        else:
            raise ValueError(f"view {self.name!r} cannot answer offset {w}")
        return raw.finalized(self.spec).coalesce()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TemporalAggregateView {self.name!r} {self.spec.kind} "
            f"window={self.window!r} over {self.relation.name!r}>"
        )
