"""Grouped temporal aggregate views: one maintained index per group key.

TSQL2-style ``GROUP BY attribute`` combined with temporal grouping: the
warehouse keeps a separate SB-tree (or MSB-tree / dual pair, via the
same routing as :class:`TemporalAggregateView`) for every distinct
value of a grouping key, creating indexes lazily as keys appear in the
change stream.

Example::

    view = GroupedAggregateView(
        "DosageByPatient", prescriptions, "sum",
        key_of=lambda row: row.payload["patient"],
    )
    view.value_at("Amy", 19)     # Amy's dosage at day 19
    view.values_at(19)           # every patient's value at day 19
    view.table("Amy")            # Amy's constant intervals
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional, Union

from ..core.intervals import Time
from ..core.results import ConstantIntervalTable
from ..core.values import spec_for
from ..relation.table import TemporalRelation
from ..relation.tuples import ChangeEvent, ChangeKind, TemporalTuple
from .view import TemporalAggregateView, ValueOf, _AnyWindow

__all__ = ["GroupedAggregateView"]

KeyOf = Callable[[TemporalTuple], Hashable]


class _GroupHandler:
    """Two-phase subscriber forwarding events into per-group views."""

    def __init__(self, view: "GroupedAggregateView") -> None:
        self._view = view

    def validate(self, event: ChangeEvent) -> None:
        self._view._validate_change(event)

    def __call__(self, event: ChangeEvent) -> None:
        self._view._on_change(event)


class GroupedAggregateView:
    """A family of maintained temporal aggregates, keyed by an attribute."""

    def __init__(
        self,
        name: str,
        relation: TemporalRelation,
        kind,
        *,
        key_of: KeyOf,
        window: Union[Time, _AnyWindow] = 0,
        value_of: Optional[ValueOf] = None,
        branching: int = 32,
        leaf_capacity: Optional[int] = None,
    ) -> None:
        self.name = name
        self.relation = relation
        self.spec = spec_for(kind)
        self.window = window
        self._key_of = key_of
        self._value_of = value_of
        self._tree_args = dict(branching=branching, leaf_capacity=leaf_capacity)
        self._groups: Dict[Hashable, TemporalAggregateView] = {}
        self._handler = _GroupHandler(self)
        relation.subscribe(self._handler, replay=True)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _group(self, key: Hashable) -> TemporalAggregateView:
        view = self._groups.get(key)
        if view is None:
            # A detached per-group view: this object feeds it events, so
            # it must not subscribe to the relation itself.
            view = TemporalAggregateView(
                f"{self.name}[{key!r}]",
                _InertRelation(self.relation.name),
                self.spec,
                window=self.window,
                value_of=self._value_of,
                **self._tree_args,
            )
            self._groups[key] = view
        return view

    def _validate_change(self, event: ChangeEvent) -> None:
        if event.kind is ChangeKind.DELETE and not self.spec.invertible:
            raise ValueError(
                f"view {self.name!r}: {self.spec.kind} aggregates cannot "
                "be maintained under deletions (paper, Section 3.4)"
            )

    def _on_change(self, event: ChangeEvent) -> None:
        self._group(self._key_of(event.tuple))._on_change(event)

    def detach(self) -> None:
        """Stop maintaining every group."""
        self.relation.unsubscribe(self._handler)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def keys(self):
        """The group keys seen so far (including now-empty groups)."""
        return self._groups.keys()

    def group(self, key: Hashable) -> TemporalAggregateView:
        """The maintained view for one group (KeyError if never seen)."""
        return self._groups[key]

    def _check_window(self, w: Optional[Time]) -> None:
        """The window/offset validation every query path shares.

        Unknown-key reads must behave exactly like known-key reads
        modulo the answer, so the argument checks cannot hide behind
        the lazily-created per-group views.
        """
        any_window = isinstance(self.window, _AnyWindow)
        if w is None and any_window:
            raise ValueError(
                f"view {self.name!r} answers arbitrary offsets; pass w"
            )
        if w is not None and not any_window:
            raise ValueError(
                f"view {self.name!r} was built for window={self.window!r}; "
                "create it with window=ANY_WINDOW for arbitrary offsets"
            )

    def value_at(self, key: Hashable, t: Time, w: Optional[Time] = None) -> Any:
        """One group's (finalized) value at instant *t*.

        Unknown keys yield the aggregate's empty value rather than an
        error: a group that never appeared is an empty group.
        """
        self._check_window(w)
        if key not in self._groups:
            return self.spec.finalize(self.spec.v0)
        return self._groups[key].value_at(t, w)

    def values_at(self, t: Time, w: Optional[Time] = None) -> Dict[Hashable, Any]:
        """Every known group's value at instant *t*.

        Well-defined on an empty view: no groups seen yet means an
        empty mapping, never an error (beyond window validation).
        """
        self._check_window(w)
        return {key: view.value_at(t, w) for key, view in self._groups.items()}

    def table(self, key: Hashable, w: Optional[Time] = None):
        """One group's reconstructed constant-interval table.

        An unknown key reconstructs as the *empty* table (no constant
        intervals), mirroring :meth:`value_at`'s empty-group rule --
        DAG refresh reads groups it has merely heard of, which must not
        raise.
        """
        self._check_window(w)
        if key not in self._groups:
            return ConstantIntervalTable([])
        return self._groups[key].table(w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GroupedAggregateView {self.name!r} {self.spec.kind} "
            f"groups={len(self._groups)}>"
        )


class _InertRelation:
    """A do-nothing relation stand-in for internally fed views."""

    def __init__(self, name: str) -> None:
        self.name = name

    def subscribe(self, subscriber, *, replay: bool = True) -> None:
        pass

    def unsubscribe(self, subscriber) -> None:
        pass
