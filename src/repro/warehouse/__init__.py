"""Temporal data warehouse: maintained views and direct materialization."""

from .grouped import GroupedAggregateView
from .manager import TemporalWarehouse
from .materialized import MaterializedView
from .view import ANY_WINDOW, TemporalAggregateView

__all__ = [
    "ANY_WINDOW",
    "GroupedAggregateView",
    "MaterializedView",
    "TemporalAggregateView",
    "TemporalWarehouse",
]
