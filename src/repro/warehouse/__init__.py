"""Temporal data warehouse: maintained views and direct materialization."""

from .dynamic import (
    DOWNSTREAM,
    ChangeLog,
    CycleError,
    DynamicCatalog,
    DynamicView,
    ViewDependencyError,
    ViewReading,
    parse_lag,
)
from .grouped import GroupedAggregateView
from .manager import TemporalWarehouse
from .materialized import MaterializedView
from .view import ANY_WINDOW, TemporalAggregateView

__all__ = [
    "ANY_WINDOW",
    "DOWNSTREAM",
    "ChangeLog",
    "CycleError",
    "DynamicCatalog",
    "DynamicView",
    "GroupedAggregateView",
    "MaterializedView",
    "TemporalAggregateView",
    "TemporalWarehouse",
    "ViewDependencyError",
    "ViewReading",
    "parse_lag",
]
