"""Dynamic materialized views: a DAG of lag-driven incremental refreshes.

The rest of :mod:`repro.warehouse` maintains each view *eagerly*: every
base-table change descends the view's SB-tree before the insert call
returns.  That is the paper's O(log n) bound per change, but it couples
every writer to every view.  This module adds Snowflake-style *dynamic
tables* on top of the same machinery:

* every node (base table or view) keeps a :class:`ChangeLog` -- the
  sequence-numbered stream of :class:`~repro.relation.tuples.ChangeEvent`
  records the journal already motivates;
* a :class:`DynamicView` declares its **sources** (base tables or other
  views), an aggregate kind, an optional grouping key, and a freshness
  target (``lag="5s"``, ``lag="1h"``, or ``lag="downstream"`` -- refresh
  only when a dependent needs it);
* a refresh consumes only the change records recorded since the view's
  per-source **watermark** (never a full rebuild): each event updates
  the affected group's SB-tree in O(log n), and only the affected
  (key, time-range) regions of the view's *output rows* are
  regenerated and re-emitted as change events for downstream views;
* the :class:`DynamicCatalog` owns the dependency DAG (cycle rejection
  at ``create_view`` time), refreshes stale views in topological order
  on each :meth:`~DynamicCatalog.tick`, persists per-view watermarks
  and change logs to ``<directory>/dynamic.json`` so refresh survives a
  restart, and serves reads that report ``(value, as_of_watermark,
  staleness_s)`` -- optionally pinned to one consistent watermark
  across several views in a single report query.

Consistency model
-----------------

A view's state always equals "the aggregate of everything its sources
had emitted up to ``watermarks``"; refreshes are atomic under the
catalog lock, so a reader never observes a half-applied batch.  A
:meth:`~DynamicCatalog.report` with ``pin=True`` refreshes the whole
ancestor closure of the requested views first, which makes every
returned value reflect the *same* base-table log heads -- the
snapshot-consistent multi-view read of PAPERS.md's "Concurrent
aggregate queries", implemented with batching per refresh tick as "The
Persistent Buffer Tree" argues (amortize change application, never
descend per event on the hot path).

MIN/MAX views are maintainable only while their sources never emit
deletions (paper, Section 3.4).  Because an upstream *view* regenerates
affected regions by retracting and re-emitting rows, MIN/MAX cannot be
declared over another view -- :meth:`DynamicCatalog.create_view`
rejects that shape up front instead of failing mid-refresh.

Output-row semantics: a view materializes one temporal tuple per
constant interval of its (per-group) aggregate **where the internal
value differs from the aggregate's initial value** ``v0``; regions
where the aggregate sits at ``v0`` (no contributing tuples, or exact
cancellation) carry no row.  Downstream SUM/COUNT/AVG views are
insensitive to the dropped rows (``v0`` contributes nothing), and the
recompute-from-scratch oracle in the tests mirrors the same rule.

Robustness (DESIGN.md section 14)
---------------------------------

* **Bounded retention.**  Consumed change-log prefixes are compacted
  away on every :meth:`DynamicCatalog.save` (knob: ``retention``);
  what the dropped records built is captured instead as per-group
  *tree checkpoints* -- the coalesced internal step function of each
  group's SB-tree -- so a restore replays only the unconsumed tail.
* **Crash safety.**  ``save`` is fault-injectable (``faults=``) at
  labeled crash points (torn temp write, fsync failure, crash
  before/after the rename) and always retains the previous checkpoint
  as ``dynamic.json.prev``; ``load`` falls back to it when the main
  checkpoint is corrupt (or raises :class:`CatalogCheckpointError`
  under ``strict=True``) and never adopts a leftover temp file.
* **Quarantine.**  A view whose refresh raises during a scheduler
  :meth:`~DynamicCatalog.tick` is quarantined: siblings keep
  refreshing, reads serve its last-good values flagged
  ``degraded=True``, and :meth:`DynamicCatalog.repair` retries.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

from .. import obs
from ..core.intervals import Interval, NEG_INF, POS_INF, Time
from ..core.sbtree import SBTree
from ..core.values import AggregateSpec, spec_for
from ..relation.table import TemporalRelation
from ..relation.tuples import ChangeEvent, ChangeKind

__all__ = [
    "DOWNSTREAM",
    "CATALOG_CRASH_POINTS",
    "parse_lag",
    "format_lag",
    "ChangeLog",
    "LogRecord",
    "ViewReading",
    "DynamicView",
    "DynamicCatalog",
    "ViewDependencyError",
    "CycleError",
    "CatalogCheckpointError",
]

#: Name of the catalog's checkpoint file inside its directory.
CHECKPOINT_NAME = "dynamic.json"

#: Labeled crash points the checkpoint path consults (via ``faults=``),
#: in the order :meth:`DynamicCatalog.save` reaches them.  Torn temp
#: writes and fsync failures are armed separately through the
#: injector's ``tear_write``/``fail_fsyncs`` on the ``"view_ckpt"``
#: write label.
CATALOG_CRASH_POINTS = (
    "view_ckpt:serialized",
    "view_ckpt:before_rename",
    "view_ckpt:after_rename",
)

#: Write/fsync label the checkpoint temp-file I/O is intercepted under.
CATALOG_WRITE_LABEL = "view_ckpt"


class CatalogCheckpointError(RuntimeError):
    """A catalog checkpoint that cannot be restored (corrupt or absent)."""


class ViewDependencyError(ValueError):
    """An invalid DAG operation: unknown source, dependent in the way."""


class CycleError(ViewDependencyError):
    """Creating the view would introduce a dependency cycle."""


class _Downstream:
    """Sentinel lag: refresh only when a dependent (or a reader) needs it."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "DOWNSTREAM"


DOWNSTREAM = _Downstream()

_LAG_UNITS = {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_lag(lag: Any) -> Union[float, _Downstream]:
    """Parse a freshness target: ``"5s"``, ``"1h"``, seconds, ``"downstream"``.

    Numbers are taken as seconds.  Raises ``ValueError`` for anything
    else (including negative lags).
    """
    if lag is DOWNSTREAM or (isinstance(lag, str) and lag.lower() == "downstream"):
        return DOWNSTREAM
    if isinstance(lag, bool):
        raise ValueError(f"invalid lag {lag!r}")
    if isinstance(lag, (int, float)):
        if lag < 0:
            raise ValueError(f"lag must be non-negative, got {lag!r}")
        return float(lag)
    if isinstance(lag, str):
        text = lag.strip().lower()
        for suffix in sorted(_LAG_UNITS, key=len, reverse=True):
            if text.endswith(suffix):
                try:
                    scale = float(text[: -len(suffix)])
                except ValueError:
                    break
                if scale < 0:
                    raise ValueError(f"lag must be non-negative, got {lag!r}")
                return scale * _LAG_UNITS[suffix]
        try:
            value = float(text)
        except ValueError:
            raise ValueError(f"unparsable lag {lag!r}") from None
        if value < 0:
            raise ValueError(f"lag must be non-negative, got {lag!r}")
        return value
    raise ValueError(f"unparsable lag {lag!r}")


def format_lag(lag: Union[float, _Downstream]) -> Any:
    """The JSON/wire form of a parsed lag (inverse of :func:`parse_lag`)."""
    return "downstream" if lag is DOWNSTREAM else lag


@dataclass(frozen=True)
class LogRecord:
    """One change-stream entry: a sequence-numbered, timestamped event."""

    seq: int
    kind: str  # "insert" | "delete"
    value: Any
    start: Time
    end: Time
    payload: Mapping[str, Any]
    at: float  # catalog-clock arrival time (for staleness accounting)

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.end)

    def to_json(self) -> List[Any]:
        return [self.seq, self.kind, self.value, self.start, self.end,
                dict(self.payload), self.at]

    @classmethod
    def from_json(cls, raw: Sequence[Any]) -> "LogRecord":
        seq, kind, value, start, end, payload, at = raw
        return cls(int(seq), kind, value, start, end, dict(payload), float(at))


class ChangeLog:
    """An append-only, sequence-numbered change stream for one node.

    Sequence numbers start at 1; ``head`` is the last assigned number
    (0 for an empty log).  Consumers remember a *watermark* -- the last
    sequence they applied -- and read forward with :meth:`since`.
    Retention is bounded: :meth:`compact` drops a fully-consumed prefix
    (records ``seq <= base`` are gone), so only the unconsumed tail --
    plus any per-catalog retention slack -- stays in memory and on
    disk.  What the dropped prefix built is captured by the catalog's
    per-view tree checkpoints instead (see
    :meth:`DynamicCatalog.save`); DESIGN.md section 14 has the
    trade-off.
    """

    def __init__(self) -> None:
        self.records: List[LogRecord] = []
        self.head = 0
        #: Highest compacted-away sequence number; retained records are
        #: exactly ``base + 1 .. head``.
        self.base = 0

    def append(self, kind: str, value: Any, interval: Interval,
               payload: Mapping[str, Any], at: float) -> int:
        self.head += 1
        self.records.append(
            LogRecord(self.head, kind, value, interval.start, interval.end,
                      dict(payload), at)
        )
        return self.head

    def since(self, watermark: int) -> List[LogRecord]:
        """Records with ``seq > watermark``, oldest first."""
        if watermark >= self.head:
            return []
        if watermark < self.base:
            raise ValueError(
                f"change log compacted through seq {self.base}; cannot "
                f"stream from watermark {watermark}"
            )
        # Sequence numbers are dense (base+1..head), so the slice is direct.
        return self.records[watermark - self.base:]

    def upto(self, watermark: int) -> List[LogRecord]:
        """The retained consumed prefix ``base < seq <= watermark``."""
        return self.records[:max(0, watermark - self.base)]

    def compact(self, upto_seq: int) -> int:
        """Drop the prefix ``seq <= upto_seq``; returns records dropped.

        Compacting past ``head`` clamps to ``head``; compacting behind
        ``base`` is a no-op.  Callers must not compact past the lowest
        consumer watermark (the catalog's retention policy enforces
        this) or :meth:`since` will refuse those consumers.
        """
        target = min(upto_seq, self.head)
        if target <= self.base:
            return 0
        dropped = target - self.base
        self.records = self.records[dropped:]
        self.base = target
        return dropped

    @property
    def retained(self) -> int:
        """Number of records currently held in memory."""
        return len(self.records)

    def oldest_pending_at(self, watermark: int) -> Optional[float]:
        pending = self.since(max(watermark, self.base))
        return pending[0].at if pending else None

    def to_json(self) -> Dict[str, Any]:
        return {
            "head": self.head,
            "base": self.base,
            "records": [r.to_json() for r in self.records],
        }

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "ChangeLog":
        log = cls()
        log.records = [LogRecord.from_json(r) for r in raw.get("records", ())]
        log.head = int(raw.get("head", len(log.records)))
        log.base = int(raw.get("base", log.head - len(log.records)))
        return log


class _LogTap:
    """Relation subscriber appending every change event to a log."""

    def __init__(self, log: ChangeLog, clock) -> None:
        self.log = log
        self._clock = clock

    def __call__(self, event: ChangeEvent) -> None:
        self.log.append(
            "insert" if event.kind is ChangeKind.INSERT else "delete",
            event.tuple.value,
            event.tuple.valid,
            event.tuple.payload,
            self._clock(),
        )


class _BaseNode:
    """A base table registered in the catalog: a relation plus its log."""

    def __init__(self, name: str, relation: TemporalRelation, clock) -> None:
        self.name = name
        self.relation = relation
        self.log = ChangeLog()
        self._tap = _LogTap(self.log, clock)
        relation.subscribe(self._tap, replay=True)

    def detach(self) -> None:
        self.relation.unsubscribe(self._tap)


@dataclass
class ViewReading:
    """One view read: the value plus its consistency coordinates.

    ``degraded`` marks a read served from a quarantined view's
    last-good state; it appears in the JSON form only when set, so
    healthy readings (and their typed binary wire layout) are
    unchanged.
    """

    value: Any
    as_of_watermark: Dict[str, int]
    staleness_s: float
    degraded: bool = False

    def to_json(self) -> Dict[str, Any]:
        watermark: Any = self.as_of_watermark
        if len(watermark) == 1:
            watermark = next(iter(watermark.values()))
        reading = {
            "value": self.value,
            "watermark": watermark,
            "staleness_s": self.staleness_s,
        }
        if self.degraded:
            reading["degraded"] = True
        return reading


class DynamicView:
    """One node of the DAG: sources, an aggregate, and refresh state.

    Not constructed directly -- use :meth:`DynamicCatalog.create_view`,
    which validates the DAG.  The view owns

    * one SB-tree per group key (created lazily as keys appear in the
      consumed change stream) holding the paper's aggregate index,
    * an output :class:`TemporalRelation` materializing the aggregate's
      constant intervals as temporal tuples (so a view is consumable by
      further views exactly like a base table), and
    * ``watermarks`` -- the last consumed sequence number per source.
    """

    def __init__(
        self,
        name: str,
        sources: List[str],
        kind,
        *,
        key: Optional[str] = None,
        lag: Union[float, _Downstream] = DOWNSTREAM,
        clock=time.monotonic,
        branching: int = 32,
        leaf_capacity: Optional[int] = None,
    ) -> None:
        self.name = name
        self.sources = list(sources)
        self.spec: AggregateSpec = spec_for(kind)
        self.key_field = key
        self.lag = lag
        self.watermarks: Dict[str, int] = {src: 0 for src in self.sources}
        self.relation = TemporalRelation(name)
        self.log = ChangeLog()
        self._tap = _LogTap(self.log, clock)
        self.relation.subscribe(self._tap, replay=True)
        self._tree_args = dict(branching=branching, leaf_capacity=leaf_capacity)
        self._trees: Dict[Hashable, SBTree] = {}
        # Per-group output rows (tuple_id -> row), the view's own
        # affected-region index: regeneration touches only the rows of
        # the affected key that overlap the affected time range.
        self._rows: Dict[Hashable, Dict[int, Any]] = {}
        self.refreshes = 0
        self.events_consumed = 0
        self.rows_emitted = 0
        self.rows_retracted = 0
        self.last_refresh_at: Optional[float] = None
        self.last_refresh_s = 0.0
        # Quarantine state: set by the catalog when a scheduled refresh
        # raises; reads then serve last-good values flagged degraded.
        self.quarantined = False
        self.quarantined_at: Optional[float] = None
        self.last_error: Optional[str] = None

    # ------------------------------------------------------------------
    def _tree(self, key: Hashable) -> SBTree:
        tree = self._trees.get(key)
        if tree is None:
            tree = SBTree(self.spec, **self._tree_args)
            self._trees[key] = tree
            self._rows[key] = {}
        return tree

    def _key_of(self, record: LogRecord) -> Hashable:
        if self.key_field is None:
            return None
        return record.payload.get(self.key_field)

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh(self, resolve, now: float) -> int:
        """Consume every source record past the watermarks; return count.

        *resolve* maps a source name to its node (the catalog).  The
        affected-region rule: each consumed event updates one group's
        tree in O(log n); output rows are then regenerated only for the
        union of (key, time-range) regions the batch touched.
        """
        batches: List[Tuple[str, List[LogRecord]]] = []
        for src in self.sources:
            node = resolve(src)
            batch = node.log.since(self.watermarks[src])
            if batch:
                batches.append((src, batch))
        if not batches:
            return 0
        if not self.spec.invertible:
            # Two-phase, like the eager views: veto before any mutation
            # so a non-maintainable batch cannot half-apply.
            for _, batch in batches:
                for record in batch:
                    if record.kind == "delete":
                        raise ValueError(
                            f"view {self.name!r}: {self.spec.kind} aggregates "
                            "cannot be maintained under deletions (paper, "
                            "Section 3.4); the source change stream "
                            "retracted a tuple"
                        )
        started = time.perf_counter()
        affected: Dict[Hashable, List[Interval]] = {}
        consumed = 0
        for src, batch in batches:
            for record in batch:
                key = self._key_of(record)
                tree = self._tree(key)
                if record.kind == "insert":
                    tree.insert(record.value, record.interval)
                else:
                    tree.delete(record.value, record.interval)
                affected.setdefault(key, []).append(record.interval)
                consumed += 1
            self.watermarks[src] = batch[-1].seq
        for key, intervals in affected.items():
            for lo, hi in _merge_spans(intervals):
                self._regenerate(key, lo, hi)
        self.refreshes += 1
        self.events_consumed += consumed
        self.last_refresh_at = now
        self.last_refresh_s = time.perf_counter() - started
        registry = obs.get_registry()
        if registry is not None:
            registry.record_op(obs.OpRecord(
                op=f"view.{self.name}.refresh",
                wall_us=self.last_refresh_s * 1e6,
            ))
        return consumed

    def _regenerate(self, key: Hashable, lo: Time, hi: Time) -> None:
        """Rebuild this group's output rows over one affected span.

        The span is first widened to fully cover any existing row it
        overlaps (rows of one group are disjoint, so one widening pass
        reaches a fixpoint); the covered rows are retracted, and the
        group's tree is range-queried once to emit the new constant
        intervals.  Rows whose internal value is ``v0`` are elided (see
        the module docstring).
        """
        rows = self._rows.setdefault(key, {})
        stale = []
        for tuple_id, row in rows.items():
            if row.valid.start < hi and row.valid.end > lo:
                stale.append(row)
                lo = min(lo, row.valid.start)
                hi = max(hi, row.valid.end)
        for row in stale:
            del rows[row.tuple_id]
            self.relation.delete(row)  # emits DELETE downstream via the tap
            self.rows_retracted += 1
        if not lo < hi:  # pragma: no cover - spans are non-empty by construction
            return
        step = self._trees[key].range_query(Interval(lo, hi)).coalesce(self.spec.eq)
        payload = {} if self.key_field is None else {self.key_field: key}
        for value, interval in step:
            if self.spec.is_initial(value):
                continue
            final = self.spec.finalize(value)
            if final is None:
                continue
            row = self.relation.insert(final, interval, **payload)
            rows[row.tuple_id] = row
            self.rows_emitted += 1

    # ------------------------------------------------------------------
    # Reads (values come from the trees: always consistent with the
    # watermarks, never mid-regeneration)
    # ------------------------------------------------------------------
    def value_at(self, t: Time, key: Hashable = None) -> Any:
        """Finalized value at *t* for one group (or the single group)."""
        tree = self._trees.get(key)
        if tree is None:
            return self.spec.finalize(self.spec.v0)
        return tree.lookup_final(t)

    def values_at(self, t: Time) -> Dict[Hashable, Any]:
        """Every known group's finalized value at *t*."""
        return {key: tree.lookup_final(t) for key, tree in self._trees.items()}

    def keys(self):
        return self._trees.keys()

    def row_count(self) -> int:
        return len(self.relation)

    def pending_from(self, resolve) -> int:
        """Unconsumed source records (0 when fully fresh)."""
        return sum(
            resolve(src).log.head - self.watermarks[src] for src in self.sources
        )

    def oldest_pending_at(self, resolve) -> Optional[float]:
        stamps = [
            resolve(src).log.oldest_pending_at(self.watermarks[src])
            for src in self.sources
        ]
        stamps = [s for s in stamps if s is not None]
        return min(stamps) if stamps else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DynamicView {self.name!r} {self.spec.kind} over {self.sources} "
            f"lag={format_lag(self.lag)!r} watermarks={self.watermarks}>"
        )


def _merge_spans(intervals: List[Interval]) -> List[Tuple[Time, Time]]:
    """Collapse intervals into disjoint (lo, hi) spans, sorted."""
    spans = sorted((iv.start, iv.end) for iv in intervals)
    merged: List[Tuple[Time, Time]] = []
    for lo, hi in spans:
        if merged and lo <= merged[-1][1]:
            last_lo, last_hi = merged[-1]
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


class DynamicCatalog:
    """The view fleet: a DAG of dynamic views over base change streams.

    Thread-safe (one re-entrant lock serializes every public method),
    so the TCP service can drive it from its executor pool while the
    refresh tick runs.  With *directory*, :meth:`save` checkpoints the
    whole catalog -- definitions, watermarks, change logs, and output
    rows -- to ``dynamic.json``; :meth:`load` (or constructing over a
    directory holding a checkpoint) restores it and resumes refresh
    from the persisted watermarks.

    *warehouse*, when given, shares base tables with a
    :class:`~repro.warehouse.manager.TemporalWarehouse`: catalog tables
    resolve to warehouse relations and the warehouse's ``drop_table``
    consults this catalog for dependents.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        warehouse=None,
        clock=time.monotonic,
        branching: int = 32,
        leaf_capacity: Optional[int] = None,
        retention: Union[str, int] = "compact",
        faults=None,
        strict: bool = False,
    ) -> None:
        self.directory = directory
        self.warehouse = warehouse
        self.clock = clock
        self._tree_args = dict(branching=branching, leaf_capacity=leaf_capacity)
        self._lock = threading.RLock()
        self._tables: Dict[str, _BaseNode] = {}
        self._views: Dict[str, DynamicView] = {}
        self._order: List[str] = []  # creation order == a topological order
        self.ticks = 0
        #: Change-log retention policy applied on every save: ``"full"``
        #: keeps everything, ``"compact"`` (default) drops prefixes every
        #: consumer has applied, an integer keeps that many consumed
        #: records of slack behind the lowest consumer watermark.
        if not (retention == "full" or retention == "compact"
                or (isinstance(retention, int)
                    and not isinstance(retention, bool) and retention >= 0)):
            raise ValueError(f"invalid retention policy {retention!r}")
        self.retention = retention
        #: Optional :class:`repro.faults.FaultInjector` consulted at the
        #: checkpoint crash points and around the temp-file write/fsync.
        self.faults = faults
        #: With ``strict`` a corrupt checkpoint raises instead of falling
        #: back to ``dynamic.json.prev``.
        self.strict = strict
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            if os.path.exists(os.path.join(directory, CHECKPOINT_NAME)):
                self.load()

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def _node(self, name: str):
        node = self._tables.get(name)
        if node is not None:
            return node
        view = self._views.get(name)
        if view is not None:
            return view
        raise ViewDependencyError(f"unknown table or view {name!r}")

    def has_node(self, name: str) -> bool:
        return name in self._tables or name in self._views

    def table_names(self) -> List[str]:
        return list(self._tables)

    def view_names(self) -> List[str]:
        return list(self._views)

    def view(self, name: str) -> DynamicView:
        view = self._views.get(name)
        if view is None:
            raise ViewDependencyError(f"unknown view {name!r}")
        return view

    def create_table(self, name: str) -> TemporalRelation:
        """Register a base table (creating the relation if needed).

        Bound to a warehouse, the relation is the warehouse's (created
        there when missing); standalone catalogs own their relations.
        """
        with self._lock:
            if self.has_node(name):
                raise ValueError(f"table or view {name!r} already exists")
            if self.warehouse is not None:
                try:
                    relation = self.warehouse.table(name)
                except KeyError:
                    relation = self.warehouse.create_table(name)
            else:
                relation = TemporalRelation(name)
            node = _BaseNode(name, relation, self.clock)
            self._tables[name] = node
            self._order.append(name)
            return relation

    def attach_table(self, name: str, relation: TemporalRelation) -> None:
        """Register an existing relation as a base table (replaying it)."""
        with self._lock:
            if self.has_node(name):
                raise ValueError(f"table or view {name!r} already exists")
            self._tables[name] = _BaseNode(name, relation, self.clock)
            self._order.append(name)

    def table(self, name: str) -> TemporalRelation:
        with self._lock:
            node = self._tables.get(name)
            if node is None:
                raise ViewDependencyError(f"unknown table {name!r}")
            return node.relation

    def insert(self, table: str, value: Any, valid, **payload: Any):
        """Insert one tuple into a base table (records its change event)."""
        with self._lock:
            return self.table(table).insert(value, valid, **payload)

    def delete(self, table: str, row_or_id):
        with self._lock:
            return self.table(table).delete(row_or_id)

    # ------------------------------------------------------------------
    # DAG maintenance
    # ------------------------------------------------------------------
    def dependents_of(self, name: str) -> List[str]:
        """Views that consume *name* directly."""
        with self._lock:
            return [v.name for v in self._views.values() if name in v.sources]

    def _check_acyclic(self, name: str, sources: Sequence[str]) -> None:
        """Reject any edge set that would close a cycle through *name*.

        Sources must already exist, so the only reachable cycles run
        through the new view itself; the walk still follows the full
        transitive closure so the guard stays correct if forward
        references are ever allowed.
        """
        stack = list(sources)
        seen = set()
        while stack:
            current = stack.pop()
            if current == name:
                raise CycleError(
                    f"view {name!r} cannot (transitively) depend on itself"
                )
            if current in seen:
                continue
            seen.add(current)
            view = self._views.get(current)
            if view is not None:
                stack.extend(view.sources)

    def create_view(
        self,
        name: str,
        over: Union[str, Sequence[str]],
        kind,
        *,
        key: Optional[str] = None,
        lag: Any = DOWNSTREAM,
        create_sources: bool = False,
    ) -> DynamicView:
        """Declare a dynamic view over base tables and/or other views.

        ``lag`` accepts anything :func:`parse_lag` does.  With
        ``create_sources`` unknown source names are auto-created as
        base tables (the service's ingest-after-declare convenience);
        otherwise they are rejected.  The new view starts at watermark
        0 everywhere, so its first refresh consumes each source's full
        backlog -- a view over a non-empty table starts complete after
        one refresh.
        """
        sources = [over] if isinstance(over, str) else list(over)
        if not sources:
            raise ValueError("a view needs at least one source")
        parsed_lag = parse_lag(lag)
        with self._lock:
            if self.has_node(name):
                raise ValueError(f"table or view {name!r} already exists")
            self._check_acyclic(name, sources)
            spec = spec_for(kind)
            for src in sources:
                if src in self._views and not spec.invertible:
                    raise ValueError(
                        f"view {name!r}: {spec.kind} cannot be maintained over "
                        f"view {src!r} -- refreshing a view retracts rows, and "
                        "MIN/MAX aggregates are not maintainable under "
                        "deletions (paper, Section 3.4)"
                    )
                if not self.has_node(src):
                    if not create_sources:
                        raise ViewDependencyError(
                            f"view {name!r}: unknown source {src!r}"
                        )
                    self.create_table(src)
            view = DynamicView(
                name, sources, spec, key=key, lag=parsed_lag,
                clock=self.clock, **self._tree_args,
            )
            self._bootstrap_compacted_sources(view)
            self._views[name] = view
            self._order.append(name)
            return view

    def _bootstrap_compacted_sources(self, view: DynamicView) -> None:
        """Seed a new view from sources whose log prefix was compacted.

        A new view starts at watermark 0 and normally replays each
        source's full log on first refresh; once retention has dropped
        a consumed prefix that replay is impossible.  The source
        relation's live rows are the net effect of the whole log
        (inserts minus deletions -- and MIN/MAX-unsafe deletion
        histories only arise where refresh would have vetoed them), so
        the view bootstraps from those rows instead and starts at the
        source's current head.
        """
        affected: Dict[Hashable, List[Interval]] = {}
        for src in view.sources:
            node = self._node(src)
            if node.log.base <= 0:
                continue
            for row in node.relation:
                key = (
                    None if view.key_field is None
                    else row.payload.get(view.key_field)
                )
                view._tree(key).insert(row.value, row.valid)
                affected.setdefault(key, []).append(row.valid)
            view.watermarks[src] = node.log.head
        for key, intervals in affected.items():
            for lo, hi in _merge_spans(intervals):
                view._regenerate(key, lo, hi)

    def drop_view(self, name: str) -> None:
        """Remove a view; refused while other views still consume it."""
        with self._lock:
            view = self.view(name)
            dependents = self.dependents_of(name)
            if dependents:
                raise ViewDependencyError(
                    f"cannot drop view {name!r}: still consumed by "
                    f"{sorted(dependents)}"
                )
            view.relation.unsubscribe(view._tap)
            del self._views[name]
            self._order.remove(name)

    def drop_table(self, name: str) -> None:
        """Unregister a base table; refused while views consume it."""
        with self._lock:
            node = self._tables.get(name)
            if node is None:
                raise ViewDependencyError(f"unknown table {name!r}")
            dependents = self.dependents_of(name)
            if dependents:
                raise ViewDependencyError(
                    f"cannot drop table {name!r}: still consumed by "
                    f"{sorted(dependents)}"
                )
            node.detach()
            del self._tables[name]
            self._order.remove(name)

    # ------------------------------------------------------------------
    # Refresh scheduling
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self.clock()

    def _transitive_oldest(
        self, name: str, cache: Dict[str, Optional[float]]
    ) -> Optional[float]:
        """Arrival time of the oldest event not yet *reflected* in node
        *name*, looking through the whole ancestor chain (``None`` when
        the node is fully fresh).  A base table is always fresh with
        respect to itself; a view is stale both for records it has not
        consumed and for records its source views have not yet emitted.
        """
        if name in cache:
            return cache[name]
        cache[name] = None  # cycle guard; the DAG check makes this moot
        view = self._views.get(name)
        oldest: Optional[float] = None
        if view is not None:
            for src in view.sources:
                candidates = [
                    self._node(src).log.oldest_pending_at(
                        view.watermarks.get(src, 0)
                    ),
                    self._transitive_oldest(src, cache),
                ]
                for stamp in candidates:
                    if stamp is not None and (oldest is None or stamp < oldest):
                        oldest = stamp
        cache[name] = oldest
        return oldest

    def staleness(self, view: DynamicView, now: Optional[float] = None) -> float:
        """Seconds the view lags the *base data* (0 when fully fresh).

        Transitive: counts events the view has not consumed *and*
        events its source views have not yet emitted, so a chain's
        staleness never under-reports just because an intermediate view
        is itself behind.
        """
        oldest = self._transitive_oldest(view.name, {})
        if oldest is None:
            return 0.0
        now = self._now() if now is None else now
        return max(0.0, now - oldest)

    def _due(self, now: float) -> List[str]:
        """Views whose numeric lag budget is exhausted, in topo order."""
        due = []
        cache: Dict[str, Optional[float]] = {}
        for name in self._order:
            view = self._views.get(name)
            if view is None or view.lag is DOWNSTREAM:
                continue
            oldest = self._transitive_oldest(name, cache)
            if oldest is None:
                continue
            if max(0.0, now - oldest) >= view.lag:
                due.append(name)
        return due

    def _closure_with_lazy_ancestors(self, names: Sequence[str]) -> List[str]:
        """*names* plus their ``downstream``-lagged ancestors, topo order.

        Numeric-lag ancestors are *not* pulled in: their freshness is
        their own schedule's business; a lazy (``downstream``) ancestor
        refreshes exactly because a dependent needs it now.
        """
        needed = set(names)
        # Walk ancestors; _order is topological, so one reverse sweep
        # suffices to propagate need from dependents to sources.
        for name in reversed(self._order):
            if name not in needed:
                continue
            view = self._views.get(name)
            if view is None:
                continue
            for src in view.sources:
                ancestor = self._views.get(src)
                if ancestor is not None and (
                    src in needed or ancestor.lag is DOWNSTREAM
                ):
                    needed.add(src)
        return [n for n in self._order if n in needed and n in self._views]

    def _refresh_names(
        self,
        names: Sequence[str],
        now: float,
        *,
        isolate: bool = False,
        on_error=None,
    ) -> Dict[str, int]:
        """Refresh *names* in order; quarantined views are skipped.

        With ``isolate`` (the scheduler path) a refresh that raises
        quarantines only that view -- siblings and dependents keep
        going -- and ``on_error(name, exc)`` is invoked for logging.
        Without it (explicit refreshes, pinned reports) the exception
        propagates to the caller unchanged.
        """
        consumed = {}
        for name in names:
            view = self._views[name]
            if view.quarantined:
                continue
            if isolate:
                try:
                    count = view.refresh(self._node, now)
                except Exception as exc:
                    self._quarantine(view, exc, now)
                    if on_error is not None:
                        on_error(name, exc)
                    continue
            else:
                count = view.refresh(self._node, now)
            if count:
                consumed[name] = count
        return consumed

    def _quarantine(self, view: DynamicView, exc: BaseException, now: float) -> None:
        view.quarantined = True
        view.quarantined_at = now
        view.last_error = f"{type(exc).__name__}: {exc}"
        obs.count("views.quarantined")

    def quarantined_names(self) -> List[str]:
        with self._lock:
            return [n for n, v in self._views.items() if v.quarantined]

    def repair(self, name: str) -> Dict[str, Any]:
        """Clear a view's quarantine and retry its refresh.

        On success returns ``{"repaired", "was_quarantined",
        "refreshed"}``; if the retry raises again the view goes straight
        back into quarantine and the exception propagates (so the
        caller sees *why* the view is still broken).
        """
        with self._lock:
            view = self.view(name)
            was = view.quarantined
            view.quarantined = False
            view.quarantined_at = None
            view.last_error = None
            now = self._now()
            try:
                refreshed = self._refresh_names(
                    self._ancestor_closure([name]), now
                )
            except Exception as exc:
                self._quarantine(view, exc, now)
                raise
            return {
                "repaired": name,
                "was_quarantined": was,
                "refreshed": refreshed,
            }

    def tick(self, now: Optional[float] = None, *, on_error=None) -> Dict[str, int]:
        """One scheduler pass: refresh every due view, each at most
        once, in topological order.  A due view pulls its *full*
        ancestor closure into the tick -- a ``lag="0s"`` rollup over a
        ``lag="1h"`` intermediate obliges the intermediate to move at
        the rollup's cadence (a dependent's lag is a constraint on its
        whole upstream chain, which is also why due-ness is judged on
        *transitive* staleness).  Returns ``{view: events_consumed}``
        for the views that moved.

        A view whose refresh raises is quarantined rather than killing
        the tick: the remaining views still refresh, and ``on_error``
        (when given) is called with ``(view_name, exception)``.
        """
        with self._lock:
            now = self._now() if now is None else now
            self.ticks += 1
            due = self._due(now)
            if not due:
                return {}
            return self._refresh_names(
                self._ancestor_closure(due), now,
                isolate=True, on_error=on_error,
            )

    def refresh(self, name: Optional[str] = None) -> Dict[str, int]:
        """Force a refresh: one view (with its full ancestor closure,
        lag targets notwithstanding) or, with ``name=None``, every view.
        """
        with self._lock:
            now = self._now()
            if name is None:
                names = [n for n in self._order if n in self._views]
            else:
                self.view(name)  # raise early on unknown names
                names = self._ancestor_closure([name])
            return self._refresh_names(names, now)

    def _ancestor_closure(self, names: Sequence[str]) -> List[str]:
        needed = set(names)
        for name in reversed(self._order):
            if name not in needed:
                continue
            view = self._views.get(name)
            if view is not None:
                needed.update(view.sources)
        return [n for n in self._order if n in needed and n in self._views]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(
        self, name: str, t: Time, *, key: Hashable = None, now: Optional[float] = None
    ) -> ViewReading:
        """Read one view at instant *t*.

        A ``downstream``-lagged view (and its lazy ancestors) refreshes
        first -- that is what the lag means; views on a numeric lag
        serve their current state and let ``staleness_s`` say how old
        it is.  For a grouped view, *key* selects one group (unknown
        keys read as the empty group); ``key=None`` returns every
        group's value as a dict.
        """
        with self._lock:
            view = self.view(name)
            now = self._now() if now is None else now
            if view.lag is DOWNSTREAM and not view.quarantined:
                self._refresh_names(self._closure_with_lazy_ancestors([name]), now)
            if view.key_field is not None and key is None:
                value: Any = view.values_at(t)
            else:
                value = view.value_at(t, key)
            return ViewReading(
                value=value,
                as_of_watermark=dict(view.watermarks),
                staleness_s=self.staleness(view, now),
                degraded=view.quarantined,
            )

    def report(
        self, names: Sequence[str], t: Time, *, pin: bool = True
    ) -> Dict[str, Any]:
        """Read several views at *t* in one consistent snapshot.

        With ``pin`` the full ancestor closure of *names* refreshes
        first (inside the lock, so no ingest interleaves), after which
        every reading reflects the same base-table log heads; those
        heads are returned as the report's pinned watermark.  Without
        ``pin`` each view is read as-is, like :meth:`read`.
        """
        with self._lock:
            now = self._now()
            for name in names:
                self.view(name)
            if pin:
                self._refresh_names(self._ancestor_closure(names), now)
            readings = {
                name: self.read(name, t, now=now).to_json() for name in names
            }
            bases = {
                tname: node.log.head for tname, node in self._tables.items()
            }
            return {
                "views": readings,
                "pinned": bool(pin),
                "base_watermarks": bases,
            }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Per-node freshness and cost counters (the ``view_stats`` op)."""
        with self._lock:
            now = self._now()
            tables = {
                name: {
                    "head": node.log.head,
                    "log_base": node.log.base,
                    "log_retained": node.log.retained,
                    "tuples": len(node.relation),
                }
                for name, node in self._tables.items()
            }
            views = {}
            for name, view in self._views.items():
                views[name] = {
                    "sources": list(view.sources),
                    "kind": view.spec.kind.value,
                    "key": view.key_field,
                    "lag": format_lag(view.lag),
                    "watermarks": dict(view.watermarks),
                    "pending": view.pending_from(self._node),
                    "staleness_s": self.staleness(view, now),
                    "refreshes": view.refreshes,
                    "events_consumed": view.events_consumed,
                    "rows": view.row_count(),
                    "rows_emitted": view.rows_emitted,
                    "rows_retracted": view.rows_retracted,
                    "groups": len(list(view.keys())),
                    "last_refresh_s": view.last_refresh_s,
                    "quarantined": view.quarantined,
                    "last_error": view.last_error,
                }
            return {
                "tables": tables,
                "views": views,
                "order": list(self._order),
                "ticks": self.ticks,
                "quarantined": sum(
                    1 for v in self._views.values() if v.quarantined
                ),
            }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _checkpoint_path(self) -> str:
        if self.directory is None:
            raise ValueError("this catalog has no directory to persist into")
        return os.path.join(self.directory, CHECKPOINT_NAME)

    @staticmethod
    def _rows_json(relation: TemporalRelation) -> List[List[Any]]:
        return [
            [row.tuple_id, row.value, row.valid.start, row.valid.end,
             dict(row.payload)]
            for row in relation
        ]

    @staticmethod
    def _trees_json(view: DynamicView) -> List[List[Any]]:
        """Per-group tree checkpoints: the coalesced internal step
        function of each group's SB-tree, ``v0`` segments elided.
        Re-applying each segment as a raw effect reconstructs the tree
        exactly (segments are disjoint and ``acc(v0, x) == x``)."""
        out: List[List[Any]] = []
        for key, tree in view._trees.items():
            full = tree.range_query(Interval(NEG_INF, POS_INF))
            segments = [
                [value, interval.start, interval.end]
                for value, interval in full.coalesce(view.spec.eq)
                if not view.spec.is_initial(value)
            ]
            out.append([key, segments])
        return out

    def compact(self) -> int:
        """Apply the retention policy now; returns records dropped."""
        with self._lock:
            return self._compact_logs()

    def _compact_logs(self) -> int:
        if self.retention == "full":
            return 0
        slack = self.retention if isinstance(self.retention, int) else 0
        dropped = 0
        for name in self._order:
            node = self._tables.get(name) or self._views.get(name)
            if node is None:  # pragma: no cover - order only names nodes
                continue
            consumers = [
                v.watermarks.get(name, 0)
                for v in self._views.values()
                if name in v.sources
            ]
            # With no consumers the whole log is compactable: a view
            # created later bootstraps from the relation's live rows.
            target = min(consumers) if consumers else node.log.head
            dropped += node.log.compact(target - slack)
        return dropped

    def save(self) -> str:
        """Checkpoint definitions, watermarks, logs, trees, and rows.

        Consumed change-log prefixes are first compacted per the
        retention policy; the checkpoint carries per-group tree
        checkpoints instead, so a restore replays only the unconsumed
        tail.  The write is atomic (temp file + fsync + rename) and
        the previous checkpoint is retained as ``dynamic.json.prev``
        before the rename, so a crash at *any* point of the sequence
        leaves a restorable checkpoint behind.  With ``faults`` the
        labeled crash points in :data:`CATALOG_CRASH_POINTS` and the
        ``"view_ckpt"`` write/fsync label are consulted.
        """
        with self._lock:
            path = self._checkpoint_path()
            self._compact_logs()
            payload: Dict[str, Any] = {
                "version": 2,
                "order": list(self._order),
                "tables": {
                    name: {
                        "log": node.log.to_json(),
                        "rows": self._rows_json(node.relation),
                    }
                    for name, node in self._tables.items()
                },
                "views": {
                    name: {
                        "sources": view.sources,
                        "kind": view.spec.kind.value,
                        "key": view.key_field,
                        "lag": format_lag(view.lag),
                        "watermarks": view.watermarks,
                        "refreshes": view.refreshes,
                        "events_consumed": view.events_consumed,
                        "log": view.log.to_json(),
                        "rows": self._rows_json(view.relation),
                        "trees": self._trees_json(view),
                        "quarantined": view.quarantined,
                        "last_error": view.last_error,
                    }
                    for name, view in self._views.items()
                },
            }
            data = json.dumps(payload).encode("utf-8")
            faults = self.faults
            if faults is not None:
                faults.crash_point("view_ckpt:serialized")
            tmp = path + ".tmp"
            handle = open(tmp, "wb")
            try:
                torn_exc = None
                out = data
                if faults is not None:
                    out, torn_exc = faults.intercept_write(
                        CATALOG_WRITE_LABEL, data
                    )
                handle.write(out)
                handle.flush()
                if torn_exc is not None:
                    # Torn-write protocol: the prefix reaches the file,
                    # then the simulated crash fires.
                    os.fsync(handle.fileno())
                    raise torn_exc
                if faults is not None:
                    faults.intercept_fsync(CATALOG_WRITE_LABEL)
                os.fsync(handle.fileno())
            finally:
                handle.close()
            if faults is not None:
                faults.crash_point("view_ckpt:before_rename")
            if os.path.exists(path):
                # Retain the last-good checkpoint via a hardlink swap:
                # the main file is never missing, and .prev is complete
                # before the main rename can clobber anything.
                prev_tmp = path + ".prev.tmp"
                try:
                    os.remove(prev_tmp)
                except FileNotFoundError:
                    pass
                os.link(path, prev_tmp)
                os.replace(prev_tmp, path + ".prev")
            os.replace(tmp, path)
            if faults is not None:
                faults.crash_point("view_ckpt:after_rename")
            self._fsync_directory()
            return path

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def _load_payload(self, path: str) -> Dict[str, Any]:
        """Read and parse the checkpoint, falling back to ``.prev``.

        Under ``strict`` any unreadable/corrupt main checkpoint raises
        :class:`CatalogCheckpointError` immediately; otherwise the
        previous checkpoint (retained by :meth:`save`) is tried, and
        only when *neither* restores does the error propagate.  A
        leftover ``.tmp`` file is never adopted -- it may be torn.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("checkpoint must be a JSON object")
            return payload
        except (OSError, ValueError) as exc:
            main_error = exc
        if self.strict:
            raise CatalogCheckpointError(
                f"corrupt or unreadable catalog checkpoint {path}: "
                f"{main_error}"
            ) from main_error
        prev = path + ".prev"
        try:
            with open(prev, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("checkpoint must be a JSON object")
            obs.count("views.ckpt.fallbacks")
            return payload
        except (OSError, ValueError) as prev_error:
            raise CatalogCheckpointError(
                f"catalog checkpoint {path} is corrupt or unreadable "
                f"({main_error}) and no previous checkpoint could be "
                f"restored ({prev_error})"
            ) from main_error

    def load(self) -> None:
        """Restore a checkpoint: logs, rows, and trees; tail replayable.

        Version-2 checkpoints restore each view's per-group trees from
        their saved step functions; version-1 checkpoints (which retain
        full logs) rebuild them by replaying the consumed prefix
        (``seq <= watermark``) of each source log.  Either way a
        reopened catalog resumes incremental refresh from the persisted
        watermarks instead of rebuilding from scratch.
        """
        with self._lock:
            path = self._checkpoint_path()
            payload = self._load_payload(path)
            version = int(payload.get("version", 1))
            if version not in (1, 2):
                raise CatalogCheckpointError(
                    f"unsupported catalog checkpoint version {version} "
                    f"in {path}"
                )
            # A crash mid-save can leave temp files behind; they are
            # superseded by whichever checkpoint just restored.
            for leftover in (path + ".tmp", path + ".prev.tmp"):
                try:
                    os.remove(leftover)
                except OSError:
                    pass
            self._tables.clear()
            self._views.clear()
            self._order = []
            tables = payload.get("tables", {})
            views = payload.get("views", {})
            for name in payload.get("order", ()):
                if name in tables:
                    raw = tables[name]
                    relation = self._restored_relation(name, raw["rows"])
                    node = _BaseNode.__new__(_BaseNode)
                    node.name = name
                    node.relation = relation
                    node.log = ChangeLog.from_json(raw["log"])
                    node._tap = _LogTap(node.log, self.clock)
                    relation.subscribe(node._tap, replay=False)
                    self._tables[name] = node
                    self._order.append(name)
                elif name in views:
                    raw = views[name]
                    view = DynamicView(
                        name, list(raw["sources"]), raw["kind"],
                        key=raw.get("key"), lag=parse_lag(raw["lag"]),
                        clock=self.clock, **self._tree_args,
                    )
                    # Output rows and the emitted log restore verbatim
                    # (re-inserting them would re-emit downstream).
                    view.relation.unsubscribe(view._tap)
                    self._restore_rows(view, raw["rows"])
                    view.log = ChangeLog.from_json(raw["log"])
                    view._tap = _LogTap(view.log, self.clock)
                    view.relation.subscribe(view._tap, replay=False)
                    view.watermarks = {
                        src: int(seq)
                        for src, seq in raw.get("watermarks", {}).items()
                    }
                    for src in view.sources:
                        view.watermarks.setdefault(src, 0)
                    view.refreshes = int(raw.get("refreshes", 0))
                    view.events_consumed = int(raw.get("events_consumed", 0))
                    view.quarantined = bool(raw.get("quarantined", False))
                    last_error = raw.get("last_error")
                    view.last_error = (
                        str(last_error) if last_error is not None else None
                    )
                    self._views[name] = view
                    self._order.append(name)
                    if "trees" in raw:
                        self._restore_trees(view, raw["trees"])
                    else:
                        self._replay_trees(view)

    def _restored_relation(self, name: str, rows: List[List[Any]]) -> TemporalRelation:
        if self.warehouse is not None:
            try:
                relation = self.warehouse.table(name)
            except KeyError:
                relation = self.warehouse.create_table(name)
        else:
            relation = TemporalRelation(name)
        if len(relation) == 0 and rows:
            relation.restore(
                (tid, value, Interval(start, end), payload)
                for tid, value, start, end, payload in rows
            )
        return relation

    def _restore_rows(self, view: DynamicView, rows: List[List[Any]]) -> None:
        view.relation.restore(
            (tid, value, Interval(start, end), payload)
            for tid, value, start, end, payload in rows
        )
        for row in view.relation:
            key = (
                None if view.key_field is None
                else row.payload.get(view.key_field)
            )
            view._tree(key)  # ensure the per-group row index exists
            view._rows[key][row.tuple_id] = row

    def _restore_trees(self, view: DynamicView, raw_trees: List[List[Any]]) -> None:
        """Rebuild a restored view's trees from saved step functions.

        Each segment's internal value re-applies as a raw effect over
        its interval; AVG pairs come back from JSON as lists and are
        restored to tuples so the value algebra sees its own types.
        """
        for key, segments in raw_trees:
            tree = view._tree(key)
            for value, start, end in segments:
                if isinstance(value, list):
                    value = tuple(value)
                tree.insert_effect(value, Interval(start, end))

    def _replay_trees(self, view: DynamicView) -> None:
        """Rebuild a restored view's trees from its consumed prefixes."""
        for src in view.sources:
            node = self._node(src)
            for record in node.log.upto(view.watermarks.get(src, 0)):
                key = view._key_of(record)
                tree = view._tree(key)
                if record.kind == "insert":
                    tree.insert(record.value, record.interval)
                else:
                    tree.delete(record.value, record.interval)

    def close(self) -> None:
        """Checkpoint (when persistent) and detach every node."""
        with self._lock:
            if self.directory is not None:
                self.save()
            for node in self._tables.values():
                node.detach()

    def __enter__(self) -> "DynamicCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
