"""The temporal data warehouse: base tables plus maintained views.

A small catalog tying the pieces together: named base relations, named
SB-tree-backed aggregate views over them, and (optionally) a directory
in which each view's tree pages are persisted via
:class:`repro.storage.PagedNodeStore`.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Union

from .. import obs
from ..core.intervals import Time
from ..core.values import spec_for
from ..relation.table import TemporalRelation
from .view import ANY_WINDOW, TemporalAggregateView, _AnyWindow

__all__ = ["TemporalWarehouse"]


class TemporalWarehouse:
    """A catalog of temporal base tables and maintained aggregate views."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._relations: Dict[str, TemporalRelation] = {}
        self._views: Dict[str, TemporalAggregateView] = {}
        self._dynamic = None

    # ------------------------------------------------------------------
    # Base tables
    # ------------------------------------------------------------------
    def create_table(self, name: str) -> TemporalRelation:
        """Create and register a new base relation."""
        if name in self._relations:
            raise ValueError(f"table {name!r} already exists")
        relation = TemporalRelation(name)
        self._relations[name] = relation
        return relation

    def table(self, name: str) -> TemporalRelation:
        return self._relations[name]

    def drop_table(self, name: str) -> None:
        """Unregister a base table.

        Refused while any view still depends on the relation -- both
        the eagerly-maintained views of this warehouse and any dynamic
        views of the attached :attr:`dynamic` catalog (a dangling view
        would silently stop reflecting reality).
        """
        if name not in self._relations:
            raise KeyError(f"no table {name!r}")
        relation = self._relations[name]
        dependents = [
            view_name
            for view_name, view in self._views.items()
            if getattr(view, "relation", None) is relation
        ]
        if self._dynamic is not None:
            if name in self._dynamic.table_names():
                dependents.extend(self._dynamic.dependents_of(name))
        if dependents:
            raise ValueError(
                f"cannot drop table {name!r}: still referenced by views "
                f"{sorted(set(dependents))}"
            )
        if self._dynamic is not None and name in self._dynamic.table_names():
            self._dynamic.drop_table(name)
        del self._relations[name]

    # ------------------------------------------------------------------
    # Dynamic views
    # ------------------------------------------------------------------
    @property
    def dynamic(self):
        """The lazily-created dynamic-view catalog sharing these tables.

        See :mod:`repro.warehouse.dynamic`: lag-driven views over base
        tables and other views, refreshed incrementally from the change
        stream.  Persistent when the warehouse has a directory (the
        catalog checkpoints to ``<directory>/dynamic.json``).
        """
        if self._dynamic is None:
            from .dynamic import DynamicCatalog

            self._dynamic = DynamicCatalog(self.directory, warehouse=self)
        return self._dynamic

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def create_view(
        self,
        name: str,
        over: Union[str, TemporalRelation],
        kind,
        *,
        window: Union[Time, _AnyWindow] = 0,
        persistent: bool = False,
        journaled: bool = False,
        **view_kwargs,
    ) -> TemporalAggregateView:
        """Create a maintained aggregate view over a base table.

        With ``persistent`` (requires the warehouse to have a directory)
        the backing tree pages live in ``<directory>/<name>.sbt`` -- plus
        ``<name>.ended.sbt`` for ANY_WINDOW SUM/COUNT/AVG views, which
        need the second tree of Section 4.2.  ``journaled`` additionally
        gives the page files crash-consistent rollback journals.
        """
        if name in self._views:
            raise ValueError(f"view {name!r} already exists")
        relation = self.table(over) if isinstance(over, str) else over
        if journaled and not persistent:
            raise ValueError("journaled views must be persistent")
        if persistent:
            if self.directory is None:
                raise ValueError("a persistent view needs a warehouse directory")
            from ..storage import PagedNodeStore

            spec = spec_for(kind)
            view_kwargs.setdefault(
                "store",
                PagedNodeStore(
                    os.path.join(self.directory, f"{name}.sbt"),
                    spec,
                    journaled=journaled,
                ),
            )
            if isinstance(window, _AnyWindow) and spec.invertible:
                view_kwargs.setdefault(
                    "ended_store",
                    PagedNodeStore(
                        os.path.join(self.directory, f"{name}.ended.sbt"),
                        spec,
                        journaled=journaled,
                    ),
                )
        view = TemporalAggregateView(
            name, relation, kind, window=window, **view_kwargs
        )
        self._views[name] = view
        return view

    def create_grouped_view(
        self,
        name: str,
        over: Union[str, TemporalRelation],
        kind,
        *,
        key_of,
        window: Union[Time, _AnyWindow] = 0,
        **view_kwargs,
    ):
        """Create a per-group maintained view family (GROUP BY key)."""
        from .grouped import GroupedAggregateView

        if name in self._views:
            raise ValueError(f"view {name!r} already exists")
        relation = self.table(over) if isinstance(over, str) else over
        view = GroupedAggregateView(
            name, relation, kind, key_of=key_of, window=window, **view_kwargs
        )
        self._views[name] = view
        return view

    def view(self, name: str) -> TemporalAggregateView:
        return self._views[name]

    def drop_view(self, name: str) -> None:
        """Detach a view and close + remove its persisted page stores.

        A dropped persistent view's ``<name>.sbt`` page file (and its
        rollback journal, and the ``.ended.sbt`` pair of an ANY_WINDOW
        view) are deleted -- a dropped view that leaves pages behind
        would resurrect stale aggregates if the name were ever reused.
        """
        view = self._views.pop(name)
        view.detach()
        for store in self._stores_of(view):
            pager = getattr(store, "pager", None)
            store.close()
            if pager is None:
                continue
            for path in (pager.path, pager.journal_path):
                if path and os.path.exists(path):
                    os.remove(path)

    # ------------------------------------------------------------------
    @staticmethod
    def _stores_of(view):
        groups = getattr(view, "_groups", None)
        if groups is not None:  # a grouped view: recurse into each group
            stores = []
            for sub_view in groups.values():
                stores.extend(TemporalWarehouse._stores_of(sub_view))
            return stores
        return list(obs.stores_of(view.index))

    def maintenance_summary(self):
        """Per-view maintenance cost from the active metrics registry.

        Returns ``{view_name: op_summary}`` for every registered view
        that has recorded ``view.<name>.maintain`` operations; empty when
        observability is off (see :mod:`repro.obs`).
        """
        registry = obs.get_registry()
        if registry is None:
            return {}
        summaries = {}
        for name in self._views:
            op = f"view.{name}.maintain"
            summary = registry.op_summary(op)
            if summary["count"]:
                summaries[name] = summary
        return summaries

    def checkpoint(self) -> None:
        """Commit every journaled view store (a durable snapshot)."""
        for view in self._views.values():
            for store in self._stores_of(view):
                commit = getattr(store, "commit", None)
                if commit is not None:
                    commit()

    def close(self) -> None:
        """Flush and close every persistent view store and the dynamic
        catalog (checkpointing its watermarks when persistent)."""
        if self._dynamic is not None:
            self._dynamic.close()
        for view in self._views.values():
            for store in self._stores_of(view):
                store.close()

    def __enter__(self) -> "TemporalWarehouse":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
