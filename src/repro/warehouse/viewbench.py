"""Incremental view refresh vs recompute-from-scratch: the measured win.

The whole point of the dynamic materialized-view DAG is that a refresh
consumes only the change events past each view's watermark -- O(k log n)
for k new events -- where a naive implementation would rebuild every
view from its sources' full history, O(n log n) per refresh.  This
module measures exactly that comparison on the canonical cascading DAG
(base ``doses`` -> grouped ``by_patient`` -> rollup ``total``) and is
shared by two callers:

* ``benchmarks/bench_views.py`` sweeps the batch count and records the
  series via the benchmark ``report`` fixture;
* ``repro-quickcheck``'s *views* stage runs one bounded configuration,
  writes ``BENCH_views.json``, and floor-gates the speedup so a
  regression that silently turns refresh back into recompute fails CI.

Both variants are verified against the from-scratch oracle
(:func:`repro.core.reference.instantaneous_value`) at every batch, so
the timing numbers can never come from a wrong answer.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Tuple

from ..core import reference
from .dynamic import DynamicCatalog

__all__ = ["build_stream", "run_view_bench"]

Fact = Tuple[int, int, int, str]


def build_stream(
    events: int,
    *,
    keys: int = 6,
    horizon: int = 20_000,
    max_duration: int = 0,
    seed: int = 17,
) -> List[Fact]:
    """A deterministic ``(value, start, end, key)`` change stream.

    The stream is *append-mostly in valid time*: starts drift forward
    across the horizon with bounded jitter, the way a warehouse ingests
    facts near the current instant.  ``max_duration`` defaults to
    ``horizon // 100``; together these keep each event's affected span
    narrow -- the regime incremental refresh is designed for (a long
    interval overlapping everything forces the grouped view to
    regenerate every overlapping output row, paper Section 1's
    motivating pathology for *direct* view maintenance).
    """
    rng = random.Random(seed)
    max_duration = max_duration or max(2, horizon // 100)
    jitter = max(1, horizon // 50)
    stream: List[Fact] = []
    for i in range(events):
        frontier = (i * (horizon - max_duration - jitter)) // max(1, events)
        start = frontier + rng.randint(0, jitter)
        end = start + rng.randint(1, max_duration)
        stream.append(
            (rng.randint(1, 9), start, end, f"patient{rng.randrange(keys)}")
        )
    return stream


def _create_dag(catalog: DynamicCatalog) -> None:
    catalog.create_view(
        "by_patient", "doses", "sum", key="patient", lag="downstream"
    )
    catalog.create_view("total", "by_patient", "sum", lag="downstream")


def _probe(catalog: DynamicCatalog, facts: List[Fact], horizon: int) -> None:
    """Compare the rollup against the from-scratch oracle at 3 instants."""
    plain = [(v, (s, e)) for v, s, e, _ in facts]
    for t in (horizon // 4, horizon // 2, (3 * horizon) // 4):
        got = catalog.read("total", t).value
        want = reference.instantaneous_value(plain, "sum", t)
        # An uncovered instant reads as "no value": the view elides
        # rows at the aggregate's initial value, the oracle reports 0.
        if (got or 0) != (want or 0):
            raise AssertionError(
                f"total@{t}: incremental={got!r}, oracle={want!r}"
            )


def run_view_bench(
    *,
    events: int = 600,
    batches: int = 8,
    keys: int = 6,
    horizon: int = 20_000,
    seed: int = 17,
) -> Dict[str, Any]:
    """Replay one change stream through both maintenance strategies.

    Per batch of base-table inserts the **incremental** catalog pays one
    ``refresh()`` (only the new events move through the DAG), while the
    **recompute** strategy rebuilds both views from the full history --
    ``create_view`` + ``refresh`` + ``drop_view`` on a catalog holding
    every event so far.  Base-table ingest is excluded from both
    timings; only view maintenance is compared.  Returns the per-batch
    timings plus the total-speedup summary.
    """
    stream = build_stream(events, keys=keys, horizon=horizon, seed=seed)
    size = max(1, events // batches)
    chunks = [stream[i:i + size] for i in range(0, len(stream), size)]

    incremental = DynamicCatalog()
    incremental.create_table("doses")
    _create_dag(incremental)
    scratch = DynamicCatalog()
    scratch.create_table("doses")

    xs: List[float] = []
    inc_times: List[float] = []
    re_times: List[float] = []
    seen: List[Fact] = []
    for chunk in chunks:
        for value, start, end, key in chunk:
            incremental.insert("doses", value, (start, end), patient=key)
            scratch.insert("doses", value, (start, end), patient=key)
        seen.extend(chunk)
        xs.append(len(seen))

        started = time.perf_counter()
        incremental.refresh()
        inc_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        _create_dag(scratch)
        scratch.refresh()
        re_times.append(time.perf_counter() - started)

        _probe(incremental, seen, horizon)
        _probe(scratch, seen, horizon)
        scratch.drop_view("total")
        scratch.drop_view("by_patient")

    total_inc = sum(inc_times)
    total_re = sum(re_times)
    return {
        "events": len(seen),
        "batches": len(chunks),
        "xs": xs,
        "incremental_s": inc_times,
        "recompute_s": re_times,
        "total_incremental_s": total_inc,
        "total_recompute_s": total_re,
        "speedup": (total_re / total_inc) if total_inc else float("inf"),
    }
