"""Direct materialization of a temporal aggregate view.

The comparator the paper's introduction argues against: the warehouse
stores the aggregate's constant-interval table *itself* and updates the
stored rows on every base change.  A single inserted tuple with a long
valid interval forces an update of every constant interval it covers --
the "more than half of SumDosage must be updated" example -- i.e. O(m)
row touches per update versus the SB-tree's O(log m) node touches.
``rows_touched`` counts exactly that quantity for the benchmarks.

Structurally this is one giant SB-tree leaf: sorted boundaries plus one
value per gap, covering the whole time line.
"""

from __future__ import annotations

import bisect
from typing import Any, List

from ..core.intervals import Interval, NEG_INF, POS_INF, Time
from ..core.results import ConstantIntervalTable, trim_initial
from ..core.values import spec_for

__all__ = ["MaterializedView"]


class MaterializedView:
    """A directly materialized instantaneous temporal aggregate."""

    def __init__(self, kind) -> None:
        self.spec = spec_for(kind)
        self._times: List[Time] = []
        self._values: List[Any] = [self.spec.v0]
        #: Total stored rows written by updates (the paper's cost measure).
        self.rows_touched = 0

    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return len(self._values)

    def _cut(self, t: Time) -> None:
        """Ensure a row boundary exists at finite instant *t*."""
        i = bisect.bisect_left(self._times, t)
        if i < len(self._times) and self._times[i] == t:
            return
        self._times.insert(i, t)
        self._values.insert(i + 1, self._values[i])

    def _maybe_uncut(self, t: Time) -> None:
        """Drop the boundary at *t* if its two sides became equal."""
        i = bisect.bisect_left(self._times, t)
        if i >= len(self._times) or self._times[i] != t:
            return
        if self.spec.eq(self._values[i], self._values[i + 1]):
            del self._times[i]
            del self._values[i + 1]

    # ------------------------------------------------------------------
    def insert(self, value: Any, interval) -> None:
        """Apply a base insertion: update every covered stored row."""
        self._apply(self.spec.effect(value), interval)

    def delete(self, value: Any, interval) -> None:
        """Apply a base deletion (SUM/COUNT/AVG only)."""
        self._apply(self.spec.negated_effect(value), interval)

    def _apply(self, effect: Any, interval) -> None:
        if not isinstance(interval, Interval):
            interval = Interval(*interval)
        if interval.start > NEG_INF:
            self._cut(interval.start)
        if interval.end < POS_INF:
            self._cut(interval.end)
        first = bisect.bisect_right(self._times, interval.start) if interval.start > NEG_INF else 0
        last = (
            bisect.bisect_left(self._times, interval.end)
            if interval.end < POS_INF
            else len(self._times)
        )
        for i in range(first, min(last + 1, len(self._values))):
            self._values[i] = self.spec.acc(effect, self._values[i])
            self.rows_touched += 1
        if interval.start > NEG_INF:
            self._maybe_uncut(interval.start)
        if interval.end < POS_INF:
            self._maybe_uncut(interval.end)

    # ------------------------------------------------------------------
    def lookup(self, t: Time) -> Any:
        """Value at instant *t*: a binary search over the stored rows."""
        return self._values[bisect.bisect_right(self._times, t)]

    def to_table(self, *, drop_initial: bool = True) -> ConstantIntervalTable:
        edges = [NEG_INF] + self._times + [POS_INF]
        rows = [
            (self._values[i], Interval(edges[i], edges[i + 1]))
            for i in range(len(self._values))
        ]
        table = ConstantIntervalTable(rows).coalesce(self.spec.eq)
        if drop_initial:
            table = trim_initial(table, self.spec)
        return table
