"""Temporal aggregate queries over relations (the TSQL2/TQuel setting).

The paper's Section 1 frames temporal aggregates as query-language
constructs: an instantaneous aggregate with *temporal grouping* (one
result row per constant interval) as in TQuel and TSQL2, optionally
cumulative with a window offset.  This module provides that query
surface over :class:`~repro.relation.table.TemporalRelation`:

    >>> from repro.query import TemporalQuery
    >>> q = (TemporalQuery(prescriptions)
    ...        .where(lambda row: row.payload["patient"] != "Dan")
    ...        .value(lambda row: row.value)
    ...        .aggregate("sum"))
    >>> q.table()            # the SumDosage table, temporally grouped
    >>> q.at(19)             # the value at one instant
    >>> q.window(5).at(32)   # cumulative, window offset 5
    >>> q.partition_by(lambda row: row.payload["patient"]).tables()

One-shot queries execute with the appropriate O(n log n) algorithm
(end-point sort for SUM/COUNT/AVG, merge sort for MIN/MAX) over the
relation's current contents.  For repeated querying over changing data,
:meth:`TemporalQuery.materialize` turns the same specification into an
incrementally maintained SB-tree-backed view.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional

from .baselines import endpoint_sort, merge_sort
from .core.intervals import Interval, Time
from .core.reference import cumulative_value
from .core.results import ConstantIntervalTable
from .core.sbtree import IntervalLike, as_interval
from .core.values import AggregateSpec, spec_for
from .relation.table import TemporalRelation
from .relation.tuples import TemporalTuple

__all__ = ["TemporalQuery", "PartitionedQuery"]

Predicate = Callable[[TemporalTuple], bool]
ValueOf = Callable[[TemporalTuple], Any]
KeyOf = Callable[[TemporalTuple], Hashable]


class TemporalQuery:
    """A declarative temporal aggregate query; immutable and chainable."""

    def __init__(self, relation: TemporalRelation) -> None:
        self.relation = relation
        self._predicate: Optional[Predicate] = None
        self._value_of: ValueOf = lambda row: row.value
        self._spec: Optional[AggregateSpec] = None
        self._window: Time = 0

    def _copy(self) -> "TemporalQuery":
        clone = TemporalQuery(self.relation)
        clone._predicate = self._predicate
        clone._value_of = self._value_of
        clone._spec = self._spec
        clone._window = self._window
        return clone

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def where(self, predicate: Predicate) -> "TemporalQuery":
        """Restrict to tuples satisfying *predicate* (conjunctive)."""
        clone = self._copy()
        previous = self._predicate
        if previous is None:
            clone._predicate = predicate
        else:
            clone._predicate = lambda row: previous(row) and predicate(row)
        return clone

    def value(self, value_of: ValueOf) -> "TemporalQuery":
        """Select the quantity to aggregate (default: the tuple value)."""
        clone = self._copy()
        clone._value_of = value_of
        return clone

    def aggregate(self, kind) -> "TemporalQuery":
        """Choose the aggregate function (sum/count/avg/min/max)."""
        clone = self._copy()
        clone._spec = spec_for(kind)
        return clone

    def window(self, w: Time) -> "TemporalQuery":
        """Make the query cumulative with window offset *w* (Section 4)."""
        if w < 0:
            raise ValueError("window offset must be non-negative")
        clone = self._copy()
        clone._window = w
        return clone

    def partition_by(self, key_of: KeyOf) -> "PartitionedQuery":
        """Group tuples by a key; one temporal aggregate per group."""
        return PartitionedQuery(self, key_of)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def spec(self) -> AggregateSpec:
        if self._spec is None:
            raise ValueError("call .aggregate(kind) before executing the query")
        return self._spec

    def _facts(self) -> List:
        rows = self.relation if self._predicate is None else (
            row for row in self.relation if self._predicate(row)
        )
        return [(self._value_of(row), row.valid) for row in rows]

    def _instantaneous(self, facts) -> ConstantIntervalTable:
        spec = self.spec
        if self._window:
            facts = [
                (value, interval.extended(self._window))
                for value, interval in facts
            ]
        if spec.invertible:
            return endpoint_sort.compute(facts, spec)
        return merge_sort.compute(facts, spec)

    def table(self, *, finalized: bool = True) -> ConstantIntervalTable:
        """Execute, returning the temporally grouped constant intervals."""
        table = self._instantaneous(self._facts())
        if finalized:
            table = table.finalized(self.spec).coalesce()
        return table

    def at(self, t: Time) -> Any:
        """The (finalized) aggregate value at instant *t*."""
        return self.spec.finalize(
            cumulative_value(self._facts(), self.spec, t, self._window)
        )

    def over(self, interval: IntervalLike, *, finalized: bool = True) -> ConstantIntervalTable:
        """The aggregate's rows clipped to *interval*."""
        interval = as_interval(interval)
        full = self._instantaneous(self._facts())
        spec = self.spec
        # Pad with v0 so clipping covers regions without data.
        rows = []
        cursor = interval.start
        for value, piece in full:
            clipped = piece.intersection(interval)
            if clipped is None:
                continue
            if cursor < clipped.start:
                rows.append((spec.v0, Interval(cursor, clipped.start)))
            rows.append((value, clipped))
            cursor = clipped.end
        if cursor < interval.end:
            rows.append((spec.v0, Interval(cursor, interval.end)))
        table = ConstantIntervalTable(rows).coalesce(spec.eq)
        if finalized:
            table = table.finalized(spec).coalesce()
        return table

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self, name: str, **view_kwargs):
        """Create an incrementally maintained view of this query.

        Returns a :class:`~repro.warehouse.view.TemporalAggregateView`
        subscribed to the relation, carrying over this query's aggregate
        kind, window offset, value extractor and filter.
        """
        from .warehouse.view import TemporalAggregateView

        predicate = self._predicate
        value_of = self._value_of
        view = TemporalAggregateView(
            name,
            _FilteredRelation(self.relation, predicate),
            self.spec,
            window=self._window,
            value_of=value_of,
            **view_kwargs,
        )
        return view

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = self._spec.kind.value if self._spec else "?"
        w = f" window={self._window}" if self._window else ""
        return f"<TemporalQuery {kind}({self.relation.name}){w}>"


class _FilteredSubscriber:
    """Wraps a subscriber so it only sees events matching a predicate."""

    def __init__(self, subscriber, predicate: Predicate) -> None:
        self._subscriber = subscriber
        self._predicate = predicate

    def __call__(self, event) -> None:
        if self._predicate(event.tuple):
            self._subscriber(event)

    def validate(self, event) -> None:
        validate = getattr(self._subscriber, "validate", None)
        if validate is not None and self._predicate(event.tuple):
            validate(event)


class _FilteredRelation:
    """A relation facade that forwards only matching change events."""

    def __init__(self, relation: TemporalRelation, predicate: Optional[Predicate]):
        self._relation = relation
        self._predicate = predicate
        self._wrappers: Dict[Any, _FilteredSubscriber] = {}
        self.name = relation.name

    def subscribe(self, subscriber, *, replay: bool = True) -> None:
        if self._predicate is None:
            self._relation.subscribe(subscriber, replay=replay)
            return
        from .relation.tuples import ChangeEvent, ChangeKind

        if replay:
            for row in self._relation:
                if self._predicate(row):
                    subscriber(ChangeEvent(ChangeKind.INSERT, row))
        wrapper = _FilteredSubscriber(subscriber, self._predicate)
        self._wrappers[subscriber] = wrapper
        self._relation.subscribe(wrapper, replay=False)

    def unsubscribe(self, subscriber) -> None:
        if self._predicate is None:
            self._relation.unsubscribe(subscriber)
            return
        self._relation.unsubscribe(self._wrappers.pop(subscriber))


class PartitionedQuery:
    """A temporal aggregate per group key (TSQL2 GROUP BY + grouping)."""

    def __init__(self, base: TemporalQuery, key_of: KeyOf) -> None:
        self._base = base
        self._key_of = key_of

    def tables(self, *, finalized: bool = True) -> Dict[Hashable, ConstantIntervalTable]:
        """One temporally grouped table per partition key."""
        groups: Dict[Hashable, List[TemporalTuple]] = {}
        predicate = self._base._predicate
        for row in self._base.relation:
            if predicate is not None and not predicate(row):
                continue
            groups.setdefault(self._key_of(row), []).append(row)
        out = {}
        for key, rows in sorted(groups.items(), key=lambda kv: str(kv[0])):
            sub = self._base._copy()
            sub._predicate = None
            facts = [(sub._value_of(row), row.valid) for row in rows]
            table = sub._instantaneous(facts)
            if finalized:
                table = table.finalized(sub.spec).coalesce()
            out[key] = table
        return out

    def at(self, t: Time) -> Dict[Hashable, Any]:
        """Each partition's (finalized) value at instant *t*."""
        spec = self._base.spec
        values = {}
        for key, table in self.tables(finalized=False).items():
            try:
                raw = table.value_at(t)
            except KeyError:
                raw = spec.v0
            values[key] = spec.finalize(raw)
        return values

    def materialize(self, name: str, **view_kwargs):
        """Create an incrementally maintained per-group view family.

        Returns a :class:`~repro.warehouse.grouped.GroupedAggregateView`
        carrying this query's aggregate kind, window, value extractor,
        filter and partition key.
        """
        from .warehouse.grouped import GroupedAggregateView

        base = self._base
        return GroupedAggregateView(
            name,
            _FilteredRelation(base.relation, base._predicate),
            base.spec,
            key_of=self._key_of,
            window=base._window,
            value_of=base._value_of,
            **view_kwargs,
        )
