"""The basic two-scan algorithm of [Tum92] (Figure 23, row "basic").

The first scan of the base table determines the constant intervals of
the aggregate (from the sorted distinct interval end points).  The
second scan, for each tuple, adds the tuple's effect to *every* constant
interval covered by its valid interval.  With n tuples and m constant
intervals the running time is O(mn): a tuple with a long valid interval
touches O(m) intervals, which is precisely the behaviour the SB-tree's
segment-tree feature eliminates.

Because the second scan cannot start before the first finishes, the
algorithm supports neither incremental computation nor maintenance.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Tuple

from ..core.intervals import Interval
from ..core.results import ConstantIntervalTable, trim_initial
from ..core.values import spec_for

__all__ = ["compute"]


def compute(facts: Iterable[Tuple[Any, Interval]], kind) -> ConstantIntervalTable:
    """Compute the instantaneous temporal aggregate in O(mn)."""
    spec = spec_for(kind)
    facts = list(facts)
    if not facts:
        return ConstantIntervalTable()

    # Scan 1: the constant-interval skeleton.
    boundaries = sorted({t for _, interval in facts for t in (interval.start, interval.end)})
    values = [spec.v0] * (len(boundaries) - 1)

    # Scan 2: distribute every tuple over all intervals it covers.
    for value, interval in facts:
        effect = spec.effect(value)
        first = bisect.bisect_left(boundaries, interval.start)
        last = bisect.bisect_left(boundaries, interval.end)
        for i in range(first, last):
            values[i] = spec.acc(values[i], effect)

    rows = [
        (values[i], Interval(boundaries[i], boundaries[i + 1]))
        for i in range(len(values))
    ]
    return trim_initial(ConstantIntervalTable(rows).coalesce(spec.eq), spec)
