"""A classic red-black tree, the substrate of the balanced-tree baseline.

[MLI00]'s balanced-tree algorithm for temporal SUM/COUNT/AVG inserts the
end points of every valid interval into a red-black tree together with
their (possibly negative) effects on the aggregate, then produces the
result with one in-order traversal.  This module provides that
substrate: a by-the-book red-black tree mapping ordered keys to values,
with in-place value combination for duplicate keys.

Implemented from scratch (CLRS-style insertion with recolouring and
rotations); deletion is not needed by the baseline and is omitted.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Tuple

__all__ = ["RedBlackTree"]

_RED = True
_BLACK = False


class _RBNode:
    __slots__ = ("key", "value", "left", "right", "parent", "color")

    def __init__(self, key: Any, value: Any, parent: Optional["_RBNode"]) -> None:
        self.key = key
        self.value = value
        self.left: Optional[_RBNode] = None
        self.right: Optional[_RBNode] = None
        self.parent = parent
        self.color = _RED


class RedBlackTree:
    """An ordered key -> value map with O(log n) insertion.

    ``insert(key, value, combine)`` merges *value* into an existing
    entry with ``combine(old, new)`` instead of storing duplicates --
    exactly the endpoint-coalescing step of the balanced-tree algorithm.
    """

    def __init__(self) -> None:
        self._root: Optional[_RBNode] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    def insert(
        self,
        key: Any,
        value: Any,
        combine: Optional[Callable[[Any, Any], Any]] = None,
    ) -> None:
        """Insert *key* with *value*; merge via *combine* on duplicates."""
        parent: Optional[_RBNode] = None
        node = self._root
        while node is not None:
            parent = node
            if key == node.key:
                if combine is None:
                    node.value = value
                else:
                    node.value = combine(node.value, value)
                return
            node = node.left if key < node.key else node.right
        fresh = _RBNode(key, value, parent)
        if parent is None:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._rebalance(fresh)

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._root
        while node is not None:
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return default

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) pairs in ascending key order."""
        stack = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    # ------------------------------------------------------------------
    # CLRS insertion fix-up
    # ------------------------------------------------------------------
    def _rotate_left(self, x: _RBNode) -> None:
        y = x.right
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _RBNode) -> None:
        y = x.left
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _rebalance(self, node: _RBNode) -> None:
        while node.parent is not None and node.parent.color is _RED:
            parent = node.parent
            grand = parent.parent
            assert grand is not None, "red root violates the invariants"
            if parent is grand.left:
                uncle = grand.right
                if uncle is not None and uncle.color is _RED:
                    parent.color = uncle.color = _BLACK
                    grand.color = _RED
                    node = grand
                else:
                    if node is parent.right:
                        node = parent
                        self._rotate_left(node)
                        parent = node.parent
                    parent.color = _BLACK
                    grand.color = _RED
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if uncle is not None and uncle.color is _RED:
                    parent.color = uncle.color = _BLACK
                    grand.color = _RED
                    node = grand
                else:
                    if node is parent.left:
                        node = parent
                        self._rotate_right(node)
                        parent = node.parent
                    parent.color = _BLACK
                    grand.color = _RED
                    self._rotate_left(grand)
        self._root.color = _BLACK

    # ------------------------------------------------------------------
    # Invariant audit (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> int:
        """Verify the red-black properties; return the black height."""
        if self._root is None:
            return 0
        if self._root.color is _RED:
            raise AssertionError("root must be black")
        return self._check(self._root, None, None)

    def _check(self, node, lo, hi) -> int:
        if node is None:
            return 1
        if lo is not None and not node.key > lo:
            raise AssertionError("BST order violated")
        if hi is not None and not node.key < hi:
            raise AssertionError("BST order violated")
        if node.color is _RED:
            for child in (node.left, node.right):
                if child is not None and child.color is _RED:
                    raise AssertionError("red node with red child")
        left_height = self._check(node.left, lo, node.key)
        right_height = self._check(node.right, node.key, hi)
        if left_height != right_height:
            raise AssertionError("unequal black heights")
        return left_height + (0 if node.color is _RED else 1)
