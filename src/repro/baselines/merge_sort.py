"""The merge-sort algorithm of [MLI00] for MIN/MAX (Figure 23 row).

Divide and conquer over the base table: split the tuples in half,
recursively compute each half's constant-interval table, and merge the
two step functions with ``acc`` (= min or max) in linear time.  With the
recursion depth log n and linear merges the total is O(n log m).  Like
the other one-shot baselines it supports neither incremental
maintenance nor lookups without a full recomputation.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Tuple

from ..core.intervals import Interval, NEG_INF, POS_INF
from ..core.results import ConstantIntervalTable, trim_initial
from ..core.values import spec_for

__all__ = ["compute", "merge_tables"]


def merge_tables(left, right, spec) -> List[Tuple[Any, Interval]]:
    """Linear merge of two sorted constant-interval row lists under acc.

    Both inputs are step functions over sub-ranges of the time line (the
    value is implicitly ``v0`` outside their rows); the output covers
    the union of their spans.
    """
    acc = spec.acc

    def expanded(rows):
        """Pad a row list to cover (-inf, inf) with v0 where undefined."""
        out = []
        cursor = NEG_INF
        for value, interval in rows:
            if cursor < interval.start:
                out.append((spec.v0, Interval(cursor, interval.start)))
            out.append((value, interval))
            cursor = interval.end
        if cursor < POS_INF:
            out.append((spec.v0, Interval(cursor, POS_INF)))
        return out

    a = expanded(left)
    b = expanded(right)
    rows: List[Tuple[Any, Interval]] = []
    i = j = 0
    cursor = NEG_INF
    while i < len(a) and j < len(b):
        va, ia = a[i]
        vb, ib = b[j]
        end = min(ia.end, ib.end)
        if cursor < end:
            rows.append((acc(va, vb), Interval(cursor, end)))
            cursor = end
        if ia.end == end:
            i += 1
        if ib.end == end:
            j += 1
    merged = ConstantIntervalTable(rows).coalesce(spec.eq)
    return merged.rows


def compute(facts: Iterable, kind) -> ConstantIntervalTable:
    """Compute an instantaneous MIN/MAX aggregate by divide and conquer."""
    spec = spec_for(kind)
    normalized = []
    for value, interval in facts:
        if not isinstance(interval, Interval):
            interval = Interval(*interval)
        normalized.append((spec.effect(value), interval))

    def solve(chunk) -> List[Tuple[Any, Interval]]:
        if not chunk:
            return []
        if len(chunk) == 1:
            value, interval = chunk[0]
            return [(value, interval)]
        mid = len(chunk) // 2
        return merge_tables(solve(chunk[:mid]), solve(chunk[mid:]), spec)

    return trim_initial(
        ConstantIntervalTable(solve(normalized)).coalesce(spec.eq), spec
    )
