"""The k-ordered aggregation tree of [KS95].

A base table is *k-ordered* when every tuple arrives at most k positions
away from valid-interval-start order.  Under that promise, once k+1
further tuples have arrived, the aggregate's constant intervals ending
before the smallest start time among the last k+1 arrivals can never
change again: they are emitted to an output buffer and their tree nodes
garbage-collected, keeping the in-memory tree bounded.

The paper's criticisms apply and are observable here: the emitted
intervals are gone from the structure, so it cannot serve as an index
over the full history (``lookup`` raises for finalized instants), and a
perfectly ordered arrival stream (k = 0, the warehouse common case)
still degenerates the underlying unbalanced tree.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from ..core.intervals import Interval, NEG_INF, Time
from ..core.results import ConstantIntervalTable, trim_initial
from ..core.values import spec_for
from .aggregation_tree import AggregationTree, _AggNode

__all__ = ["KOrderedAggregationTree"]


class KOrderedAggregationTree:
    """Aggregation tree with k-ordered garbage collection."""

    def __init__(self, kind, k: int) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        self.spec = spec_for(kind)
        self.k = k
        self._tree = AggregationTree(self.spec)
        self._recent_starts: Deque[Time] = deque(maxlen=k + 1)
        self._finalized: List[Tuple[Any, Interval]] = []

    # ------------------------------------------------------------------
    @property
    def frontier(self) -> Time:
        """Instant before which the aggregate can no longer change."""
        if len(self._recent_starts) <= self.k:
            return NEG_INF
        return min(self._recent_starts)

    @property
    def live_node_count(self) -> int:
        return self._tree.node_count

    # ------------------------------------------------------------------
    def insert(self, value: Any, interval) -> None:
        """Insert a tuple; tuples must respect the k-ordering promise."""
        if not isinstance(interval, Interval):
            interval = Interval(*interval)
        if interval.start < self._tree.lo:
            raise ValueError(
                f"tuple starting at {interval.start} violates the k={self.k} "
                f"ordering promise (already finalized up to {self._tree.lo})"
            )
        self._tree.insert(value, interval)
        self._recent_starts.append(interval.start)
        self._collect_garbage()

    def _collect_garbage(self) -> None:
        frontier = self.frontier
        if frontier <= self._tree.lo:
            return
        emitted = self._emit_before(frontier)
        self._finalized.extend(emitted)

    def _emit_before(self, frontier: Time) -> List[Tuple[Any, Interval]]:
        """Emit and free everything strictly left of *frontier*."""
        tree = self._tree
        emitted: List[Tuple[Any, Interval]] = []

        def prune(node: _AggNode, lo: Time, hi: Time, carried: Any) -> Optional[_AggNode]:
            """Return the surviving node for this range, collecting rows.

            The spine-collapsing case loops rather than recurses: under
            chronological arrival the tree is a long right spine whose
            left flank finalizes node by node.
            """
            while True:
                value = self.spec.acc(carried, node.value)
                if hi <= frontier:
                    # Entire range finalized: emit everything, free it.
                    emitted.extend(tree._rows(node, lo, hi, carried))
                    tree._nodes -= self._subtree_size(node)
                    return None
                if node.split is None:
                    if lo < frontier:
                        emitted.append((value, Interval(lo, frontier)))
                    return node
                if node.split <= frontier:
                    # The whole left child is finalized; hoist the right
                    # child with this node's value pushed into it.
                    emitted.extend(tree._rows(node.left, lo, node.split, value))
                    tree._nodes -= self._subtree_size(node.left) + 1
                    node.right.value = self.spec.acc(node.value, node.right.value)
                    node, lo = node.right, node.split
                    continue
                node.left = prune(node.left, lo, node.split, value)
                assert node.left is not None, "split > frontier keeps the left child"
                return node

        new_root = prune(tree._root, tree.lo, tree.hi, self.spec.v0)
        assert new_root is not None
        tree._root = new_root
        tree.lo = frontier
        return emitted

    @staticmethod
    def _subtree_size(node: _AggNode) -> int:
        size = 0
        stack = [node]
        while stack:
            current = stack.pop()
            size += 1
            if current.split is not None:
                stack.append(current.left)
                stack.append(current.right)
        return size

    # ------------------------------------------------------------------
    def lookup(self, t: Time) -> Any:
        """Aggregate at *t*; raises KeyError for already-finalized instants."""
        return self._tree.lookup(t)

    def to_table(self, *, drop_initial: bool = True) -> ConstantIntervalTable:
        """Finalized output plus the live tree's current contents."""
        rows = list(self._finalized) + list(self._tree.rows())
        table = ConstantIntervalTable(rows).coalesce(self.spec.eq)
        if drop_initial:
            table = trim_initial(table, self.spec)
        return table
