"""The end-point sort algorithm (Appendix A of the paper).

The paper's generalisation of [MLI00]'s balanced-tree algorithm for
instantaneous SUM/COUNT/AVG:

1. every tuple with effect ``<v, [s, e)>`` generates two marks --
   ``<v, s>`` and ``<diff(v0, v), e>`` (the "negative" effect at the end
   point);
2. marks are sorted by time and same-time marks combined with ``acc``
   (dropped entirely if they cancel to ``v0``);
3. one pass along the sorted marks maintains a running aggregate value
   and emits a constant interval at each mark.

O(n log n) overall, easily implemented inside a database system because
the sort needs no custom data structure -- but not incrementally
maintainable.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Tuple

from ..core.intervals import Interval, NEG_INF
from ..core.results import ConstantIntervalTable, trim_initial
from ..core.values import spec_for

__all__ = ["compute", "generate_marks", "sweep_marks"]


def generate_marks(facts, spec) -> List[Tuple[Any, Any]]:
    """Step 1: two effect marks per tuple, as ``(time, effect)`` pairs."""
    marks = []
    for value, interval in facts:
        effect = spec.effect(value)
        marks.append((interval.start, effect))
        marks.append((interval.end, spec.diff(spec.v0, effect)))
    return marks


def sweep_marks(marks, spec) -> ConstantIntervalTable:
    """Steps 2-3: sort, combine same-time marks, sweep the time line."""
    marks.sort(key=lambda mark: mark[0])
    combined: List[Tuple[Any, Any]] = []
    for t, effect in marks:
        if spec.is_initial(effect):
            continue  # a zero effect cannot move the running value
        if combined and combined[-1][0] == t:
            merged = spec.acc(combined[-1][1], effect)
            if spec.is_initial(merged):
                combined.pop()
            else:
                combined[-1] = (t, merged)
        else:
            combined.append((t, effect))

    rows = []
    previous = NEG_INF
    running = spec.v0
    for t, effect in combined:
        if previous < t:
            rows.append((running, Interval(previous, t)))
        previous = t
        running = spec.acc(running, effect)
    # Interior v0 rows (gaps between tuples) are kept for contiguity;
    # the unbounded leading piece (and a would-be trailing [last, inf)
    # piece, never emitted) carry v0 and are trimmed.
    return trim_initial(ConstantIntervalTable(rows), spec)


def compute(facts: Iterable, kind) -> ConstantIntervalTable:
    """Compute an instantaneous SUM/COUNT/AVG aggregate in O(n log n)."""
    spec = spec_for(kind)
    if not spec.invertible:
        raise ValueError(
            "the end-point sort algorithm handles SUM/COUNT/AVG only; "
            "use the merge-sort baseline for MIN/MAX"
        )
    facts = [(v, i if isinstance(i, Interval) else Interval(*i)) for v, i in facts]
    return sweep_marks(generate_marks(facts, spec), spec)
