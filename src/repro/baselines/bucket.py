"""The bucket algorithm of [MLI00].

Partition the time line into disjoint bucket ranges; tuples whose valid
interval falls inside a single bucket are assigned to it, tuples
spanning several buckets go to a *meta array*.  Each bucket is then
aggregated independently (embarrassingly parallel -- [MLI00] ran this on
a shared-nothing cluster), the per-bucket results are concatenated, and
the meta array's aggregate is merged in with one linear pass.

The per-bucket aggregation can use any temporal aggregation algorithm;
we use the end-point sort for SUM/COUNT/AVG and merge sort for MIN/MAX.
``map_fn`` exposes the per-bucket independence: pass e.g. a thread
pool's ``map`` to run buckets concurrently.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Tuple

from ..core.intervals import Interval
from ..core.results import ConstantIntervalTable, trim_initial
from ..core.values import spec_for
from . import endpoint_sort, merge_sort

__all__ = ["compute", "partition"]


def partition(facts, edges) -> Tuple[List[List], List]:
    """Assign facts to buckets; multi-bucket spanners go to the meta array."""
    buckets: List[List] = [[] for _ in range(len(edges) - 1)]
    meta: List = []
    for value, interval in facts:
        placed = False
        for i in range(len(edges) - 1):
            if edges[i] <= interval.start and interval.end <= edges[i + 1]:
                buckets[i].append((value, interval))
                placed = True
                break
        if not placed:
            meta.append((value, interval))
    return buckets, meta


def compute(
    facts: Iterable,
    kind,
    *,
    num_buckets: int = 16,
    map_fn: Callable = map,
) -> ConstantIntervalTable:
    """Compute an instantaneous temporal aggregate bucket by bucket."""
    spec = spec_for(kind)
    normalized = []
    for value, interval in facts:
        if not isinstance(interval, Interval):
            interval = Interval(*interval)
        normalized.append((value, interval))
    if not normalized:
        return ConstantIntervalTable()
    if num_buckets < 1:
        raise ValueError("need at least one bucket")

    solver = endpoint_sort.compute if spec.invertible else merge_sort.compute

    lo = min(interval.start for _, interval in normalized)
    hi = max(interval.end for _, interval in normalized)
    width = (hi - lo) / num_buckets
    edges = [lo + i * width for i in range(num_buckets)] + [hi]
    buckets, meta = partition(normalized, edges)

    # Independent per-bucket aggregation (parallelizable via map_fn).
    bucket_tables = list(map_fn(lambda chunk: solver(chunk, spec), buckets))

    # Concatenate the disjoint per-bucket results...
    combined_rows: List[Tuple[Any, Interval]] = []
    for table in bucket_tables:
        combined_rows.extend(table.rows)
    # ...and fold in the meta array's aggregate with one linear merge.
    meta_rows = solver(meta, spec).rows
    merged = merge_sort.merge_tables(combined_rows, meta_rows, spec)
    return trim_initial(ConstantIntervalTable(merged).coalesce(spec.eq), spec)
