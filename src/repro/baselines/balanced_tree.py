"""The balanced-tree algorithm of [MLI00] (Figure 23, row "balanced tree").

A variant of the end-point sort algorithm that uses a red-black tree as
the sorting engine: the two effect marks of every tuple are inserted
into the tree keyed by time (same-time marks combined in place), then a
single in-order traversal sweeps the running aggregate value across the
time line.  O(n log n) computation for SUM/COUNT/AVG; like the sort
variant, it supports neither incremental maintenance nor index lookups.
"""

from __future__ import annotations

from typing import Iterable

from ..core.intervals import Interval, NEG_INF
from ..core.results import ConstantIntervalTable, trim_initial
from ..core.values import spec_for
from .redblack import RedBlackTree

__all__ = ["compute"]


def compute(facts: Iterable, kind) -> ConstantIntervalTable:
    """Compute an instantaneous SUM/COUNT/AVG aggregate via a red-black tree."""
    spec = spec_for(kind)
    if not spec.invertible:
        raise ValueError(
            "the balanced-tree algorithm handles SUM/COUNT/AVG only; "
            "use the merge-sort baseline for MIN/MAX"
        )
    tree = RedBlackTree()
    for value, interval in facts:
        if not isinstance(interval, Interval):
            interval = Interval(*interval)
        effect = spec.effect(value)
        tree.insert(interval.start, effect, combine=spec.acc)
        tree.insert(interval.end, spec.diff(spec.v0, effect), combine=spec.acc)

    rows = []
    previous = NEG_INF
    running = spec.v0
    for t, effect in tree.items():
        if spec.is_initial(effect):
            # Opposite marks at the same instant cancelled out: the
            # running value does not change at t, so no row boundary.
            continue
        if previous < t:
            rows.append((running, Interval(previous, t)))
        previous = t
        running = spec.acc(running, effect)
    return trim_initial(ConstantIntervalTable(rows), spec)
