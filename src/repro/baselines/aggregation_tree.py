"""The aggregation tree of [KS95] (Figure 23, row "aggregation tree").

A main-memory binary segment tree over the time line.  Like the SB-tree
it records an effect at the highest node whose range the effect covers,
so it *is* incrementally maintainable -- but it is unbalanced: split
points are created wherever update endpoints happen to fall, in arrival
order.  A base table sorted by valid-interval start (the common data
warehouse arrival order) degenerates the tree into a spine, giving the
O(n) update/lookup and O(n^2) construction worst cases the paper cites,
which the SB-tree's B-tree balancing eliminates.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from ..core.intervals import Interval, NEG_INF, POS_INF, Time
from ..core.results import ConstantIntervalTable, trim_initial
from ..core.values import spec_for

__all__ = ["AggregationTree", "compute"]


class _AggNode:
    """One binary node; its range is implicit from the path to it."""

    __slots__ = ("split", "value", "left", "right")

    def __init__(self, value: Any) -> None:
        self.split: Optional[Time] = None  # None: leaf
        self.value = value
        self.left: Optional["_AggNode"] = None
        self.right: Optional["_AggNode"] = None


class AggregationTree:
    """Incremental, unbalanced, main-memory temporal aggregate index."""

    def __init__(self, kind, lo: Time = NEG_INF, hi: Time = POS_INF) -> None:
        self.spec = spec_for(kind)
        self.lo = lo
        self.hi = hi
        self._root = _AggNode(self.spec.v0)
        self._nodes = 1

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return self._nodes

    def depth(self) -> int:
        # Iterative: a degenerate tree is deeper than Python's stack.
        deepest = 0
        stack = [(self._root, 1)]
        while stack:
            node, d = stack.pop()
            if node.split is None:
                deepest = max(deepest, d)
            else:
                stack.append((node.left, d + 1))
                stack.append((node.right, d + 1))
        return deepest

    # ------------------------------------------------------------------
    def insert(self, value: Any, interval) -> None:
        """Add a base tuple's effect; O(depth) plus at most two new cuts."""
        if not isinstance(interval, Interval):
            interval = Interval(*interval)
        self._apply(self.spec.effect(value), interval)

    def delete(self, value: Any, interval) -> None:
        """Remove a base tuple (SUM/COUNT/AVG); the tree never shrinks."""
        if not isinstance(interval, Interval):
            interval = Interval(*interval)
        self._apply(self.spec.negated_effect(value), interval)

    def _apply(self, effect: Any, interval: Interval) -> None:
        clipped = interval.intersection(Interval(self.lo, self.hi))
        if clipped is None:
            return
        self._insert(self._root, self.lo, self.hi, effect, clipped)

    def _insert(self, node: _AggNode, lo: Time, hi: Time, v: Any, query: Interval) -> None:
        # Iterative descent: the unbalanced tree can be deeper than the
        # Python recursion limit in exactly the degenerate cases this
        # baseline exists to demonstrate.
        acc = self.spec.acc
        stack = [(node, lo, hi)]
        while stack:
            node, lo, hi = stack.pop()
            if query.start <= lo and hi <= query.end:
                # Segment-tree case: the effect covers this whole range.
                node.value = acc(v, node.value)
                continue
            if node.split is None:
                # Partial overlap with a leaf: cut it at one endpoint of
                # the effect and retry (at most two cuts per insertion).
                cut = query.start if lo < query.start else query.end
                assert lo < cut < hi, "cut must fall strictly inside the leaf"
                node.split = cut
                node.left = _AggNode(self.spec.v0)
                node.right = _AggNode(self.spec.v0)
                self._nodes += 2
            if query.start < node.split:
                stack.append((node.left, lo, node.split))
            if query.end > node.split:
                stack.append((node.right, node.split, hi))

    # ------------------------------------------------------------------
    def lookup(self, t: Time) -> Any:
        """Aggregate value at instant *t*: O(depth), O(n) in the worst case."""
        if not (self.lo <= t < self.hi):
            raise KeyError(f"instant {t} outside tree domain [{self.lo}, {self.hi})")
        acc = self.spec.acc
        node = self._root
        result = self.spec.v0
        while node is not None:
            result = acc(result, node.value)
            if node.split is None:
                break
            node = node.left if t < node.split else node.right
        return result

    def rows(self) -> Iterator[Tuple[Any, Interval]]:
        """DFS yielding the (uncoalesced) constant intervals."""
        yield from self._rows(self._root, self.lo, self.hi, self.spec.v0)

    def _rows(self, node, lo, hi, carried) -> Iterator[Tuple[Any, Interval]]:
        # Iterative in-order DFS (the tree can be arbitrarily deep).
        stack = [(node, lo, hi, carried)]
        while stack:
            node, lo, hi, carried = stack.pop()
            value = self.spec.acc(carried, node.value)
            if node.split is None:
                yield value, Interval(lo, hi)
                continue
            stack.append((node.right, node.split, hi, value))
            stack.append((node.left, lo, node.split, value))

    def to_table(self, *, drop_initial: bool = True) -> ConstantIntervalTable:
        """Reconstruct the aggregate's constant-interval table."""
        table = ConstantIntervalTable(self.rows()).coalesce(self.spec.eq)
        if drop_initial:
            table = trim_initial(table, self.spec)
        return table


def compute(facts, kind) -> ConstantIntervalTable:
    """One-shot convenience: build an aggregation tree over *facts*."""
    tree = AggregationTree(kind)
    for value, interval in facts:
        tree.insert(value, interval)
    return tree.to_table()
