"""Baseline temporal aggregation algorithms (the paper's related work).

One module per Figure 23 row:

* :mod:`~repro.baselines.naive` -- the basic two-scan algorithm [Tum92]
* :mod:`~repro.baselines.balanced_tree` -- red-black-tree sweep [MLI00]
* :mod:`~repro.baselines.endpoint_sort` -- the paper's Appendix A
* :mod:`~repro.baselines.merge_sort` -- divide and conquer MIN/MAX [MLI00]
* :mod:`~repro.baselines.aggregation_tree` -- segment tree [KS95]
* :mod:`~repro.baselines.k_ordered` -- garbage-collecting variant [KS95]
* :mod:`~repro.baselines.bucket` -- time-partitioned / parallel [MLI00]
"""

from . import (
    aggregation_tree,
    balanced_tree,
    bucket,
    endpoint_sort,
    merge_sort,
    naive,
)
from .aggregation_tree import AggregationTree
from .k_ordered import KOrderedAggregationTree
from .redblack import RedBlackTree

__all__ = [
    "AggregationTree",
    "KOrderedAggregationTree",
    "RedBlackTree",
    "aggregation_tree",
    "balanced_tree",
    "bucket",
    "endpoint_sort",
    "merge_sort",
    "naive",
]
