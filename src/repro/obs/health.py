"""SB-tree structural-health telemetry and Prometheus-style exposition.

The paper's cost model only holds while the tree stays healthy: lookups
are O(h) *if* height tracks log n, range queries are O(h + r) *if*
compaction keeps the interior-interval population from outgrowing the
fact population, and the I/O-per-op numbers assume a working buffer
pool.  This module measures exactly those preconditions, periodically:

* :func:`tree_health` walks one tree (breadth-first through its store)
  and reports height, node counts, leaf/interior occupancy, interval
  populations, plus the storage-side gauges -- estimated free-list
  length, leftover journal size, buffer hit ratio, page count;
* :func:`sharded_health` does that per shard of a
  :class:`~repro.sharding.ShardedTree` (under each shard's read lock)
  and adds the routing-level gauges: fact and piece counts, per-shard
  piece skew (max/mean), and **compaction debt** -- the ratio of
  interior intervals to facts, the quantity the paper's ``bmerge`` is
  there to keep bounded;
* :func:`record_health` publishes a health report as named
  :class:`~repro.obs.Gauge`\\ s on a registry (the service server does
  this on a timer and on every ``stats`` request);
* :func:`render_prom` renders a whole registry -- counters, gauges,
  histograms (as cumulative ``_bucket{le=...}`` series) -- in the
  Prometheus text exposition format, and :func:`start_metrics_http`
  serves it over HTTP (``repro serve --metrics-port``).

The walk reads nodes through the store's normal read path, so a poll
warms the buffer like any reader; it takes the shard read lock, so it
never observes a half-applied write.
"""

from __future__ import annotations

import http.server
import os
import re
import threading
from typing import Any, Dict, List, Optional, Tuple

from . import MetricsRegistry

__all__ = [
    "tree_health",
    "sharded_health",
    "record_health",
    "render_prom",
    "start_metrics_http",
    "MetricsHTTPServer",
]


def tree_health(tree) -> Dict[str, Any]:
    """Structural and storage health of one tree, as a flat dict."""
    store = tree.store
    per_level: List[int] = []
    leaf_nodes = interior_nodes = 0
    leaf_intervals = interior_intervals = 0
    stack: List[Tuple[Any, int]] = [(store.get_root(), 0)]
    while stack:
        node_id, depth = stack.pop()
        while len(per_level) <= depth:
            per_level.append(0)
        per_level[depth] += 1
        node = store.read(node_id)
        if node.is_leaf:
            leaf_nodes += 1
            leaf_intervals += node.interval_count
        else:
            interior_nodes += 1
            interior_intervals += node.interval_count
            for child in node.children:
                stack.append((child, depth + 1))
    health: Dict[str, Any] = {
        "height": len(per_level),
        "nodes": leaf_nodes + interior_nodes,
        "leaf_nodes": leaf_nodes,
        "interior_nodes": interior_nodes,
        "leaf_intervals": leaf_intervals,
        "interior_intervals": interior_intervals,
        "leaf_fill": (
            leaf_intervals / (leaf_nodes * tree.l) if leaf_nodes else 0.0
        ),
        "interior_fill": (
            interior_intervals / (interior_nodes * tree.b)
            if interior_nodes
            else 0.0
        ),
    }
    pager = getattr(store, "pager", None)
    if pager is not None:
        live = store.node_count()
        health["page_count"] = pager.page_count
        # Every non-header page is either a live node or free-list
        # space; the difference is the free-list length without an
        # O(free) chain walk each poll (fsck does the exact audit).
        health["free_pages"] = max(0, pager.page_count - 1 - live)
        journal = getattr(pager, "journal_path", None)
        try:
            health["journal_bytes"] = (
                os.path.getsize(journal)
                if journal and os.path.exists(journal)
                else 0
            )
        except OSError:  # pragma: no cover - racing an unlink
            health["journal_bytes"] = 0
    buffer = getattr(store, "buffer", None)
    if buffer is not None:
        health["buffer_hit_rate"] = buffer.stats.hit_rate
    return health


def sharded_health(sharded) -> Dict[str, Any]:
    """Per-shard :func:`tree_health` plus routing-level skew and debt."""
    shards: List[Dict[str, Any]] = []
    total_interior = 0
    for index, shard in enumerate(sharded.shards):
        with shard.lock.read_locked(shard.read_timeout):
            entry = tree_health(shard.tree)
        entry["index"] = index
        entry["pieces"] = sharded.pieces_applied[index]
        total_interior += entry["interior_intervals"]
        shards.append(entry)
    pieces = [entry["pieces"] for entry in shards]
    mean_pieces = sum(pieces) / len(pieces) if pieces else 0.0
    facts = sharded.facts_applied
    return {
        "facts": facts,
        "pieces": sum(pieces),
        "num_shards": len(shards),
        # How unevenly the time partitioning spreads the write load:
        # 1.0 is perfectly even, k means the hottest shard holds k
        # times the mean.
        "piece_skew": (max(pieces) / mean_pieces) if mean_pieces else 0.0,
        # The paper's compaction target: interior intervals accumulate
        # with every insert and only bmerge removes them, so this ratio
        # growing past O(1) means range queries are paying for debt.
        "compaction_debt": (total_interior / facts) if facts else 0.0,
        "shards": shards,
    }


def record_health(registry: MetricsRegistry, health: Dict[str, Any]) -> None:
    """Publish a :func:`sharded_health` report as ``health.*`` gauges."""
    for key in ("facts", "pieces", "num_shards", "piece_skew", "compaction_debt"):
        if key in health:
            registry.gauge(f"health.{key}").set(float(health[key]))
    for entry in health.get("shards", ()):
        prefix = f"health.shard.{entry['index']}."
        for key, value in entry.items():
            if key != "index" and isinstance(value, (int, float)):
                registry.gauge(prefix + key).set(float(value))


def record_view_gauges(registry: MetricsRegistry, stats: Dict[str, Any]) -> None:
    """Publish a dynamic-view catalog's stats as ``service.views.*`` gauges.

    One gauge family per view -- ``staleness_s``, ``pending``, ``rows``,
    ``refreshes``, ``watermark`` (the highest source sequence consumed),
    ``quarantined`` (0/1) -- plus the catalog-wide
    ``service.views.count`` and ``service.views.quarantined``.  These
    are what the ``repro top`` staleness panel and the Prometheus
    exposition read.
    """
    views = stats.get("views", {})
    registry.gauge("service.views.count").set(float(len(views)))
    registry.gauge("service.views.quarantined").set(
        float(sum(1 for entry in views.values() if entry.get("quarantined")))
    )
    for name, entry in views.items():
        prefix = f"service.views.{name}."
        for key in ("staleness_s", "pending", "rows", "refreshes"):
            value = entry.get(key)
            if isinstance(value, (int, float)):
                registry.gauge(prefix + key).set(float(value))
        registry.gauge(prefix + "quarantined").set(
            1.0 if entry.get("quarantined") else 0.0
        )
        watermarks = entry.get("watermarks") or {}
        numeric = [v for v in watermarks.values() if isinstance(v, (int, float))]
        if numeric:
            registry.gauge(prefix + "watermark").set(float(max(numeric)))


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_OK.sub("_", name)


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prom(registry: MetricsRegistry) -> str:
    """One registry in the Prometheus text format (version 0.0.4).

    Counters and gauges map directly; histograms become the cumulative
    ``<name>_bucket{le="..."}`` series plus ``_sum`` and ``_count``,
    with the overflow bucket as ``le="+Inf"``.
    """
    snapshot = registry.to_dict()
    lines: List[str] = []
    for name in sorted(snapshot["counters"]):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", ())):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(snapshot['gauges'][name])}")
    histograms = snapshot["histograms"]
    for name in sorted(histograms):
        h = histograms[name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        bounds = [
            float("inf") if b == "inf" else float(b) for b in h["bounds"]
        ]
        buckets = {
            (float("inf") if k == "inf" else float(k)): v
            for k, v in h["buckets"].items()
        }
        cumulative = 0
        for bound in bounds:
            cumulative += buckets.get(bound, 0)
            le = "+Inf" if bound == float("inf") else _prom_value(bound)
            lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{prom}_sum {_prom_value(h['mean'] * h['count'])}")
        lines.append(f"{prom}_count {h['count']}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The /metrics endpoint
# ----------------------------------------------------------------------
class MetricsHTTPServer:
    """A background thread serving ``/metrics`` for one registry.

    Stdlib ``http.server`` on a daemon thread: GET ``/metrics`` renders
    :func:`render_prom` (plus anything the optional ``extra`` callback
    wants to refresh first -- the service server passes its health
    poll), anything else is 404.  ``close()`` shuts the listener down.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        extra=None,
    ) -> None:
        outer = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404, "try /metrics")
                    return
                if outer.extra is not None:
                    try:
                        outer.extra()
                    except Exception:  # noqa: BLE001 - keep serving
                        pass
                body = render_prom(outer.registry).encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-request noise
                pass

        self.registry = registry
        self.extra = extra
        self._httpd = http.server.ThreadingHTTPServer((host, port), Handler)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsHTTPServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def start_metrics_http(
    registry: MetricsRegistry,
    port: int,
    *,
    host: str = "127.0.0.1",
    extra=None,
) -> MetricsHTTPServer:
    """Serve ``/metrics`` for *registry* on ``host:port`` (0 = ephemeral)."""
    return MetricsHTTPServer(registry, host=host, port=port, extra=extra)
