"""Operation-level observability: metrics, per-op I/O deltas, tracing.

The paper states every cost in *node/page accesses per operation*
(``lookup`` O(h), ``insert`` O(h), ``rangeq`` O(h + r), Figure 23), but
the storage counters (:class:`~repro.core.store.StoreStats`,
:class:`~repro.storage.buffer.BufferStats`,
:class:`~repro.storage.pager.PagerStats`) are process-lifetime totals.
This module closes the gap with three small pieces:

* :class:`MetricsRegistry` -- named :class:`Counter`\\ s and fixed-bucket
  :class:`Histogram`\\ s (latencies in microseconds by default);
* :class:`Op` -- a context manager that snapshots the storage counters
  around one tree operation and publishes the *deltas* (logical node
  reads/writes, buffer hits/misses, physical page I/Os) together with
  the wall time, so ``lookup``/``insert``/``delete``/``range_query``/
  ``compact``/``mlookup`` each report their individual cost;
* :class:`TraceSink` -- an optional JSON-lines sink with deterministic
  sampling, one record per operation.

Everything is guarded by the module-level :data:`ENABLED` flag: while it
is ``False`` (the default) an instrumented method pays exactly one
attribute check and one extra function call, nothing else.  Call
:func:`enable` (optionally with a registry and a sink) to start
collecting, :func:`disable` to stop, or use the :func:`collecting`
context manager for scoped measurement (what the benchmarks use instead
of ad-hoc counter resets).

Nested operations are attributed to the *outermost* one: ``compact``
internally runs a ``range_query``, and
:class:`~repro.concurrent.ConcurrentTree` wraps the plain tree methods,
but each logical operation produces exactly one record.

Two submodules extend this per-operation core across the whole stack:

* :mod:`repro.obs.trace` -- request-scoped distributed tracing
  (``TraceContext`` propagated through the service wire protocol,
  span records emitted to the same :class:`TraceSink`);
* :mod:`repro.obs.health` -- SB-tree structural-health gauges and the
  Prometheus-style text exposition behind ``repro stats --format
  prom`` and ``repro serve --metrics-port``.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "ENABLED",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Op",
    "OpRecord",
    "TraceSink",
    "collecting",
    "count",
    "disable",
    "enable",
    "get_registry",
    "get_sink",
    "is_enabled",
    "observed",
    "stores_of",
    "DEFAULT_LATENCY_BUCKETS_US",
]

#: Fast-path guard.  Instrumented methods check this single module
#: attribute and fall through to the undecorated code when it is False.
ENABLED = False

_state_lock = threading.Lock()
_registry: Optional["MetricsRegistry"] = None
_sink: Optional["TraceSink"] = None
_tls = threading.local()


# ----------------------------------------------------------------------
# Primitives: counters and fixed-bucket histograms
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named point-in-time measurement (set, not accumulated).

    Tree-health telemetry (:mod:`repro.obs.health`) publishes structural
    facts -- height, occupancy, free-list length, journal size -- as
    gauges: the latest observation is the whole story, unlike counters.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


#: 1-2-5 decades from 1 microsecond to 5 seconds, plus an overflow
#: bucket: fixed at construction, so recording is one bisect + adds.
DEFAULT_LATENCY_BUCKETS_US: Tuple[float, ...] = tuple(
    m * 10**e for e in range(7) for m in (1, 2, 5)
) + (float("inf"),)


class Histogram:
    """A fixed-bucket histogram (upper-bound buckets, last is +inf).

    Tracks per-bucket counts plus count/total/min/max, so means and
    bucket-resolution quantiles come out without storing samples.
    Mutation is not internally locked; :class:`MetricsRegistry`
    serializes access when records arrive through :class:`Op`.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> None:
        chosen = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BUCKETS_US
        if chosen[-1] != float("inf"):
            chosen = chosen + (float("inf"),)
        if any(b >= a for b, a in zip(chosen, chosen[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = chosen
        self.counts = [0] * len(chosen)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def record(self, value: float) -> None:
        bounds = self.bounds
        lo, hi = 0, len(bounds) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1), interpolated within its bucket.

        The target rank is located in its bucket, then the value is
        linearly interpolated between the bucket's edges instead of
        reporting the upper edge outright -- at low counts the old
        upper-edge answer over-reported latencies by up to a full
        bucket width (2.5x with the default 1-2-5 decades).  The edges
        are clamped to the *observed* min and max, so the first bucket
        interpolates up from the smallest sample and the overflow
        bucket never reports infinity.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, (bound, n) in enumerate(zip(self.bounds, self.counts)):
            below = cumulative
            cumulative += n
            if cumulative >= target and n:
                lo = self.min if i == 0 else max(self.bounds[i - 1], self.min)
                hi = self.max if bound == float("inf") else min(bound, self.max)
                if hi <= lo:
                    return hi
                fraction = (target - below) / n
                return lo + (hi - lo) * fraction
        return self.max  # pragma: no cover - unreachable (inf bucket)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "bounds": [
                "inf" if bound == float("inf") else bound
                for bound in self.bounds
            ],
            "buckets": {
                ("inf" if bound == float("inf") else bound): n
                for bound, n in zip(self.bounds, self.counts)
                if n
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.1f}>"


# ----------------------------------------------------------------------
# Per-operation records
# ----------------------------------------------------------------------
#: Snapshot layout: logical reads/writes/allocations/frees, buffer
#: hits/misses/evictions, physical reads/writes.
_ZEROS = (0, 0, 0, 0, 0, 0, 0, 0, 0)


def _snapshot(stores: Tuple[Any, ...]) -> Tuple[int, ...]:
    """Capture the combined raw counters of one or more node stores."""
    if not stores:
        return _ZEROS
    r = w = al = fr = h = m = ev = pr = pw = 0
    for store in stores:
        st = store.stats
        r += st.reads
        w += st.writes
        al += st.allocations
        fr += st.frees
        buffer = getattr(store, "buffer", None)
        if buffer is not None:
            bs = buffer.stats
            h += bs.hits
            m += bs.misses
            ev += bs.evictions
        pager = getattr(store, "pager", None)
        if pager is not None:
            ps = pager.stats
            pr += ps.physical_reads
            pw += ps.physical_writes
    return (r, w, al, fr, h, m, ev, pr, pw)


@dataclass
class OpRecord:
    """One operation's attribution: I/O deltas plus wall time."""

    op: str
    subject: Optional[str] = None
    wall_us: float = 0.0
    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    lock_wait_us: Optional[float] = None
    extra: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "op": self.op,
            "wall_us": round(self.wall_us, 3),
            "reads": self.reads,
            "writes": self.writes,
            "allocations": self.allocations,
            "frees": self.frees,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "physical_reads": self.physical_reads,
            "physical_writes": self.physical_writes,
        }
        if self.subject is not None:
            record["subject"] = self.subject
        if self.lock_wait_us is not None:
            record["lock_wait_us"] = round(self.lock_wait_us, 3)
        if self.extra:
            record.update(self.extra)
        return record


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """A thread-safe collection of counters and histograms.

    Operation records land under a naming convention so generic
    primitives stay generic: ``op.<name>.count`` (counter),
    ``op.<name>.wall_us`` / ``op.<name>.lock_wait_us`` (histograms) and
    ``op.<name>.<delta>`` counters for each I/O delta.
    """

    _DELTA_FIELDS = (
        "reads",
        "writes",
        "allocations",
        "frees",
        "hits",
        "misses",
        "evictions",
        "physical_reads",
        "physical_writes",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- primitives ----------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            return gauge

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name, bounds)
            return histogram

    # -- operation records ---------------------------------------------
    def record_op(self, record: OpRecord) -> None:
        """Fold one :class:`OpRecord` into the op.* metric family."""
        prefix = f"op.{record.op}."
        with self._lock:
            self._bump(prefix + "count", 1)
            self._observe(prefix + "wall_us", record.wall_us)
            for fieldname in self._DELTA_FIELDS:
                value = getattr(record, fieldname)
                if value:
                    self._bump(prefix + fieldname, value)
            if record.lock_wait_us is not None:
                self._observe(prefix + "lock_wait_us", record.lock_wait_us)

    def _bump(self, name: str, amount: int) -> None:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        counter.value += amount

    def _observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        histogram.record(value)

    # -- introspection -------------------------------------------------
    def op_names(self) -> List[str]:
        with self._lock:
            return sorted(
                name[len("op.") : -len(".count")]
                for name in self._counters
                if name.startswith("op.") and name.endswith(".count")
            )

    def op_summary(self, op: str) -> Dict[str, Any]:
        """Aggregate view of one operation: counts, latency, per-op I/O."""
        prefix = f"op.{op}."
        with self._lock:
            count_counter = self._counters.get(prefix + "count")
            count = count_counter.value if count_counter is not None else 0
            summary: Dict[str, Any] = {"op": op, "count": count}
            wall = self._histograms.get(prefix + "wall_us")
            summary["wall_us"] = wall.to_dict() if wall is not None else None
            lock_wait = self._histograms.get(prefix + "lock_wait_us")
            if lock_wait is not None:
                summary["lock_wait_us"] = lock_wait.to_dict()
            for fieldname in self._DELTA_FIELDS:
                counter = self._counters.get(prefix + fieldname)
                total = counter.value if counter is not None else 0
                summary[fieldname] = total
                summary[fieldname + "_per_op"] = total / count if count else 0.0
        return summary

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histograms = {name: h.to_dict() for name, h in self._histograms.items()}
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render(self) -> str:
        """Per-operation text table (what ``python -m repro stats`` prints)."""
        from ..benchlib import format_table

        ops = self.op_names()
        if not ops:
            return "no operations recorded"
        headers = [
            "op",
            "count",
            "wall p50 us",
            "wall p95 us",
            "wall mean us",
            "reads/op",
            "writes/op",
            "hits/op",
            "misses/op",
            "phys rd/op",
            "phys wr/op",
            "lock p95 us",
        ]
        rows = []
        for op in ops:
            s = self.op_summary(op)
            wall = s["wall_us"] or {"p50": 0.0, "p95": 0.0, "mean": 0.0}
            lock_wait = s.get("lock_wait_us")
            rows.append(
                [
                    op,
                    s["count"],
                    wall["p50"],
                    wall["p95"],
                    wall["mean"],
                    s["reads_per_op"],
                    s["writes_per_op"],
                    s["hits_per_op"],
                    s["misses_per_op"],
                    s["physical_reads_per_op"],
                    s["physical_writes_per_op"],
                    lock_wait["p95"] if lock_wait else "-",
                ]
            )
        return format_table(headers, rows)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ----------------------------------------------------------------------
# Trace sink
# ----------------------------------------------------------------------
class TraceSink:
    """A JSON-lines sink for operation records, with sampling.

    ``sample`` keeps that deterministic fraction of records (1.0 keeps
    everything, 0.1 every tenth record): benchmark replays stay
    reproducible, unlike random sampling.
    """

    def __init__(self, target: Union[str, os.PathLike, Any], *, sample: float = 1.0) -> None:
        if not 0.0 < sample <= 1.0:
            raise ValueError("sample must be within (0, 1]")
        self._owns_file = isinstance(target, (str, os.PathLike))
        self._file = open(target, "a") if self._owns_file else target
        self._lock = threading.Lock()
        self._sample = sample
        self.seen = 0
        self.emitted = 0

    def emit(self, record: Union[OpRecord, Dict[str, Any]]) -> bool:
        """Write one record (subject to sampling); returns True if kept."""
        payload = record.to_dict() if isinstance(record, OpRecord) else dict(record)
        with self._lock:
            self.seen += 1
            kept = int(self.seen * self._sample) != int((self.seen - 1) * self._sample)
            if kept:
                self.emitted += 1
                self._file.write(
                    json.dumps(payload, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
        return kept

    def emit_raw(self, payload: Dict[str, Any]) -> None:
        """Write one record unconditionally (no per-record sampling).

        Span records (:mod:`repro.obs.trace`) use this: sampling for
        traces is decided *once per trace* at the root (head sampling),
        so a kept trace must emit every one of its spans -- per-record
        sampling here would tear span trees apart.
        """
        with self._lock:
            self.emitted += 1
            self._file.write(
                json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
            )

    def close(self) -> None:
        with self._lock:
            self._file.flush()
            if self._owns_file:
                self._file.close()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Global switch
# ----------------------------------------------------------------------
def enable(
    registry: Optional[MetricsRegistry] = None,
    sink: Optional[TraceSink] = None,
) -> MetricsRegistry:
    """Turn collection on; returns the active registry."""
    global ENABLED, _registry, _sink
    with _state_lock:
        if registry is not None:
            _registry = registry
        elif _registry is None:
            _registry = MetricsRegistry()
        if sink is not None:
            _sink = sink
        ENABLED = True
        return _registry


def disable(*, close_sink: bool = False) -> None:
    """Turn collection off (the registry is kept for inspection)."""
    global ENABLED, _sink
    with _state_lock:
        ENABLED = False
        if close_sink and _sink is not None:
            _sink.close()
            _sink = None


def is_enabled() -> bool:
    return ENABLED


def count(name: str, amount: int = 1) -> None:
    """Bump a named counter on the active registry; no-op while disabled.

    The storage layer uses this for rare, out-of-band events (write
    retries, injected faults, degraded-mode entries) that have no
    surrounding :class:`Op`: one attribute check when collection is off.
    """
    if not ENABLED:
        return
    registry = _registry
    if registry is not None:
        registry.counter(name).inc(amount)


def get_registry() -> Optional[MetricsRegistry]:
    return _registry


def get_sink() -> Optional[TraceSink]:
    return _sink


@contextmanager
def collecting(
    sink: Optional[TraceSink] = None,
) -> Iterator[MetricsRegistry]:
    """Scoped collection into a fresh registry, restoring prior state.

    This is the benchmark-facing replacement for ad-hoc
    ``stats.reset()`` calls: deltas are scoped to the block instead of
    clobbering process-lifetime counters.
    """
    global ENABLED, _registry, _sink
    with _state_lock:
        previous = (ENABLED, _registry, _sink)
        registry = MetricsRegistry()
        _registry = registry
        if sink is not None:
            _sink = sink
        ENABLED = True
    try:
        yield registry
    finally:
        with _state_lock:
            ENABLED, _registry, _sink = previous


# ----------------------------------------------------------------------
# The Op context manager and method decorator
# ----------------------------------------------------------------------
class Op:
    """Attribute the storage-counter deltas of one operation.

    ``store`` is a node store or a tuple of them (a dual-tree aggregate
    sums over both of its stores).  After the block, :attr:`record`
    holds the :class:`OpRecord`; it is published to the active registry
    and sink only when this is the outermost in-flight Op on the thread,
    so wrappers (``compact`` -> ``range_query``,
    :class:`~repro.concurrent.ConcurrentTree` -> tree method) never
    double-count.
    """

    __slots__ = (
        "name",
        "subject",
        "stores",
        "lock_wait_us",
        "extra",
        "record",
        "_before",
        "_t0",
        "_outermost",
    )

    def __init__(
        self,
        name: str,
        store: Any = None,
        *,
        subject: Optional[str] = None,
        lock_wait_us: Optional[float] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.subject = subject
        if store is None:
            self.stores: Tuple[Any, ...] = ()
        elif isinstance(store, (tuple, list)):
            self.stores = tuple(store)
        else:
            self.stores = (store,)
        self.lock_wait_us = lock_wait_us
        self.extra = extra
        self.record: Optional[OpRecord] = None

    def __enter__(self) -> "Op":
        depth = getattr(_tls, "depth", 0)
        _tls.depth = depth + 1
        self._outermost = depth == 0
        self._before = _snapshot(self.stores)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        wall_us = (time.perf_counter() - self._t0) * 1e6
        after = _snapshot(self.stores)
        before = self._before
        _tls.depth = getattr(_tls, "depth", 1) - 1
        self.record = OpRecord(
            op=self.name,
            subject=self.subject,
            wall_us=wall_us,
            reads=after[0] - before[0],
            writes=after[1] - before[1],
            allocations=after[2] - before[2],
            frees=after[3] - before[3],
            hits=after[4] - before[4],
            misses=after[5] - before[5],
            evictions=after[6] - before[6],
            physical_reads=after[7] - before[7],
            physical_writes=after[8] - before[8],
            lock_wait_us=self.lock_wait_us,
            extra=self.extra,
        )
        if self._outermost and exc[0] is None:
            registry, sink = _registry, _sink
            if registry is not None:
                registry.record_op(self.record)
            if sink is not None:
                sink.emit(self.record)
        return False


def stores_of(index: Any) -> Tuple[Any, ...]:
    """The node store(s) behind any index-like object, duck-typed.

    Understands dual-tree aggregates (``current``/``ended``), wrappers
    holding a ``tree``, and plain trees holding a ``store``.
    """
    current = getattr(index, "current", None)
    if current is not None and hasattr(index, "ended"):
        return (current.store, index.ended.store)
    tree = getattr(index, "tree", None)
    if tree is not None:
        return stores_of(tree)
    store = getattr(index, "store", None)
    return (store,) if store is not None else ()


def observed(
    name: str, stores: Optional[Callable[[Any], Any]] = None
) -> Callable:
    """Instrument a tree method: per-op deltas when enabled, no-op otherwise.

    ``stores`` maps the bound instance to its node store(s); the default
    reads ``self.store``.  The undecorated function stays reachable via
    ``__wrapped__`` (used by the overhead microbenchmark).
    """

    def decorate(fn: Callable) -> Callable:
        store_of = stores if stores is not None else (lambda self: self.store)

        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if not ENABLED:
                return fn(self, *args, **kwargs)
            with Op(name, store_of(self), subject=type(self).__name__):
                return fn(self, *args, **kwargs)

        return wrapper

    return decorate
