"""The observability-overhead gate (``repro-quickcheck`` stage).

The whole point of the :data:`repro.obs.ENABLED` / ``trace.TRACING``
flag discipline is that instrumentation which is *off* costs nearly
nothing: one attribute check and one extra call per operation.  That
claim regresses silently -- someone hoists a snapshot above the flag
check, a span allocation sneaks into the disabled path -- so this
module measures it and fails loudly instead.

Three timings of the same fixed lookup workload:

* ``baseline`` -- the hand-inlined untraced path: acquire the read
  lock, call the raw tree method.  No wrapper, no flag checks.
* ``disabled`` -- :meth:`~repro.concurrent.ConcurrentTree.lookup` with
  metrics *and* tracing off: the production disabled path.
* ``traced_1pct`` -- tracing enabled with 1% head sampling and a
  null-device sink, each lookup opening a trace root the way the
  service client does.

The gate fails when ``disabled / baseline`` exceeds *threshold* (the
disabled path must stay within a constant factor of hand-written code;
the default leaves generous room for timer noise since one lookup is
only a few microseconds of Python).  The enabled-at-1% ratio is
reported alongside, and the whole measurement is written as
``BENCH_trace_overhead.json`` via
:func:`repro.benchlib.write_bench_json`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from . import TraceSink
from . import disable as obs_disable
from . import is_enabled as obs_is_enabled
from . import trace

__all__ = ["run_overhead_gate", "DEFAULT_THRESHOLD"]

#: Disabled-path slowdown allowed over the hand-inlined baseline.
DEFAULT_THRESHOLD = 1.6


def _build_tree(n: int):
    from ..concurrent import ConcurrentTree
    from ..core.intervals import Interval
    from ..core.sbtree import SBTree

    tree = SBTree("sum", branching=8, leaf_capacity=8)
    for i in range(n):
        tree.insert(i % 7 + 1, Interval(i * 3, i * 3 + 25))
    return ConcurrentTree(tree), 3 * n + 25


def _time_best(fn, repeat: int = 3) -> float:
    from ..benchlib import time_call

    return time_call(fn, repeat=repeat)


def run_overhead_gate(
    *,
    facts: int = 400,
    lookups: int = 4000,
    threshold: float = DEFAULT_THRESHOLD,
    out_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Measure the three paths; returns the report (``ok`` is the gate).

    Must run with observability globally disabled (it manages the
    flags itself); raises :class:`RuntimeError` otherwise instead of
    publishing a corrupted measurement.
    """
    if obs_is_enabled() or trace.is_enabled():
        raise RuntimeError(
            "overhead gate needs obs/tracing disabled before it runs"
        )
    ct, span_end = _build_tree(facts)
    probes = [(i * 997) % span_end for i in range(lookups)]

    tree, lock = ct.tree, ct.lock

    def baseline() -> None:
        for t in probes:
            lock.acquire_read()
            try:
                tree.lookup(t)
            finally:
                lock.release_read()

    def disabled() -> None:
        for t in probes:
            ct.lookup(t)

    def traced() -> None:
        for t in probes:
            ctx = trace.new_trace()
            if ctx is not None:
                with trace.activated(ctx):
                    ct.lookup(t)
            else:
                ct.lookup(t)

    base_s = _time_best(baseline)
    disabled_s = _time_best(disabled)
    with open(os.devnull, "w") as null:
        sink = TraceSink(null)
        trace.enable(sink, sample=0.01)
        try:
            traced_s = _time_best(traced)
        finally:
            trace.disable()
    obs_disable()

    ratio_disabled = disabled_s / base_s if base_s else 0.0
    ratio_traced = traced_s / base_s if base_s else 0.0
    report: Dict[str, Any] = {
        "facts": facts,
        "lookups": lookups,
        "baseline_us_per_op": base_s / lookups * 1e6,
        "disabled_us_per_op": disabled_s / lookups * 1e6,
        "traced_1pct_us_per_op": traced_s / lookups * 1e6,
        "ratio_disabled": round(ratio_disabled, 4),
        "ratio_traced_1pct": round(ratio_traced, 4),
        "threshold": threshold,
        "ok": ratio_disabled <= threshold,
    }
    if out_dir is not None:
        from ..benchlib import Series, write_bench_json

        series = Series("mode", [0, 1, 2])
        series.add(
            "us_per_op",
            [
                report["baseline_us_per_op"],
                report["disabled_us_per_op"],
                report["traced_1pct_us_per_op"],
            ],
        )
        write_bench_json(
            out_dir,
            "trace_overhead",
            series,
            extra={
                "modes": ["baseline", "disabled", "traced_1pct"],
                **{k: v for k, v in report.items() if k not in ("facts", "lookups")},
            },
        )
    return report


def render_report(report: Dict[str, Any]) -> str:
    """One-paragraph human summary of a gate run."""
    return (
        f"overhead gate: baseline {report['baseline_us_per_op']:.2f} us/op, "
        f"disabled {report['disabled_us_per_op']:.2f} us/op "
        f"(x{report['ratio_disabled']:.2f}), "
        f"traced@1% {report['traced_1pct_us_per_op']:.2f} us/op "
        f"(x{report['ratio_traced_1pct']:.2f}); "
        f"threshold x{report['threshold']:.2f} -> "
        f"{'OK' if report['ok'] else 'FAIL'}"
    )
