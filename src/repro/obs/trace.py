"""Request-scoped distributed tracing across the service stack.

The paper states every cost as node accesses *per operation*; since the
service layer, one client request fans out across the wire protocol,
group-commit batching, shard routing, per-shard locks, the tree, and
the pager -- and a per-operation record can no longer say where one
request's time and I/O went.  This module correlates all of those hops
under one **trace**:

* :class:`TraceContext` is the propagation token: ``trace_id`` names
  the request end to end, ``span_id`` the current hop, ``parent_id``
  the hop that caused it.  It rides inside the service protocol's JSON
  frames as a ``"trace"`` field (see :mod:`repro.service.protocol`).
* :func:`span` opens one **span**: a named, timed segment that
  snapshots the storage counters around itself (reusing the
  :class:`~repro.obs.Op` snapshot machinery), so every span carries its
  own I/O deltas -- node reads, buffer hits/misses, physical page I/Os.
  Span records are JSON lines on the active :class:`~repro.obs.TraceSink`,
  distinguishable from per-op records by their ``"span"`` key.
* **Head sampling** is decided once per trace at the root
  (:func:`new_trace`), deterministically (every k-th request for a
  sampling fraction 1/k, exactly like ``TraceSink``'s record
  sampling); a kept trace emits *all* of its spans, a dropped trace
  emits none and costs nothing downstream (the context simply is not
  created, so no wire field, no server spans, no snapshots).
* The **disabled path** matches :data:`repro.obs.ENABLED` semantics:
  while :data:`TRACING` is ``False``, an instrumented call site pays
  one module-attribute check and one function call returning a shared
  null context manager, nothing else.

**Group commit** needs one extra piece: a flush applies facts from
*several* requests with one lock round per shard, so its shard/tree
spans belong to several traces at once.  :class:`SpanCollector`
records those spans once, trace-agnostically (local ids, relative
structure), and :meth:`SpanCollector.replay` re-emits them under each
participating request's trace with fresh span ids -- every request's
trace reconstructs into a complete rooted tree, at the cost of one
duplicate record per extra participant (batch sizes bound this).

Span taxonomy (DESIGN.md section 9 has the full table)::

    client.request            root: one client call, retries included
      server.request          the server-side dispatch of one frame
        service.flush         the group-commit flush that applied a write
          shard.apply         one shard's slice of a flushed batch
            tree.insert       the tree ops inside the shard write lock
        shard.lookup          fan-out: one shard's share of a read
          tree.lookup         the tree op under the shard read lock
        shard.range_query     (same shape for range / window reads)
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import TraceSink, _snapshot, get_sink

__all__ = [
    "TRACING",
    "TraceContext",
    "Span",
    "SpanCollector",
    "activated",
    "current",
    "disable",
    "emit_span",
    "enable",
    "is_enabled",
    "new_trace",
    "span",
    "wrap",
]

#: Fast-path guard, mirroring :data:`repro.obs.ENABLED`: call sites
#: check this one module attribute when tracing is off.
TRACING = False

_state_lock = threading.Lock()
_sink: Optional[TraceSink] = None
_registry = None  # optional MetricsRegistry folding span.<name>.wall_us
_sample = 1.0
_trace_seen = 0

_tls = threading.local()

#: Process-unique id prefix: span ids stay unique when client and
#: server trace from different processes into files that are later
#: merged.
_ID_PREFIX = f"{os.getpid():x}"
_ids = itertools.count(1)


def _new_id() -> str:
    return f"{_ID_PREFIX}-{next(_ids):x}"


# ----------------------------------------------------------------------
# Contexts
# ----------------------------------------------------------------------
class TraceContext:
    """One hop of one trace: (trace_id, span_id, parent_id).

    Immutable by convention; derive the next hop with :meth:`child`.
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(
        self, trace_id: str, span_id: str, parent_id: Optional[str] = None
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def child(self) -> "TraceContext":
        """A fresh context one level below this one."""
        return TraceContext(self.trace_id, _new_id(), self.span_id)

    def to_wire(self) -> Dict[str, str]:
        """The JSON-frame form carried inside service requests."""
        return {"id": self.trace_id, "span": self.span_id}

    @classmethod
    def from_wire(cls, payload: Any) -> Optional["TraceContext"]:
        """Parse a request's ``"trace"`` field; None if absent/garbage."""
        if not isinstance(payload, dict):
            return None
        trace_id, span_id = payload.get("id"), payload.get("span")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id, span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceContext {self.trace_id} span={self.span_id} "
            f"parent={self.parent_id}>"
        )


class _LocalContext:
    """A trace-agnostic context recording into a :class:`SpanCollector`."""

    __slots__ = ("collector", "local_id")

    def __init__(self, collector: "SpanCollector", local_id: int) -> None:
        self.collector = collector
        self.local_id = local_id

    def child(self) -> "_LocalContext":
        return _LocalContext(self.collector, self.collector._next_local())


# ----------------------------------------------------------------------
# Global switch
# ----------------------------------------------------------------------
def enable(
    sink: Optional[TraceSink] = None,
    *,
    sample: float = 1.0,
    registry=None,
) -> None:
    """Turn tracing on.

    ``sink`` receives span records (falls back to the sink registered
    with :func:`repro.obs.enable`); ``sample`` is the head-sampling
    fraction applied per trace at :func:`new_trace`; ``registry``, when
    given, additionally folds each span's duration into a
    ``span.<name>.wall_us`` histogram (what the ``stats`` service op
    and ``repro top`` read for the span breakdown).
    """
    global TRACING, _sink, _sample, _registry
    if not 0.0 < sample <= 1.0:
        raise ValueError("sample must be within (0, 1]")
    with _state_lock:
        if sink is not None:
            _sink = sink
        _sample = sample
        if registry is not None:
            _registry = registry
        TRACING = True


def disable(*, close_sink: bool = False) -> None:
    """Turn tracing off (in-flight spans finish silently)."""
    global TRACING, _sink, _registry
    with _state_lock:
        TRACING = False
        if close_sink and _sink is not None:
            _sink.close()
        _sink = None
        _registry = None


def is_enabled() -> bool:
    return TRACING


def _active_sink() -> Optional[TraceSink]:
    return _sink if _sink is not None else get_sink()


# ----------------------------------------------------------------------
# Trace roots and context activation
# ----------------------------------------------------------------------
def new_trace() -> Optional[TraceContext]:
    """Start a new trace at this call site, or None if head-sampled out.

    Deterministic: with ``sample=s``, the n-th call is kept iff
    ``int(n*s) != int((n-1)*s)`` -- every trace for 1.0, every tenth
    for 0.1 -- so replayed workloads trace the same requests.
    """
    global _trace_seen
    if not TRACING:
        return None
    with _state_lock:
        _trace_seen += 1
        n = _trace_seen
        kept = int(n * _sample) != int((n - 1) * _sample)
    if not kept:
        return None
    trace_id = _new_id()
    return TraceContext(trace_id, _new_id(), None)


def current() -> Optional[TraceContext]:
    """The context active on this thread (None outside any trace)."""
    ctx = getattr(_tls, "ctx", None)
    return ctx if isinstance(ctx, TraceContext) else None


class activated:
    """``with activated(ctx): ...`` -- make *ctx* current on this thread.

    The service server uses this to carry a request's context into the
    executor thread that runs its blocking tree operation.  Accepts
    None (no-op) so call sites need no branch.
    """

    __slots__ = ("_ctx", "_prev")

    def __init__(self, ctx) -> None:
        self._ctx = ctx

    def __enter__(self):
        self._prev = getattr(_tls, "ctx", None)
        if self._ctx is not None:
            _tls.ctx = self._ctx
        return self._ctx

    def __exit__(self, *exc) -> bool:
        _tls.ctx = self._prev
        return False


def wrap(ctx, fn: Callable, *args: Any) -> Callable[[], Any]:
    """A zero-arg callable running ``fn(*args)`` with *ctx* activated.

    This is the executor-dispatch shim: the event loop cannot set
    another thread's trace context, so it hands the pool a closure that
    activates it on arrival.
    """

    def run():
        with activated(ctx):
            return fn(*args)

    return run


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class _NullSpan:
    """Shared no-op context manager: the disabled/unsampled fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


_NULL = _NullSpan()

#: Snapshot delta fields, in `_snapshot` tuple order.
_DELTA_FIELDS = (
    "reads",
    "writes",
    "allocations",
    "frees",
    "hits",
    "misses",
    "evictions",
    "physical_reads",
    "physical_writes",
)


class Span:
    """One open span; created by :func:`span` only when a trace is live."""

    __slots__ = ("name", "stores", "attrs", "_ctx", "_prev", "_before", "_t0", "_ts")

    def __init__(self, name, stores, attrs, parent) -> None:
        self.name = name
        self.stores = stores
        self.attrs = dict(attrs) if attrs else {}
        self._ctx = parent.child()
        self._prev = parent

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span (e.g. a lock-wait time)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        _tls.ctx = self._ctx
        self._ts = time.time()
        self._before = _snapshot(self.stores)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, *exc) -> bool:
        wall_us = (time.perf_counter() - self._t0) * 1e6
        after = _snapshot(self.stores)
        _tls.ctx = self._prev
        deltas = tuple(a - b for a, b in zip(after, self._before))
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        ctx = self._ctx
        if isinstance(ctx, _LocalContext):
            ctx.collector._add(
                ctx.local_id,
                ctx_parent_local(self._prev),
                self.name,
                self._ts,
                wall_us,
                self.attrs,
                deltas,
            )
        else:
            _publish(
                ctx.trace_id,
                ctx.span_id,
                ctx.parent_id,
                self.name,
                self._ts,
                wall_us,
                self.attrs,
                deltas,
            )
        return False


def ctx_parent_local(ctx) -> Optional[int]:
    """The local id of a collector context (None for the recording root)."""
    if isinstance(ctx, _LocalContext):
        return ctx.local_id
    return None


def span(name: str, stores: Tuple[Any, ...] = (), attrs=None):
    """Open a span under the thread's current context; no-op otherwise.

    ``stores`` are node stores to snapshot around the span (same duck
    typing as :class:`~repro.obs.Op`); ``attrs`` is a dict of static
    attributes.  Returns a shared null context when tracing is off or
    this thread is outside any sampled trace, so instrumented code can
    call it unconditionally.
    """
    if not TRACING:
        return _NULL
    parent = getattr(_tls, "ctx", None)
    if parent is None:
        return _NULL
    return Span(name, stores, attrs, parent)


def _publish(
    trace_id: str,
    span_id: str,
    parent_id: Optional[str],
    name: str,
    ts: float,
    wall_us: float,
    attrs: Dict[str, Any],
    deltas: Tuple[int, ...],
    fold: bool = True,
) -> None:
    record: Dict[str, Any] = {
        "span": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "ts_us": round(ts * 1e6, 1),
        "wall_us": round(wall_us, 3),
    }
    for fieldname, value in zip(_DELTA_FIELDS, deltas):
        if value:
            record[fieldname] = value
    if attrs:
        record.update(attrs)
    sink = _active_sink()
    if sink is not None:
        sink.emit_raw(record)
    if fold:
        registry = _registry
        if registry is not None:
            registry.histogram(f"span.{name}.wall_us").record(wall_us)


def emit_span(
    ctx: TraceContext,
    name: str,
    wall_us: float,
    *,
    ts: Optional[float] = None,
    attrs: Optional[Dict[str, Any]] = None,
) -> None:
    """Emit one span record for an already-measured segment.

    For async code that cannot use the :func:`span` context manager
    (thread-local context would leak across interleaved tasks on the
    event loop): the caller times the segment itself and publishes it
    under *ctx* -- which is the span's own context, its parent being
    ``ctx.parent_id``.
    """
    if not TRACING:
        return
    _publish(
        ctx.trace_id,
        ctx.span_id,
        ctx.parent_id,
        name,
        ts if ts is not None else time.time(),
        wall_us,
        attrs or {},
        (),
    )


# ----------------------------------------------------------------------
# Group-commit fan-in: record once, replay per participating trace
# ----------------------------------------------------------------------
class SpanCollector:
    """Records spans trace-agnostically for later multi-trace replay.

    One group-commit flush applies facts from several requests with one
    write-lock round per shard; its shard/tree spans are recorded here
    *once* (local ids, parent structure, timings, I/O deltas) and then
    :meth:`replay`\\ ed under each sampled participant's trace with
    fresh span ids.  Thread-compatible, not thread-safe: one flush owns
    one collector on one executor thread.
    """

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self.spans: List[
            Tuple[int, Optional[int], str, float, float, Dict[str, Any], Tuple[int, ...]]
        ] = []

    def _next_local(self) -> int:
        return next(self._counter)

    def _add(
        self,
        local_id: int,
        parent_local: Optional[int],
        name: str,
        ts: float,
        wall_us: float,
        attrs: Dict[str, Any],
        deltas: Tuple[int, ...],
    ) -> None:
        self.spans.append(
            (local_id, parent_local, name, ts, wall_us, dict(attrs), deltas)
        )

    def recording(self) -> "activated":
        """Activate this collector as the thread's recording context."""
        return activated(_LocalContext(self, 0))

    def replay(self, parent: TraceContext, *, fold: bool = False) -> None:
        """Re-emit every recorded span under *parent*'s trace.

        Top-level recorded spans become children of ``parent.span_id``;
        nested structure is preserved via a fresh id per recorded span.
        ``fold`` controls whether durations also land in the span
        histograms of the registry -- the flush folds once (its first
        participant), not once per duplicate.
        """
        ids: Dict[int, str] = {}
        for local_id, parent_local, name, ts, wall_us, attrs, deltas in self.spans:
            span_id = ids.setdefault(local_id, _new_id())
            if parent_local is None or parent_local == 0:
                parent_id = parent.span_id
            else:
                parent_id = ids.setdefault(parent_local, _new_id())
            _publish(
                parent.trace_id,
                span_id,
                parent_id,
                name,
                ts,
                wall_us,
                attrs,
                deltas,
                fold=fold,
            )
