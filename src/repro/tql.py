"""TQL: a small textual language for temporal aggregate queries.

The paper motivates temporal aggregates as constructs of temporal query
languages (TQuel [SGM93], TSQL2 [Sno95]).  TQL is a miniature such
surface over this package's relations::

    SUM(dosage) OVER prescription
    AVG(dosage) OVER prescription WINDOW 5 AT 32
    MAX(dosage) OVER prescription WHEN patient != 'Dan' DURING [10, 50)
    COUNT(dosage) OVER prescription PARTITION BY patient AT 19

Grammar (case-insensitive keywords)::

    statement  = agg "(" field ")" "OVER" name clause*
    agg        = SUM | COUNT | AVG | MIN | MAX
    clause     = "WINDOW" number
               | "WHEN" condition
               | "PARTITION" "BY" field
               | "AT" number
               | "DURING" "[" number "," number ")"
    condition  = or-expression over comparisons:
                 field|literal (= != <> < <= > >=) field|literal,
                 combined with AND / OR / NOT and parentheses

``field`` is ``value`` (the tuple's aggregated value) or a payload key.
A statement with ``AT`` returns a scalar (a dict when partitioned); with
``DURING`` or neither, a constant-interval table (or dict of tables).

Parsing is a hand-written tokenizer plus recursive descent; evaluation
delegates to :class:`repro.query.TemporalQuery`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .core.intervals import Interval, Time
from .query import TemporalQuery
from .relation.table import TemporalRelation
from .relation.tuples import TemporalTuple

__all__ = ["parse", "execute", "TQLError", "Statement"]

_KEYWORDS = {
    "SUM", "COUNT", "AVG", "MIN", "MAX",
    "OVER", "WINDOW", "WHEN", "PARTITION", "BY", "AT", "DURING",
    "AND", "OR", "NOT",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),\[\)])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


class TQLError(ValueError):
    """Raised for malformed TQL statements."""


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise TQLError(f"unexpected character {text[position]!r} at {position}")
        kind = match.lastgroup
        if kind != "ws":
            value = match.group()
            if kind == "name" and value.upper() in _KEYWORDS:
                kind, value = "keyword", value.upper()
            tokens.append(_Token(kind, value, position))
        position = match.end()
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    left: Union[str, Any]  # ("field", name) or ("literal", value)
    op: str
    right: Union[str, Any]


@dataclass(frozen=True)
class BoolOp:
    op: str  # "and" | "or" | "not"
    operands: Tuple[Any, ...]


@dataclass(frozen=True)
class Statement:
    aggregate: str
    field: str
    relation: str
    window: Optional[Time] = None
    condition: Optional[Any] = None
    partition_field: Optional[str] = None
    at: Optional[Time] = None
    during: Optional[Tuple[Time, Time]] = None


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise TQLError("unexpected end of statement")
        self._index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            expected = text or kind
            raise TQLError(
                f"expected {expected!r}, found {token.text!r} at {token.position}"
            )
        return token

    def _number(self) -> Time:
        token = self._expect("number")
        value = float(token.text)
        return int(value) if value == int(value) else value

    # ------------------------------------------------------------------
    def statement(self) -> Statement:
        agg = self._next()
        if agg.kind != "keyword" or agg.text not in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
            raise TQLError(f"expected an aggregate name, found {agg.text!r}")
        self._expect("punct", "(")
        field_name = self._expect("name").text
        self._expect("punct", ")")
        self._expect("keyword", "OVER")
        relation = self._expect("name").text

        window = condition = partition = at = during = None
        while self._peek() is not None:
            clause = self._expect("keyword")
            if clause.text == "WINDOW":
                if window is not None:
                    raise TQLError("duplicate WINDOW clause")
                window = self._number()
            elif clause.text == "WHEN":
                if condition is not None:
                    raise TQLError("duplicate WHEN clause")
                condition = self._condition()
            elif clause.text == "PARTITION":
                self._expect("keyword", "BY")
                partition = self._expect("name").text
            elif clause.text == "AT":
                at = self._number()
            elif clause.text == "DURING":
                self._expect("punct", "[")
                start = self._number()
                self._expect("punct", ",")
                end = self._number()
                self._expect("punct", ")")
                during = (start, end)
            else:
                raise TQLError(f"unexpected clause {clause.text!r}")
        if at is not None and during is not None:
            raise TQLError("AT and DURING are mutually exclusive")
        return Statement(
            aggregate=agg.text.lower(),
            field=field_name,
            relation=relation,
            window=window,
            condition=condition,
            partition_field=partition,
            at=at,
            during=during,
        )

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def _condition(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        operands = [left]
        while self._at_keyword("OR"):
            self._next()
            operands.append(self._and_expr())
        if len(operands) == 1:
            return left
        return BoolOp("or", tuple(operands))

    def _and_expr(self):
        left = self._not_expr()
        operands = [left]
        while self._at_keyword("AND"):
            self._next()
            operands.append(self._not_expr())
        if len(operands) == 1:
            return left
        return BoolOp("and", tuple(operands))

    def _not_expr(self):
        if self._at_keyword("NOT"):
            self._next()
            return BoolOp("not", (self._not_expr(),))
        return self._primary()

    def _primary(self):
        token = self._peek()
        if token is not None and token.kind == "punct" and token.text == "(":
            self._next()
            inner = self._or_expr()
            self._expect("punct", ")")
            return inner
        return self._comparison()

    def _operand(self):
        token = self._next()
        if token.kind == "name":
            return ("field", token.text)
        if token.kind == "number":
            value = float(token.text)
            return ("literal", int(value) if value == int(value) else value)
        if token.kind == "string":
            raw = token.text[1:-1]
            return ("literal", raw.replace("\\'", "'").replace("\\\\", "\\"))
        raise TQLError(f"expected a field or literal, found {token.text!r}")

    def _comparison(self) -> Comparison:
        left = self._operand()
        op = self._expect("op").text
        right = self._operand()
        return Comparison(left, "!=" if op == "<>" else op, right)

    def _at_keyword(self, name: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "keyword" and token.text == name


def parse(text: str) -> Statement:
    """Parse a TQL statement into its AST, validating the grammar."""
    parser = _Parser(_tokenize(text))
    statement = parser.statement()
    return statement


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _field_value(row: TemporalTuple, name: str) -> Any:
    if name == "value":
        return row.value
    try:
        return row.payload[name]
    except KeyError:
        raise TQLError(f"tuple #{row.tuple_id} has no field {name!r}") from None


def _evaluate_operand(row: TemporalTuple, operand) -> Any:
    kind, payload = operand
    if kind == "field":
        return _field_value(row, payload)
    return payload


def _compile_condition(node) -> Callable[[TemporalTuple], bool]:
    if isinstance(node, Comparison):
        op = _OPS[node.op]
        return lambda row: op(
            _evaluate_operand(row, node.left), _evaluate_operand(row, node.right)
        )
    if isinstance(node, BoolOp):
        compiled = [_compile_condition(child) for child in node.operands]
        if node.op == "and":
            return lambda row: all(check(row) for check in compiled)
        if node.op == "or":
            return lambda row: any(check(row) for check in compiled)
        inner = compiled[0]
        return lambda row: not inner(row)
    raise TQLError(f"unknown condition node {node!r}")


def execute(text: str, relations: Dict[str, TemporalRelation]) -> Any:
    """Parse and run a TQL statement against the given relations.

    Returns, depending on the statement's result clause:

    * ``AT t`` -- a scalar (or ``{partition_key: scalar}``),
    * ``DURING [a, b)`` or no result clause -- a
      :class:`~repro.core.results.ConstantIntervalTable` (or a dict of
      them when partitioned).
    """
    statement = parse(text)
    try:
        relation = relations[statement.relation]
    except KeyError:
        raise TQLError(f"unknown relation {statement.relation!r}") from None

    query = TemporalQuery(relation).aggregate(statement.aggregate)
    field_name = statement.field
    if field_name != "value":
        query = query.value(lambda row: _field_value(row, field_name))
    if statement.condition is not None:
        query = query.where(_compile_condition(statement.condition))
    if statement.window is not None:
        query = query.window(statement.window)

    if statement.partition_field is not None:
        key = statement.partition_field
        partitioned = query.partition_by(lambda row: _field_value(row, key))
        if statement.at is not None:
            return partitioned.at(statement.at)
        tables = partitioned.tables()
        if statement.during is not None:
            window = Interval(*statement.during)
            return {k: t.restrict(window) for k, t in tables.items()}
        return tables

    if statement.at is not None:
        return query.at(statement.at)
    if statement.during is not None:
        return query.over(Interval(*statement.during))
    return query.table()
