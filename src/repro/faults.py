"""Deterministic fault injection for the storage layer.

The SB-tree is a *disk-based* index, so its correctness claims extend
to failure modes a real disk exhibits: torn page writes, transient and
permanent I/O errors, failed fsyncs, and crashes at arbitrary points in
the journal protocol.  This module provides the controlled versions of
all of those:

* :class:`SimulatedCrash` -- the exception a "process death" raises at a
  named crash point.  It deliberately does *not* subclass
  :class:`OSError`, so the pager's retry machinery never swallows it.
* :class:`FaultInjector` -- a seedable, fully deterministic fault plan
  wrapped around the pager's file operations.  The pager consults it at
  labeled *crash points* (``before_journal_write``,
  ``before_commit_fsync``, ...) and around every raw ``write``/``fsync``
  it issues, letting tests and the :mod:`repro.crashcheck` harness
  inject:

  - a crash at the N-th hit of any named crash point,
  - a *delay* (:meth:`FaultInjector.slow_at`) at the N-th hit of any
    crash point, modeling a stalled disk or shard,
  - a *torn write* (only a prefix of the data reaches the file before
    the simulated crash) on the data file or the journal,
  - transient or permanent :class:`OSError` on writes and fsyncs.

  Beyond the pager, the sharded service path
  (:class:`repro.sharding.ShardedTree`, :mod:`repro.service`) consults
  the same injector at the ``shard_apply`` / ``shard_apply:<i>`` crash
  points before a write batch touches a shard, so slow and failed
  applies are injectable end to end.

* :func:`simulate_crash` -- abandon a store/pager's file handles the way
  a dying process would (no commit, no header write-back, no journal
  cleanup), so the recovery path can be exercised by reopening the file.
* :func:`derive_rng` -- deterministic child RNGs for the package's other
  randomized fault sources (the :mod:`repro.service.chaos` network
  proxy, the service client's retry jitter), so every chaos run is
  reproducible from one root seed.

Every injected fault is counted (:attr:`FaultInjector.injected`) and,
when :mod:`repro.obs` collection is enabled, mirrored into the active
:class:`~repro.obs.MetricsRegistry` under ``faults.*`` counters.

Determinism: with the same seed, the same fault plan, and the same
workload, the injector fires identically on every run -- there is no
wall-clock or PID dependence, which is what makes the crash-consistency
sweep in :mod:`repro.crashcheck` reproducible.
"""

from __future__ import annotations

import errno
import random
import time
from typing import Any, Dict, Optional, Tuple

from . import obs

__all__ = [
    "FaultInjector",
    "SimulatedCrash",
    "derive_rng",
    "simulate_crash",
]


def derive_rng(seed: Any, *streams: Any) -> random.Random:
    """A deterministic child RNG for one named fault stream.

    Every randomized fault source in the package -- the network chaos
    proxy's per-connection plans, the service client's retry jitter --
    derives its generator here, so a run is reproducible from one root
    seed: ``derive_rng(seed, "conn", 3)`` yields the same stream on
    every run, independent of thread scheduling or wall clock.
    """
    key = ":".join(str(part) for part in (seed,) + streams)
    return random.Random(key)


class SimulatedCrash(RuntimeError):
    """A simulated process death, raised at a named crash point.

    Carries the crash point (or write/fsync label) it fired at, so the
    harness can report where a failing recovery originated.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


class _WriteFault:
    """One armed write/fsync fault: OSError for the next *times* calls."""

    __slots__ = ("label", "times", "errno_")

    def __init__(self, label: str, times: Optional[int], errno_: int) -> None:
        self.label = label
        self.times = times  # None means permanent
        self.errno_ = errno_

    def consume(self) -> bool:
        """Whether this fault fires now (and uses up one charge)."""
        if self.times is None:
            return True
        if self.times > 0:
            self.times -= 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self.times == 0


class FaultInjector:
    """A deterministic fault plan for one or more pagers.

    The same injector may be shared by several pagers (e.g. every view
    store of a warehouse): crash-point hit counts are global to the
    injector, which is exactly what a "crash between committing view N
    and view N+1" test needs.

    Arming methods may be chained::

        inj = FaultInjector(seed=7)
        inj.crash_at("before_commit_fsync", hit=2).fail_writes(times=1)
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        #: crash-point name -> number of times the point was reached.
        self.hits: Dict[str, int] = {}
        #: fault kind -> number of times it actually fired.
        self.injected: Dict[str, int] = {}
        #: write/fsync label -> number of intercepted calls.
        self.write_calls: Dict[str, int] = {}
        self.fsync_calls: Dict[str, int] = {}
        self._crash_points: Dict[str, int] = {}  # point -> hit number
        self._delays: Dict[str, Dict[int, float]] = {}  # point -> {hit: seconds}
        self._write_faults: list = []
        self._fsync_faults: list = []
        #: label -> (call number, fraction) for torn writes.
        self._torn: Dict[str, Tuple[int, float]] = {}
        self._disarmed = False

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def crash_at(self, point: str, hit: int = 1) -> "FaultInjector":
        """Raise :class:`SimulatedCrash` at the *hit*-th time *point* is reached."""
        if hit < 1:
            raise ValueError("hit numbers are 1-based")
        self._crash_points[point] = hit
        return self

    def slow_at(
        self, point: str, seconds: float, *, hit: int = 1
    ) -> "FaultInjector":
        """Sleep *seconds* at the *hit*-th time *point* is reached.

        Models a slow disk or a stalled shard apply rather than a dead
        one; the service layer uses it to prove that a slow shard delays
        only its own replies instead of hanging the server.
        """
        if hit < 1:
            raise ValueError("hit numbers are 1-based")
        if seconds < 0:
            raise ValueError("delay must be non-negative")
        self._delays.setdefault(point, {})[hit] = seconds
        return self

    def fail_writes(
        self,
        label: str = "data",
        *,
        times: Optional[int] = 1,
        errno_: int = errno.EIO,
    ) -> "FaultInjector":
        """Make the next *times* writes on *label* raise :class:`OSError`.

        ``times=None`` arms a *permanent* failure (every write fails),
        which is how the pager's degraded mode is exercised.
        """
        self._write_faults.append(_WriteFault(label, times, errno_))
        return self

    def fail_fsyncs(
        self,
        label: str = "data",
        *,
        times: Optional[int] = 1,
        errno_: int = errno.EIO,
    ) -> "FaultInjector":
        """Make the next *times* fsyncs on *label* raise :class:`OSError`."""
        self._fsync_faults.append(_WriteFault(label, times, errno_))
        return self

    def tear_write(
        self, label: str = "journal", *, call: Optional[int] = None,
        fraction: float = 0.5,
    ) -> "FaultInjector":
        """Tear the *call*-th write on *label*: write a prefix, then crash.

        ``call=None`` tears the next write.  ``fraction`` is the portion
        of the payload that reaches the file (at least one byte, at most
        all but one), modeling a torn page or a partial journal append.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        target = self.write_calls.get(label, 0) + 1 if call is None else call
        self._torn[label] = (target, fraction)
        return self

    def disarm(self) -> "FaultInjector":
        """Stop injecting faults (counting continues)."""
        self._disarmed = True
        return self

    def rearm(self) -> "FaultInjector":
        self._disarmed = False
        return self

    # ------------------------------------------------------------------
    # Pager-facing interception
    # ------------------------------------------------------------------
    def crash_point(self, point: str) -> None:
        """Count a crash-point hit; delay and/or raise if this hit is armed."""
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        if self._disarmed:
            return
        delay = self._delays.get(point, {}).pop(count, None)
        if delay is not None:
            self._record("delay")
            time.sleep(delay)
        if self._crash_points.get(point) == count:
            self._record("crash")
            raise SimulatedCrash(point)

    def intercept_write(
        self, label: str, data: bytes
    ) -> Tuple[bytes, Optional[BaseException]]:
        """Decide one raw write's fate.

        Returns ``(bytes_to_write, exception_or_None)``: the caller must
        write the returned bytes, flush, then raise the exception if one
        is given (that is how a torn write leaves its prefix in the
        file).  I/O-error faults raise :class:`OSError` directly, before
        any bytes are written.
        """
        count = self.write_calls.get(label, 0) + 1
        self.write_calls[label] = count
        if self._disarmed:
            return data, None
        torn = self._torn.get(label)
        if torn is not None and torn[0] == count:
            del self._torn[label]
            keep = max(1, min(len(data) - 1, int(len(data) * torn[1])))
            self._record("torn_write")
            return data[:keep], SimulatedCrash(f"torn {label} write")
        for fault in self._write_faults:
            if fault.label == label and fault.consume():
                self._record("io_error")
                raise OSError(fault.errno_, f"injected {label} write error")
        self._write_faults = [f for f in self._write_faults if not f.exhausted]
        return data, None

    def intercept_fsync(self, label: str) -> None:
        """Count an fsync; raise :class:`OSError` if a fault is armed."""
        self.fsync_calls[label] = self.fsync_calls.get(label, 0) + 1
        if self._disarmed:
            return
        for fault in self._fsync_faults:
            if fault.label == label and fault.consume():
                self._record("fsync_error")
                raise OSError(fault.errno_, f"injected {label} fsync error")
        self._fsync_faults = [f for f in self._fsync_faults if not f.exhausted]

    # ------------------------------------------------------------------
    def _record(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        obs.count(f"faults.{kind}")

    def reset_counts(self) -> None:
        """Clear hit/call counters (the armed plan is kept)."""
        self.hits.clear()
        self.write_calls.clear()
        self.fsync_calls.clear()
        self.injected.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector seed={self.seed} armed="
            f"{sorted(self._crash_points)} injected={self.injected}>"
        )


def simulate_crash(store_or_pager: Any) -> None:
    """Abandon file handles the way a dying process would.

    Accepts a :class:`~repro.storage.store.PagedNodeStore` or a bare
    :class:`~repro.storage.pager.Pager`.  No header write-back, no
    commit, no journal cleanup happens -- the next open of the same path
    sees exactly what a crash would have left behind (buffered bytes
    are handed to the OS, mirroring a process that died after its
    libc buffers were drained but before any further syscall).
    """
    pager = getattr(store_or_pager, "pager", store_or_pager)
    for handle in (pager._file, pager._journal_file):
        if handle is None or handle.closed:
            continue
        try:
            handle.flush()
        except (OSError, ValueError):
            pass
        try:
            handle.close()
        except (OSError, ValueError):
            pass
