"""repro: SB-trees and MSB-trees for temporal aggregates.

A full reproduction of Yang & Widom, *Incremental Computation and
Maintenance of Temporal Aggregates* (ICDE 2001): disk-capable index
structures for instantaneous and cumulative (moving-window) temporal
aggregates, the baseline algorithms the paper compares against, a
temporal-warehouse view layer, and the benchmark harness that
regenerates every figure and table of the paper.

Quickstart::

    from repro import SBTree, Interval

    tree = SBTree("sum")
    tree.insert(2, Interval(10, 40))     # Amy's prescription
    tree.insert(3, Interval(10, 30))     # Ben's
    tree.lookup(19)                      # -> 5
    print(tree.to_table().pretty("sum"))
"""

from .core import (
    AggregateKind,
    AggregateSpec,
    ConstantIntervalTable,
    DualTreeAggregate,
    FixedWindowTree,
    Interval,
    MSBTree,
    MemoryNodeStore,
    NEG_INF,
    NodeStore,
    POS_INF,
    SBTree,
    StoreStats,
    TreeInvariantError,
    check_tree,
    spec_for,
)
from . import obs
from .concurrent import ConcurrentTree, ReadWriteLock
from .query import TemporalQuery
from .sharding import ShardRouter, ShardedTree

__version__ = "0.1.0"

__all__ = [
    "AggregateKind",
    "AggregateSpec",
    "ConcurrentTree",
    "ConstantIntervalTable",
    "DualTreeAggregate",
    "FixedWindowTree",
    "Interval",
    "MSBTree",
    "MemoryNodeStore",
    "NEG_INF",
    "NodeStore",
    "POS_INF",
    "ReadWriteLock",
    "SBTree",
    "ShardRouter",
    "ShardedTree",
    "StoreStats",
    "TemporalQuery",
    "TreeInvariantError",
    "check_tree",
    "obs",
    "spec_for",
    "__version__",
]
