"""Parallel temporal aggregation (the [MLI00] bucket parallelization).

Section 2 of the paper: the bucket algorithm "works by partitioning the
time line into disjoint intervals ... Temporal aggregation can then be
performed independently for each interval", which [MLI00] ran on a
shared-nothing cluster, and which the paper notes "is complementary to
ours and can be used to parallelize them".

This module provides that parallel driver over Python executors:

* :func:`parallel_compute` -- one-shot parallel aggregation: partition,
  solve buckets concurrently, merge with the meta array.
* :func:`parallel_build` -- the "complementary to ours" combination the
  paper points at: solve buckets in parallel, then bulk-load the merged
  result into an SB-tree, yielding an index rather than a table.

Both accept any ``concurrent.futures``-style executor; the worker
function is a module-level callable so process pools can pickle it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .baselines import endpoint_sort, merge_sort
from .baselines.bucket import partition
from .core.intervals import Interval
from .core.results import ConstantIntervalTable, trim_initial
from .core.sbtree import SBTree
from .core.values import spec_for

__all__ = ["parallel_compute", "parallel_build", "solve_bucket"]


def solve_bucket(args: Tuple[list, str]) -> list:
    """Aggregate one bucket's facts; module-level for process pools."""
    facts, kind = args
    spec = spec_for(kind)
    solver = endpoint_sort.compute if spec.invertible else merge_sort.compute
    return solver(facts, spec).rows


def _edges(facts, num_buckets: int) -> List[float]:
    """Evenly spaced bucket boundaries over the facts' time span.

    When every endpoint is an integer the edges are computed with
    integer arithmetic: true division would yield float boundaries
    (e.g. ``33.333...``) and let floats leak into the partitioning of an
    otherwise int-valued timeline, breaking endpoint-type fidelity
    against the int-domain oracle.
    """
    lo = min(interval.start for _, interval in facts)
    hi = max(interval.end for _, interval in facts)
    if isinstance(lo, int) and isinstance(hi, int):
        span = hi - lo
        return [lo + (span * i) // num_buckets for i in range(num_buckets)] + [hi]
    width = (hi - lo) / num_buckets
    return [lo + i * width for i in range(num_buckets)] + [hi]


def _merged_rows(facts, kind, num_buckets, executor) -> list:
    spec = spec_for(kind)
    normalized = []
    for value, interval in facts:
        if not isinstance(interval, Interval):
            interval = Interval(*interval)
        normalized.append((value, interval))
    if not normalized:
        return []
    buckets, meta = partition(normalized, _edges(normalized, num_buckets))

    jobs = [(chunk, spec.kind.value) for chunk in buckets]
    if executor is None:
        solved = [solve_bucket(job) for job in jobs]
    else:
        solved = list(executor.map(solve_bucket, jobs))

    combined: list = []
    for rows in solved:
        combined.extend(rows)
    meta_rows = solve_bucket((meta, spec.kind.value))
    return merge_sort.merge_tables(combined, meta_rows, spec)


def parallel_compute(
    facts: Iterable,
    kind,
    *,
    num_buckets: int = 16,
    executor=None,
) -> ConstantIntervalTable:
    """Compute an instantaneous temporal aggregate with parallel buckets.

    ``executor`` is any object with a ``map`` method (e.g.
    ``ThreadPoolExecutor``, ``ProcessPoolExecutor``); ``None`` runs the
    buckets sequentially, which is useful as a correctness baseline.
    """
    spec = spec_for(kind)
    rows = _merged_rows(list(facts), spec, num_buckets, executor)
    return trim_initial(ConstantIntervalTable(rows).coalesce(spec.eq), spec)


def parallel_build(
    facts: Iterable,
    kind,
    *,
    num_buckets: int = 16,
    executor=None,
    store=None,
    branching: int = 32,
    leaf_capacity: Optional[int] = None,
) -> SBTree:
    """Build an SB-tree index with parallel bucket aggregation.

    The paper calls the bucket algorithm "complementary to ours":
    buckets are aggregated concurrently, the merged constant intervals
    are bulk-loaded bottom-up, and the result is a fully functional,
    incrementally maintainable SB-tree.
    """
    spec = spec_for(kind)
    rows = _merged_rows(list(facts), spec, num_buckets, executor)
    tree = SBTree(spec, store, branching=branching, leaf_capacity=leaf_capacity)
    if rows:
        # merge_tables pads to the full time line already.
        tree.bulk_load(ConstantIntervalTable(rows).coalesce(spec.eq))
    return tree
