"""Time-partitioned SB-tree shards (the scale-out layer).

Section 2 of the paper describes the [MLI00] bucket algorithm, which
"works by partitioning the time line into disjoint intervals" and notes
the approach "is complementary to ours and can be used to parallelize
them".  :mod:`repro.parallel` exploits that for one-shot builds; this
module applies the same time decomposition to the *maintained* index:

* :class:`ShardRouter` partitions the time line at fixed finite
  boundaries into ``k`` half-open shard ranges covering ``(-inf, inf)``
  (the outermost ranges are unbounded, so no fact can miss).
* :class:`ShardedTree` keeps one :class:`~repro.concurrent.ConcurrentTree`
  per shard range.  A fact ``[s, e)`` is *split at shard boundaries*
  and each piece goes to the shard whose range covers it -- exactly the
  bucket decomposition, except spanning facts are split instead of
  parked in a meta array, so there is no hot meta shard and writers
  block only the shards their time range touches.  Splitting preserves
  every *instantaneous* aggregate: the value at instant ``t`` depends
  only on the facts containing ``t``, and each piece contains exactly
  the instants its source fact did within that shard range.

Queries fan out to the shards their window overlaps and merge with the
same step-function concatenation the bucket algorithm uses (per-shard
results are disjoint and adjacent, so the merge is a concatenation plus
coalesce).  Cumulative window lookups are served for MIN/MAX through
the paper's own range-scan route (Section 4: cumulative MIN/MAX at
``t`` equals the extremum of the instantaneous aggregate over the
closed window ``[t - w, t]``).  For SUM/COUNT/AVG a cumulative window
aggregate is *not* derivable from the sharded instantaneous index
(splitting would double-count a spanning fact; the paper's Figure 20
makes the general point), so :meth:`ShardedTree.window_lookup` raises
:class:`WindowUnsupportedError` for invertible kinds -- callers get a
structured refusal, never a wrong number.

Concurrency contract: each shard is individually linearizable (its
:class:`~repro.concurrent.ConcurrentTree` lock).  A multi-shard
operation (spanning insert, fan-out query) is *not* atomic across
shards: a concurrent reader may observe a spanning insert applied to a
prefix of its shards.  The service layer (:mod:`repro.service`)
restores per-request ordering by acknowledging group-committed writes
only after every shard applied them.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .concurrent import ConcurrentTree
from .core.intervals import Interval, NEG_INF, POS_INF, Time, is_finite
from .core.results import ConstantIntervalTable, trim_initial
from .core.sbtree import IntervalLike, SBTree, as_interval
from .core.values import AggregateSpec, spec_for
from .obs import stores_of, trace

__all__ = [
    "ShardRouter",
    "ShardedTree",
    "ShardingError",
    "WindowUnsupportedError",
    "even_boundaries",
]


class ShardingError(ValueError):
    """Invalid sharding configuration or routing request."""


class WindowUnsupportedError(ShardingError):
    """Cumulative window lookups are MIN/MAX-only on a sharded tree."""


def even_boundaries(lo: Time, hi: Time, num_shards: int) -> List[Time]:
    """Evenly spaced internal boundaries for *num_shards* over ``[lo, hi)``.

    Integer endpoints stay integers (the same endpoint-type fidelity
    rule as :func:`repro.parallel._edges`): true division would leak
    float cut points into an int-valued timeline.
    """
    if num_shards < 1:
        raise ShardingError("need at least one shard")
    if not (is_finite(lo) and is_finite(hi) and lo < hi):
        raise ShardingError(f"need a finite non-empty span, got [{lo}, {hi})")
    if isinstance(lo, int) and isinstance(hi, int):
        span = hi - lo
        cuts = [lo + (span * i) // num_shards for i in range(1, num_shards)]
    else:
        width = (hi - lo) / num_shards
        cuts = [lo + i * width for i in range(1, num_shards)]
    # Degenerate spans (span < num_shards in the int domain) can repeat
    # a cut; deduplicate so every shard range is non-empty.
    return sorted(set(cuts))


class ShardRouter:
    """Maps instants and intervals onto time-range shards.

    ``boundaries`` are the *internal* cut points: ``k - 1`` sorted,
    distinct, finite instants produce ``k`` shard ranges

    ``(-inf, b0), [b0, b1), ..., [b_{k-2}, +inf)``

    which cover the whole time line.  An instant exactly at a boundary
    belongs to the shard *starting* there, matching the half-open
    ``[start, end)`` convention everywhere else in the package.
    """

    __slots__ = ("boundaries",)

    def __init__(self, boundaries: Sequence[Time]) -> None:
        cuts = list(boundaries)
        if cuts != sorted(cuts) or len(set(cuts)) != len(cuts):
            raise ShardingError("boundaries must be sorted and distinct")
        if any(not is_finite(b) for b in cuts):
            raise ShardingError("boundaries must be finite instants")
        self.boundaries: Tuple[Time, ...] = tuple(cuts)

    @property
    def num_shards(self) -> int:
        return len(self.boundaries) + 1

    def shard_of(self, t: Time) -> int:
        """Index of the shard whose range contains instant *t*."""
        return bisect.bisect_right(self.boundaries, t)

    def range_of(self, index: int) -> Interval:
        """The half-open time range served by shard *index*."""
        if not 0 <= index < self.num_shards:
            raise ShardingError(f"no shard {index} (have {self.num_shards})")
        lo = NEG_INF if index == 0 else self.boundaries[index - 1]
        hi = POS_INF if index == len(self.boundaries) else self.boundaries[index]
        return Interval(lo, hi)

    def overlapping(self, interval: IntervalLike) -> range:
        """Indices of every shard the interval overlaps, in time order."""
        interval = as_interval(interval)
        first = self.shard_of(interval.start)
        # The last shard touched is the one containing the last covered
        # instant; with half-open intervals an end exactly at a boundary
        # does *not* reach the shard starting there.
        last = bisect.bisect_left(self.boundaries, interval.end)
        return range(first, last + 1)

    def split(self, interval: IntervalLike) -> Iterator[Tuple[int, Interval]]:
        """Decompose an interval into per-shard pieces.

        Yields ``(shard_index, piece)`` with the pieces disjoint,
        adjacent, and exactly covering the input -- the bucket
        decomposition of [MLI00] applied to one fact.
        """
        interval = as_interval(interval)
        for index in self.overlapping(interval):
            piece = self.range_of(index).intersection(interval)
            if piece is not None:
                yield index, piece

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShardRouter {self.num_shards} shards @ {list(self.boundaries)}>"


class ShardedTree:
    """A time-partitioned temporal aggregate index.

    Parameters
    ----------
    kind:
        Aggregate kind (name, :class:`AggregateKind`, or spec).
    boundaries:
        Internal shard cut points (see :class:`ShardRouter`).  Mutually
        exclusive with ``num_shards``/``span``.
    num_shards, span:
        Convenience: evenly partition ``span = (lo, hi)`` into
        ``num_shards`` ranges via :func:`even_boundaries`.
    stores:
        Optional per-shard node stores (one per shard, e.g.
        :class:`~repro.storage.PagedNodeStore` instances); defaults to
        fresh in-memory stores.
    read_timeout, write_timeout:
        Per-shard lock timeouts in seconds (see
        :class:`~repro.concurrent.ConcurrentTree`).
    fault_injector:
        Optional :class:`~repro.faults.FaultInjector`; consulted at the
        ``shard_apply`` crash point (and ``shard_apply:<i>`` per shard)
        before a batch touches a shard, so tests can inject slow or
        failed applies without corrupting tree state.
    """

    def __init__(
        self,
        kind,
        boundaries: Optional[Sequence[Time]] = None,
        *,
        num_shards: Optional[int] = None,
        span: Optional[Tuple[Time, Time]] = None,
        stores: Optional[Sequence[Any]] = None,
        branching: int = 32,
        leaf_capacity: Optional[int] = None,
        read_timeout: Optional[float] = None,
        write_timeout: Optional[float] = None,
        fault_injector: Optional[Any] = None,
    ) -> None:
        self.spec: AggregateSpec = spec_for(kind)
        if boundaries is None:
            if num_shards is None or span is None:
                raise ShardingError(
                    "pass either boundaries or num_shards + span"
                )
            boundaries = even_boundaries(span[0], span[1], num_shards)
        self.router = ShardRouter(boundaries)
        if stores is not None and len(stores) != self.router.num_shards:
            raise ShardingError(
                f"{self.router.num_shards} shards need {self.router.num_shards}"
                f" stores, got {len(stores)}"
            )
        self.fault_injector = fault_injector
        self.shards: List[ConcurrentTree] = []
        for i in range(self.router.num_shards):
            store = stores[i] if stores is not None else None
            tree = SBTree(
                self.spec,
                store,
                branching=branching,
                leaf_capacity=leaf_capacity,
            )
            self.shards.append(
                ConcurrentTree(
                    tree,
                    read_timeout=read_timeout,
                    write_timeout=write_timeout,
                )
            )
        self._counts_lock = threading.Lock()
        self.facts_applied = 0  # whole facts accepted
        self.pieces_applied = [0] * self.router.num_shards

    # ------------------------------------------------------------------
    @property
    def kind(self):
        return self.spec.kind

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    def _crash_point(self, shard: Optional[int] = None) -> None:
        injector = self.fault_injector
        if injector is None:
            return
        injector.crash_point("shard_apply")
        if shard is not None:
            injector.crash_point(f"shard_apply:{shard}")

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, value: Any, interval: IntervalLike) -> None:
        """Insert one fact, splitting it at shard boundaries."""
        self.batch_insert([(value, interval)])

    def delete(self, value: Any, interval: IntervalLike) -> None:
        """Delete one fact (invertible kinds only), piece by piece.

        The split is deterministic, so deleting an interval previously
        inserted removes exactly the pieces the insert created.
        """
        by_shard = self._group([(value, interval)])
        for index, pieces in by_shard.items():
            shard = self.shards[index]
            self._crash_point(index)
            with shard.lock.write_locked(shard.write_timeout):
                for piece_value, piece in pieces:
                    shard.tree.delete(piece_value, piece)
        with self._counts_lock:
            self.facts_applied -= 1
            for index, pieces in by_shard.items():
                self.pieces_applied[index] -= len(pieces)

    def batch_insert(self, facts: Iterable[Tuple[Any, IntervalLike]]) -> int:
        """Insert many facts with one lock acquisition per touched shard.

        This is the group-commit apply path of the service layer: pieces
        are grouped per shard first, then each shard is locked once and
        receives all its pieces.  Returns the number of whole facts
        applied.
        """
        facts = list(facts)
        by_shard = self._group(facts)
        for index in sorted(by_shard):
            pieces = by_shard[index]
            shard = self.shards[index]
            self._crash_point(index)
            # One shard.apply span per touched shard (covers the lock
            # wait), with the batched tree inserts as its single tree-op
            # child -- the per-shard leaf the trace tree promises.
            with trace.span(
                "shard.apply", attrs={"shard": index, "pieces": len(pieces)}
            ):
                with shard.lock.write_locked(shard.write_timeout):
                    with trace.span(
                        "tree.insert",
                        stores_of(shard.tree),
                        attrs={"shard": index, "pieces": len(pieces)},
                    ):
                        for value, piece in pieces:
                            shard.tree.insert(value, piece)
        with self._counts_lock:
            self.facts_applied += len(facts)
            for index, pieces in by_shard.items():
                self.pieces_applied[index] += len(pieces)
        return len(facts)

    def _group(
        self, facts: Iterable[Tuple[Any, IntervalLike]]
    ) -> Dict[int, List[Tuple[Any, Interval]]]:
        by_shard: Dict[int, List[Tuple[Any, Interval]]] = {}
        for value, interval in facts:
            for index, piece in self.router.split(interval):
                by_shard.setdefault(index, []).append((value, piece))
        return by_shard

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def lookup(self, t: Time) -> Any:
        """Internal aggregate value at instant *t* (one shard touched)."""
        index = self.router.shard_of(t)
        with trace.span("shard.lookup", attrs={"shard": index}):
            return self.shards[index].lookup(t)

    def lookup_final(self, t: Time) -> Any:
        """User-facing aggregate value at instant *t*."""
        return self.spec.finalize(self.lookup(t))

    def range_query(self, interval: IntervalLike) -> ConstantIntervalTable:
        """Fan out to the overlapped shards and concatenate their tables.

        Each shard returns the step function over its clip of the query
        window; the clips are disjoint and adjacent, so the merged
        result is their concatenation (the bucket algorithm's merge,
        with an empty meta array because spanning facts were split).
        """
        interval = as_interval(interval)
        rows: List[Tuple[Any, Interval]] = []
        for index in self.router.overlapping(interval):
            clip = self.range_of(index).intersection(interval)
            if clip is None:
                continue
            with trace.span("shard.range_query", attrs={"shard": index}):
                rows.extend(self.shards[index].range_query(clip).rows)
        return ConstantIntervalTable(rows)

    def range_of(self, index: int) -> Interval:
        return self.router.range_of(index)

    def to_table(
        self, *, coalesced: bool = True, drop_initial: bool = True
    ) -> ConstantIntervalTable:
        """Reconstruct the full aggregate over ``(-inf, +inf)``.

        Matches :meth:`repro.core.sbtree.SBTree.to_table` row for row on
        the same fact set.
        """
        table = self.range_query(Interval(NEG_INF, POS_INF))
        if coalesced:
            table = table.coalesce(self.spec.eq)
        if drop_initial:
            table = trim_initial(table, self.spec)
        return table

    def window_lookup(self, t: Time, w: Time) -> Any:
        """Cumulative MIN/MAX over the closed window ``[t - w, t]``.

        Uses the paper's range-scan route (Section 4): the cumulative
        extremum equals the extremum of the instantaneous aggregate over
        the window, which splitting preserves.  Invertible kinds raise
        :class:`WindowUnsupportedError` -- their cumulative aggregate
        cannot be recovered from split pieces (a spanning fact would be
        double-counted).
        """
        if self.spec.invertible:
            raise WindowUnsupportedError(
                f"cumulative window lookups on a sharded {self.spec.kind} "
                "index are unsupported (use a dual-tree per shard range "
                "or an unsharded DualTreeAggregate)"
            )
        if w < 0:
            raise ShardingError("window offset must be non-negative")
        result = self.lookup(t)
        if w > 0:
            for value, _ in self.range_query(Interval(t - w, t)):
                result = self.spec.acc(result, value)
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Structural and routing statistics, one entry per shard."""
        shards = []
        for index, shard in enumerate(self.shards):
            tree = shard.tree
            shards.append(
                {
                    "index": index,
                    "range": [self.range_of(index).start, self.range_of(index).end],
                    "height": tree.height,
                    "nodes": tree.node_count(),
                    "pieces": self.pieces_applied[index],
                }
            )
        return {
            "kind": self.spec.kind.value,
            "num_shards": self.num_shards,
            "boundaries": list(self.router.boundaries),
            "facts": self.facts_applied,
            "shards": shards,
        }

    def check(self) -> None:
        """Run the structural invariant audit on every shard."""
        from .core.validate import check_tree

        for shard in self.shards:
            check_tree(shard.tree)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @property
    def durable(self) -> bool:
        """Whether any shard store supports transactional commits."""
        return any(
            getattr(shard.tree.store, "commit", None) is not None
            for shard in self.shards
        )

    def commit(self, meta: Optional[Dict[str, str]] = None) -> int:
        """Commit every shard store that supports it; returns the count.

        This is the service layer's group-commit durability point: the
        server calls it after a write batch applied, *before* the
        batch's waiters are acknowledged, so an acked write is durable.
        ``meta`` entries are written into each store's header metadata
        inside the same commit -- the pager journals the header page,
        so metadata (the dedup window) and tree data are atomic per
        store.  Stores without a ``commit`` method (in-memory shards)
        are skipped.

        Caveat: commits are per store.  A crash *between* two shard
        commits can leave a spanning fact applied in a prefix of its
        shards; single-store deployments (what ``repro-rescheck``
        verifies) have no such window.
        """
        committed = 0
        for shard in self.shards:
            store = shard.tree.store
            commit = getattr(store, "commit", None)
            if commit is None:
                continue
            with shard.lock.write_locked(shard.write_timeout):
                if meta:
                    for key, value in meta.items():
                        store.set_meta(key, value)
                commit()
            committed += 1
        return committed

    def get_meta(self, key: str) -> List[str]:
        """Collect a metadata value from every shard store that has it."""
        values: List[str] = []
        for shard in self.shards:
            get = getattr(shard.tree.store, "get_meta", None)
            if get is None:
                continue
            value = get(key)
            if value is not None:
                values.append(value)
        return values

    def close(self) -> None:
        """Close every shard's node store (no-op for in-memory stores)."""
        for shard in self.shards:
            close = getattr(shard.tree.store, "close", None)
            if close is not None:
                close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedTree {self.spec.kind.value} shards={self.num_shards} "
            f"facts={self.facts_applied}>"
        )
