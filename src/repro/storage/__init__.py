"""Disk substrate: page files, buffer pool, node serialization."""

from .buffer import BufferPool, BufferStats
from .codec import NodeCodec, NodeEncodingError
from .fsck import Finding, FsckReport, fsck, fsck_dynamic
from .pager import (
    DEFAULT_PAGE_SIZE,
    JournalError,
    PageCorruptionError,
    Pager,
    PagerDegradedError,
    PagerStats,
)
from .store import PagedNodeStore

__all__ = [
    "BufferPool",
    "BufferStats",
    "DEFAULT_PAGE_SIZE",
    "Finding",
    "FsckReport",
    "JournalError",
    "NodeCodec",
    "NodeEncodingError",
    "PageCorruptionError",
    "PagedNodeStore",
    "Pager",
    "PagerDegradedError",
    "PagerStats",
    "fsck",
    "fsck_dynamic",
]
