"""Disk substrate: page files, buffer pool, node serialization."""

from .buffer import BufferPool, BufferStats
from .codec import NodeCodec, NodeEncodingError
from .pager import DEFAULT_PAGE_SIZE, PageCorruptionError, Pager, PagerStats
from .store import PagedNodeStore

__all__ = [
    "BufferPool",
    "BufferStats",
    "DEFAULT_PAGE_SIZE",
    "NodeCodec",
    "NodeEncodingError",
    "PageCorruptionError",
    "PagedNodeStore",
    "Pager",
    "PagerStats",
]
