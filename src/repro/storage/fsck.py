"""Offline integrity checking and repair for SB-tree page files.

``repro fsck`` is to a page file what ``fsck`` is to a filesystem: it
never needs the tree to be openable, it trusts nothing but the bytes on
disk, and it reports every inconsistency it can find:

* **header** -- magic, version, geometry sanity, header page count vs
  actual file size;
* **checksums** -- a full CRC32 sweep over every data page;
* **free list** -- cycles, out-of-range ids, corrupt link pages,
  pages that are simultaneously free and reachable;
* **reachability** -- walks the tree from the root pointer, decoding
  nodes with the file's own codec: dangling child pointers, pages
  referenced twice, and *orphans* (allocated to neither the tree nor
  the free list -- leaked space);
* **journal** -- a leftover rollback journal is parsed and each record
  CRC-verified, so torn or bit-flipped journals are called out before
  anyone trusts a recovery based on them.

With ``repair=True`` the audit is followed by an offline repair pass:
a leftover journal is first settled through the pager's normal
recovery, corrupt pages are *quarantined* (recorded under the header
meta key ``quarantine`` and excluded from allocation), the free list is
rebuilt from scratch out of every non-reachable non-corrupt page, and
the header's live-node count and page count are made consistent with
the file again.  Corrupt pages that are *reachable from the root* are
reported as unrepairable: their payload is gone, so the tree itself
needs rebuilding (``repro build``) -- fsck never invents data.

``repro fsck`` also audits dynamic-view catalog checkpoints
(``dynamic.json``): :func:`fsck_dynamic` verifies the JSON itself, the
schema version, DAG consistency (every source exists and precedes its
consumers), watermark sanity (within each source log's ``base..head``
window), change-log density (sequence numbers dense in
``base + 1 .. head``), and reports leftover temp files from an
interrupted checkpoint rename.
"""

from __future__ import annotations

import json
import os
import struct
import warnings
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from .codec import NodeCodec
from .pager import _CRC, _FREE_LINK, _HEADER, _MAGIC, _VERSION, NO_PAGE, Pager
from .. import obs
from ..core.values import spec_for

__all__ = ["Finding", "FsckReport", "fsck", "fsck_dynamic"]

#: The journal magic of the previous (CRC-less) record format, still
#: recognized during inspection so the report can say what it found.
_LEGACY_JOURNAL_MAGIC = b"SBTRjrnl"


@dataclass
class Finding:
    """One fsck observation: an error, a warning, or a note."""

    severity: str  # "error" | "warning" | "info"
    code: str  # machine-readable class, e.g. "bad-checksum"
    message: str
    page_id: Optional[int] = None

    def __str__(self) -> str:
        where = f" (page {self.page_id})" if self.page_id is not None else ""
        return f"{self.severity}: [{self.code}]{where} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
        }
        if self.page_id is not None:
            record["page_id"] = self.page_id
        return record


@dataclass
class FsckReport:
    """The full outcome of one fsck run."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    page_size: int = 0
    page_count: int = 0
    live_nodes: int = 0
    reachable: int = 0
    free_pages: int = 0
    orphans: List[int] = field(default_factory=list)
    corrupt: List[int] = field(default_factory=list)
    quarantined: List[int] = field(default_factory=list)
    journal_records: int = 0
    repaired: bool = False
    unrepairable: List[int] = field(default_factory=list)
    #: With ``repair=True``: the audit of the file as it was *before*
    #: repair; the main report then reflects the repaired file.
    pre_repair: Optional["FsckReport"] = None

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def add(
        self,
        severity: str,
        code: str,
        message: str,
        page_id: Optional[int] = None,
    ) -> None:
        self.findings.append(Finding(severity, code, message, page_id))

    def has(self, code: str) -> bool:
        return any(f.code == code for f in self.findings)

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "path": self.path,
            "ok": self.ok,
            "page_size": self.page_size,
            "page_count": self.page_count,
            "live_nodes": self.live_nodes,
            "reachable": self.reachable,
            "free_pages": self.free_pages,
            "orphans": self.orphans,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "journal_records": self.journal_records,
            "repaired": self.repaired,
            "unrepairable": self.unrepairable,
            "findings": [f.to_dict() for f in self.findings],
        }
        if self.pre_repair is not None:
            record["pre_repair"] = self.pre_repair.to_dict()
        return record

    def render(self) -> str:
        lines = []
        if self.pre_repair is not None:
            lines.append("--- before repair ---")
            lines.append(self.pre_repair.render())
            lines.append("--- after repair ---")
        lines += [
            f"file        : {self.path}",
            f"page size   : {self.page_size}",
            f"pages       : {self.page_count}",
            f"reachable   : {self.reachable}  free: {self.free_pages}  "
            f"orphans: {len(self.orphans)}  corrupt: {len(self.corrupt)}",
        ]
        if self.quarantined:
            lines.append(f"quarantined : {sorted(self.quarantined)}")
        for finding in self.findings:
            lines.append(str(finding))
        if self.repaired:
            lines.append("repair      : applied")
        if self.unrepairable:
            lines.append(
                f"unrepairable: pages {sorted(self.unrepairable)} are "
                "reachable from the root and corrupt; rebuild the index "
                "(repro build) to recover"
            )
        lines.append(f"status      : {'clean' if self.ok else 'NOT clean'}")
        return "\n".join(lines)


class _FileImage:
    """A raw, read-only parse of a page file: header, pages, journal."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.file_size = os.path.getsize(path)
        with open(path, "rb") as handle:
            self.data = handle.read()
        self.header_ok = False
        self.page_size = 0
        self.page_count = 0
        self.free_head = NO_PAGE
        self.root = NO_PAGE
        self.live_nodes = 0
        self.meta: Dict[str, str] = {}

    def parse_header(self, report: FsckReport) -> bool:
        if self.file_size < _HEADER.size:
            report.add(
                "error", "bad-header",
                f"file is {self.file_size} bytes, smaller than the "
                f"{_HEADER.size}-byte header", 0,
            )
            return False
        (magic, version, page_size, page_count, free_head, root, live,
         meta_len) = _HEADER.unpack_from(self.data, 0)
        if magic != _MAGIC:
            report.add("error", "bad-header", f"bad magic {magic!r}", 0)
            return False
        if version != _VERSION:
            report.add(
                "error", "bad-header", f"unsupported format version {version}", 0
            )
            return False
        if page_size < 512:
            report.add(
                "error", "bad-header", f"implausible page size {page_size}", 0
            )
            return False
        self.page_size = page_size
        self.page_count = page_count
        self.free_head = free_head
        self.root = root
        self.live_nodes = live
        report.page_size = page_size
        report.page_count = page_count
        report.live_nodes = live
        if _HEADER.size + meta_len > page_size:
            report.add(
                "error", "bad-header",
                f"metadata length {meta_len} overflows the header page", 0,
            )
            return False
        try:
            meta_raw = self.data[_HEADER.size:_HEADER.size + meta_len].decode(
                "utf-8"
            )
        except UnicodeDecodeError:
            report.add("error", "bad-header", "metadata is not valid UTF-8", 0)
            return False
        for line in meta_raw.splitlines():
            key, _, value = line.partition("=")
            self.meta[key] = value
        expected = page_count * page_size
        if self.file_size < expected:
            report.add(
                "error", "truncated-file",
                f"header claims {page_count} pages "
                f"({expected} bytes) but the file holds {self.file_size}",
            )
            return False
        if self.file_size > expected:
            trailing = self.file_size - expected
            report.add(
                "warning", "trailing-bytes",
                f"{trailing} bytes beyond the last header-accounted page "
                "(an uncommitted extension or a partial write)",
            )
        if root != NO_PAGE and not 1 <= root < page_count:
            report.add(
                "error", "bad-root", f"root pointer {root} is out of range"
            )
        self.header_ok = True
        return True

    def page(self, page_id: int) -> bytes:
        offset = page_id * self.page_size
        return self.data[offset:offset + self.page_size]

    def page_payload_ok(self, page_id: int) -> bool:
        raw = self.page(page_id)
        if len(raw) < self.page_size:
            return False
        payload, crc_raw = raw[:-_CRC.size], raw[-_CRC.size:]
        (expected,) = _CRC.unpack(crc_raw)
        return zlib.crc32(payload) == expected

    def payload(self, page_id: int) -> bytes:
        return self.page(page_id)[:-_CRC.size]


def _audit_checksums(image: _FileImage, report: FsckReport) -> Set[int]:
    quarantined = _quarantined_from_meta(image)
    corrupt: Set[int] = set()
    for page_id in range(1, image.page_count):
        if not image.page_payload_ok(page_id):
            if page_id in quarantined:
                # Known-bad and fenced off by a previous repair: not a
                # fresh error, the page can never be reallocated.
                report.add(
                    "info", "quarantined-page",
                    "page fails its CRC32 but is quarantined", page_id,
                )
                continue
            corrupt.add(page_id)
            report.add(
                "error", "bad-checksum",
                "page payload fails its CRC32", page_id,
            )
    report.corrupt = sorted(corrupt)
    return corrupt


def _audit_free_list(
    image: _FileImage, report: FsckReport, corrupt: Set[int]
) -> Set[int]:
    free: Set[int] = set()
    current = image.free_head
    while current != NO_PAGE:
        if not 1 <= current < image.page_count:
            report.add(
                "error", "free-list-range",
                f"free-list link points at page {current}, outside "
                f"1..{image.page_count - 1}",
            )
            break
        if current in free:
            report.add(
                "error", "free-list-cycle",
                f"free list revisits page {current}: the chain is cyclic "
                "and would hand the same page to two allocations", current,
            )
            break
        if current in corrupt:
            report.add(
                "error", "free-list-corrupt",
                "free-list page fails its checksum; the chain cannot be "
                "followed past it", current,
            )
            break
        free.add(current)
        (current,) = _FREE_LINK.unpack_from(image.payload(current), 0)
    report.free_pages = len(free)
    return free


def _audit_reachability(
    image: _FileImage,
    report: FsckReport,
    corrupt: Set[int],
    free: Set[int],
) -> Set[int]:
    reachable: Set[int] = set()
    codec_kind = image.meta.get("codec_kind")
    if image.root == NO_PAGE:
        return reachable
    if not 1 <= image.root < image.page_count:
        return reachable  # bad-root already reported
    if codec_kind is None:
        report.add(
            "warning", "no-codec",
            "header metadata lacks codec_kind; node pages cannot be "
            "decoded, reachability analysis skipped",
        )
        return reachable
    codec = NodeCodec(spec_for(codec_kind), image.page_size - _CRC.size)
    stack = [image.root]
    while stack:
        page_id = stack.pop()
        if page_id in reachable:
            report.add(
                "error", "multiply-referenced",
                "page is referenced by more than one parent", page_id,
            )
            continue
        if page_id in corrupt:
            # Reachable-and-corrupt: the tree has lost data.
            reachable.add(page_id)
            continue
        if page_id in free:
            report.add(
                "error", "reachable-free",
                "page is both on the free list and reachable from the "
                "root", page_id,
            )
        reachable.add(page_id)
        try:
            node = codec.decode(image.payload(page_id), page_id)
        except Exception:  # noqa: BLE001 - decode garbage defensively
            report.add(
                "error", "undecodable-node",
                "page passes its checksum but does not decode as a node",
                page_id,
            )
            continue
        if node.is_leaf:
            continue
        for child in node.children:
            if not 1 <= child < image.page_count:
                report.add(
                    "error", "dangling-child",
                    f"interior node references page {child}, outside "
                    f"1..{image.page_count - 1}", page_id,
                )
                continue
            stack.append(child)
    report.reachable = len(reachable)
    if image.live_nodes != len(reachable):
        report.add(
            "warning", "live-count",
            f"header live-node count {image.live_nodes} != {len(reachable)} "
            "reachable pages",
        )
    return reachable


def _quarantined_from_meta(image: _FileImage) -> Set[int]:
    raw = image.meta.get("quarantine", "")
    out: Set[int] = set()
    for part in raw.split(","):
        part = part.strip()
        if part.isdigit():
            out.add(int(part))
    return out


def _audit_orphans(
    image: _FileImage,
    report: FsckReport,
    corrupt: Set[int],
    free: Set[int],
    reachable: Set[int],
) -> List[int]:
    quarantined = _quarantined_from_meta(image)
    report.quarantined = sorted(quarantined)
    orphans = [
        page_id
        for page_id in range(1, image.page_count)
        if page_id not in reachable
        and page_id not in free
        and page_id not in corrupt
        and page_id not in quarantined
    ]
    for page_id in orphans:
        report.add(
            "error", "orphan-page",
            "page is neither reachable from the root nor on the free "
            "list (leaked space)", page_id,
        )
    report.orphans = orphans
    return orphans


def _inspect_journal(path: str, report: FsckReport) -> None:
    journal_path = path + "-journal"
    if not os.path.exists(journal_path):
        return
    with open(journal_path, "rb") as handle:
        data = handle.read()
    header_size = Pager._JOURNAL_HEADER.size
    if len(data) < header_size:
        report.add(
            "error", "torn-journal",
            f"leftover journal {journal_path!r} is truncated inside its "
            "header",
        )
        return
    magic, page_size, base_count = Pager._JOURNAL_HEADER.unpack_from(data, 0)
    if magic == _LEGACY_JOURNAL_MAGIC:
        report.add(
            "warning", "legacy-journal",
            "leftover journal uses the legacy CRC-less record format; "
            "records cannot be verified",
        )
        return
    if magic != Pager._JOURNAL_MAGIC:
        report.add(
            "error", "bad-journal",
            f"leftover journal has unknown magic {magic!r}",
        )
        return
    if report.page_size and page_size != report.page_size:
        report.add(
            "error", "bad-journal",
            f"journal page size {page_size} disagrees with the file's "
            f"{report.page_size}",
        )
        return
    offset = header_size
    record_size = Pager._JOURNAL_RECORD.size
    valid = 0
    while offset < len(data):
        if offset + record_size > len(data):
            report.add(
                "warning", "torn-journal",
                f"journal record {valid + 1} is torn inside its header "
                "(normal after a crash mid-append); rollback stops at the "
                f"{valid} valid records before it",
            )
            break
        page_id, crc = Pager._JOURNAL_RECORD.unpack_from(data, offset)
        image = data[offset + record_size:offset + record_size + page_size]
        if len(image) < page_size:
            report.add(
                "warning", "torn-journal",
                f"journal record for page {page_id} is torn "
                "(normal after a crash mid-append); rollback stops at the "
                f"{valid} valid records before it",
            )
            break
        if zlib.crc32(image) != crc:
            report.add(
                "error", "torn-journal",
                f"journal record for page {page_id} fails its CRC32 "
                "(bit rot or a torn sector); rollback stops at the "
                f"{valid} valid records before it",
            )
            break
        valid += 1
        offset += record_size + page_size
    report.journal_records = valid
    report.add(
        "info", "journal-present",
        f"leftover journal with {valid} verifiable pre-image records "
        f"(committed size {base_count} pages): the file holds an "
        "uncommitted transaction; reopening with journaled=True rolls it "
        "back",
    )


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------
def _write_free_page(handle, page_id: int, link: int, page_size: int) -> None:
    payload = _FREE_LINK.pack(link).ljust(page_size - _CRC.size, b"\x00")
    handle.seek(page_id * page_size)
    handle.write(payload + _CRC.pack(zlib.crc32(payload)))


def _repair(path: str, report: FsckReport) -> None:
    """Offline repair: settle the journal, quarantine, rebuild the free list."""
    if os.path.exists(path + "-journal"):
        # Settle the pending transaction through the pager's own
        # recovery; fsck must not repair underneath a journal that a
        # later open would replay over the repairs.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            try:
                Pager(path, journaled=True).close()
            except Exception as exc:  # noqa: BLE001
                report.add(
                    "error", "unrepairable-journal",
                    f"journal recovery failed during repair: {exc!r}",
                )
                return
        report.add(
            "info", "journal-settled",
            "leftover journal was rolled back before repair",
        )

    image = _FileImage(path)
    if not image.parse_header(FsckReport(path)):
        report.add(
            "error", "unrepairable-header",
            "the header page itself is damaged; fsck cannot rebuild it "
            "(rebuild the index with repro build)",
        )
        return

    sub = FsckReport(path)
    corrupt = _audit_checksums(image, sub)
    free = _audit_free_list(image, sub, corrupt)
    reachable = _audit_reachability(image, sub, corrupt, free)

    usable_pages = image.file_size // image.page_size
    reachable_corrupt = sorted(set(corrupt) & reachable)
    quarantine = sorted(
        (_quarantined_from_meta(image) | corrupt) - reachable
    )
    free_candidates = [
        page_id
        for page_id in range(1, usable_pages)
        if page_id not in reachable and page_id not in quarantine
    ]

    with open(path, "r+b") as handle:
        # Chain every non-reachable, non-quarantined page into a fresh
        # free list (head -> ... -> NO_PAGE), rewriting each link page
        # with a valid checksum.
        link = NO_PAGE
        for page_id in reversed(free_candidates):
            _write_free_page(handle, page_id, link, image.page_size)
            link = page_id
        meta = dict(image.meta)
        if quarantine:
            meta["quarantine"] = ",".join(str(p) for p in quarantine)
        else:
            meta.pop("quarantine", None)
        meta_blob = "\n".join(
            f"{k}={v}" for k, v in sorted(meta.items())
        ).encode("utf-8")
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            image.page_size,
            usable_pages,
            link,
            image.root,
            len(reachable),
            len(meta_blob),
        )
        handle.seek(0)
        handle.write((header + meta_blob).ljust(image.page_size, b"\x00"))
        handle.truncate(usable_pages * image.page_size)
        handle.flush()
        os.fsync(handle.fileno())

    report.repaired = True
    report.unrepairable = reachable_corrupt
    report.add(
        "info", "repaired",
        f"free list rebuilt with {len(free_candidates)} pages; "
        f"{len(quarantine)} corrupt pages quarantined; live-node count "
        f"set to {len(reachable)}",
    )
    if reachable_corrupt:
        report.add(
            "error", "unrepairable-node",
            f"pages {reachable_corrupt} are reachable from the root and "
            "corrupt: the tree has lost data and must be rebuilt "
            "(repro build)",
        )


def fsck(path: str, *, repair: bool = False) -> FsckReport:
    """Audit (and optionally repair) a page file, fully offline.

    Never opens the file through the pager for the audit itself, so a
    leftover journal is inspected rather than replayed and even files
    the pager would refuse to open produce a report instead of an
    exception.

    When :mod:`repro.obs` is enabled, each run also bumps the
    ``fsck.*`` registry counters (runs, pages scanned, errors found,
    pages quarantined), so long-running audit loops are observable like
    every other subsystem.
    """
    report = _fsck(path, repair=repair)
    obs.count("fsck.runs")
    obs.count("fsck.pages_scanned", report.page_count)
    obs.count("fsck.errors_found", len(report.errors()))
    obs.count("fsck.pages_quarantined", len(report.quarantined))
    if report.repaired:
        obs.count("fsck.repairs")
    return report


def _fsck(path: str, *, repair: bool = False) -> FsckReport:
    report = FsckReport(path)
    if not os.path.exists(path):
        report.add("error", "missing-file", f"no such page file: {path!r}")
        return report

    image = _FileImage(path)
    if image.parse_header(report):
        corrupt = _audit_checksums(image, report)
        free = _audit_free_list(image, report, corrupt)
        reachable = _audit_reachability(image, report, corrupt, free)
        _audit_orphans(image, report, corrupt, free, reachable)
    _inspect_journal(path, report)

    if repair and (not report.ok or report.has("journal-present")):
        actions = FsckReport(path)
        _repair(path, actions)
        if actions.repaired:
            # Re-audit so the main report reflects the repaired file
            # (quarantined pages are fenced off, not fresh errors).
            post = _fsck(path, repair=False)
            post.repaired = True
            post.unrepairable = actions.unrepairable
            post.findings = actions.findings + post.findings
            post.pre_repair = report
            return post
        report.findings.extend(actions.findings)
    return report


# ----------------------------------------------------------------------
# Dynamic-view catalog checkpoints (dynamic.json)
# ----------------------------------------------------------------------
def fsck_dynamic(path: str) -> FsckReport:
    """Audit a :class:`~repro.warehouse.dynamic.DynamicCatalog` checkpoint.

    Fully offline, like :func:`fsck`: the checkpoint is parsed and
    cross-checked without constructing a catalog, so even files the
    catalog would refuse to load produce a report instead of an
    exception.  When the main checkpoint is unreadable the audit says
    whether the retained ``.prev`` checkpoint would restore -- the same
    fallback :meth:`DynamicCatalog.load` takes.
    """
    report = _fsck_dynamic(path)
    obs.count("fsck.runs")
    obs.count("fsck.errors_found", len(report.errors()))
    return report


def _load_checkpoint_json(path: str, report: FsckReport) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        report.add("error", "unreadable-checkpoint", f"cannot read: {exc}")
        return None
    except ValueError as exc:
        report.add("error", "bad-json", f"not valid JSON: {exc}")
        return None
    if not isinstance(payload, dict):
        report.add("error", "bad-json", "checkpoint is not a JSON object")
        return None
    return payload


def _audit_change_log(
    report: FsckReport, node: str, raw: Any
) -> Optional[Dict[str, int]]:
    """Density and ordering of one node's serialized change log."""
    if not isinstance(raw, dict):
        report.add("error", "bad-log", f"{node}: change log is not an object")
        return None
    try:
        head = int(raw.get("head", 0))
        base = int(raw.get("base", 0))
    except (TypeError, ValueError):
        report.add("error", "bad-log", f"{node}: non-integer head/base")
        return None
    records = raw.get("records", [])
    if not isinstance(records, list):
        report.add("error", "bad-log", f"{node}: records is not a list")
        return None
    if base < 0 or head < base:
        report.add(
            "error", "bad-log",
            f"{node}: log window base={base} head={head} is inverted",
        )
        return None
    if head - base != len(records):
        report.add(
            "error", "log-density",
            f"{node}: log retains {len(records)} records but the window "
            f"base={base}..head={head} holds {head - base} sequence numbers",
        )
        return None
    for offset, record in enumerate(records):
        expected_seq = base + offset + 1
        if not (isinstance(record, list) and len(record) == 7):
            report.add(
                "error", "bad-log-record",
                f"{node}: record at offset {offset} is malformed",
            )
            return None
        if record[0] != expected_seq:
            report.add(
                "error", "log-density",
                f"{node}: record at offset {offset} carries seq "
                f"{record[0]}, expected {expected_seq} (sequence numbers "
                "must be dense)",
            )
            return None
    return {"head": head, "base": base}


def _fsck_dynamic(path: str) -> FsckReport:
    report = FsckReport(path)
    if not os.path.exists(path):
        report.add("error", "missing-file", f"no such checkpoint: {path!r}")
        return report
    for suffix, code in ((".tmp", "leftover-temp"), (".prev.tmp", "leftover-temp")):
        leftover = path + suffix
        if os.path.exists(leftover):
            report.add(
                "warning", code,
                f"leftover {leftover!r} from an interrupted checkpoint "
                "(normal after a crash mid-save; the catalog removes it "
                "on the next load and never adopts it)",
            )
    payload = _load_checkpoint_json(path, report)
    if payload is None:
        prev = path + ".prev"
        if os.path.exists(prev):
            prev_report = FsckReport(prev)
            if _load_checkpoint_json(prev, prev_report) is not None:
                report.add(
                    "info", "prev-restorable",
                    f"previous checkpoint {prev!r} parses; a non-strict "
                    "load falls back to it",
                )
            else:
                report.add(
                    "error", "prev-unrestorable",
                    f"previous checkpoint {prev!r} is also unreadable; "
                    "nothing restores",
                )
        return report

    version = payload.get("version", 1)
    if version not in (1, 2):
        report.add(
            "error", "bad-version",
            f"unsupported checkpoint version {version!r} (expected 1 or 2)",
        )
        return report
    tables = payload.get("tables", {})
    views = payload.get("views", {})
    order = payload.get("order", [])
    if not isinstance(tables, dict) or not isinstance(views, dict) \
            or not isinstance(order, list):
        report.add(
            "error", "bad-structure",
            "tables/views must be objects and order a list",
        )
        return report
    duplicated = set(tables) & set(views)
    for name in sorted(duplicated):
        report.add(
            "error", "duplicate-node",
            f"{name!r} appears as both a table and a view",
        )
    for name in order:
        if name not in tables and name not in views:
            report.add(
                "error", "dangling-order",
                f"order names {name!r} but no such table or view exists",
            )
    for name in sorted(set(tables) | set(views)):
        if name not in order:
            report.add(
                "warning", "unordered-node",
                f"{name!r} exists but is missing from the restore order",
            )

    logs: Dict[str, Optional[Dict[str, int]]] = {}
    for name, raw in list(tables.items()) + list(views.items()):
        logs[name] = (
            _audit_change_log(report, name, raw.get("log"))
            if isinstance(raw, dict) else None
        )
        if not isinstance(raw, dict):
            report.add("error", "bad-structure", f"{name!r} is not an object")

    position = {name: index for index, name in enumerate(order)}
    for name, raw in views.items():
        if not isinstance(raw, dict):
            continue
        try:
            spec_for(raw.get("kind"))
        except (KeyError, ValueError):
            report.add(
                "error", "bad-view",
                f"view {name!r}: unknown aggregate kind {raw.get('kind')!r}",
            )
        sources = raw.get("sources", [])
        watermarks = raw.get("watermarks", {})
        for src in sources:
            if src not in tables and src not in views:
                report.add(
                    "error", "dangling-source",
                    f"view {name!r} consumes {src!r}, which does not exist",
                )
                continue
            if position.get(src, -1) > position.get(name, len(order)):
                report.add(
                    "error", "order-violation",
                    f"view {name!r} precedes its source {src!r} in the "
                    "restore order",
                )
            watermark = watermarks.get(src, 0)
            window = logs.get(src)
            if window is None or not isinstance(watermark, int):
                continue
            if watermark > window["head"]:
                report.add(
                    "error", "watermark-ahead",
                    f"view {name!r} watermark {watermark} on {src!r} is "
                    f"past the source log head {window['head']}",
                )
            elif watermark < window["base"]:
                report.add(
                    "error", "watermark-compacted",
                    f"view {name!r} watermark {watermark} on {src!r} is "
                    f"behind the compacted log base {window['base']}: the "
                    "unconsumed records are gone",
                )
    report.add(
        "info", "checkpoint-summary",
        f"version {version}: {len(tables)} tables, {len(views)} views, "
        f"{sum((w or {}).get('head', 0) - (w or {}).get('base', 0) for w in logs.values())} "
        "retained change records",
    )
    return report
