"""The disk-backed node store: pager + buffer pool + codec.

Implements :class:`repro.core.store.NodeStore` over fixed-size pages, so
any SB-tree or MSB-tree can be persisted, closed, and reopened.  Every
logical node access is one buffered page access; physical I/O happens on
buffer misses and dirty evictions, exactly like a real disk index.

Node ids are page ids, so child pointers serialize directly.
"""

from __future__ import annotations

from typing import Optional

from ..core.nodes import Node, NodeId
from ..core.store import NodeStore, StoreStats
from ..core.values import spec_for
from .buffer import BufferPool
from .codec import NodeCodec
from .pager import DEFAULT_PAGE_SIZE, Pager

__all__ = ["PagedNodeStore"]


class PagedNodeStore(NodeStore):
    """A file-backed node store with write-back buffering.

    Parameters
    ----------
    path:
        Page-file path.  An existing file is reopened (its geometry and
        aggregate kind come from the header); a missing one is created.
    kind:
        Aggregate kind; required when creating a new file because the
        node codec's value width depends on it.
    page_size:
        Page size in bytes for a new file; ``None`` (default) accepts an
        existing file's geometry without complaint.
    buffer_capacity:
        Number of page frames held by the buffer pool.
    strict:
        Raise (instead of warning) when reopening a file whose on-disk
        page size differs from the requested one, or when a leftover
        rollback journal is unusable.
    faults:
        Optional :class:`repro.faults.FaultInjector` passed through to
        the pager (crash points, torn writes, injected I/O errors).
    """

    def __init__(
        self,
        path: str,
        kind=None,
        *,
        page_size: Optional[int] = None,
        buffer_capacity: int = 64,
        journaled: bool = False,
        strict: bool = False,
        faults=None,
    ) -> None:
        self.pager = Pager(
            path,
            page_size=page_size,
            journaled=journaled,
            strict=strict,
            faults=faults,
        )
        stored_kind = self.pager.get_meta("codec_kind")
        if stored_kind is not None:
            kind = stored_kind
        elif kind is None:
            raise ValueError("an aggregate kind is required for a new page file")
        else:
            self.pager.set_meta("codec_kind", spec_for(kind).kind.value)
        self.codec = NodeCodec(spec_for(kind), self.pager.payload_size)
        self.buffer = BufferPool(self.pager, capacity=buffer_capacity)
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # Page-derived tree geometry (what the paper sizes b and l from)
    # ------------------------------------------------------------------
    @property
    def default_branching(self) -> int:
        """Maximum interior fanout that fits one page (without u-values)."""
        return self.codec.max_branching(with_uvalues=False)

    @property
    def default_branching_annotated(self) -> int:
        """Maximum interior fanout for u-annotated (MSB) nodes."""
        return self.codec.max_branching(with_uvalues=True)

    @property
    def default_leaf_capacity(self) -> int:
        """Maximum leaf capacity that fits one page."""
        return self.codec.max_leaf_capacity()

    # ------------------------------------------------------------------
    # NodeStore interface
    # ------------------------------------------------------------------
    def allocate(self, is_leaf: bool, with_uvalues: bool = False) -> Node:
        page_id = self.pager.allocate_page()
        self.stats.allocations += 1
        node = Node(
            node_id=page_id,
            is_leaf=is_leaf,
            uvalues=[] if with_uvalues else None,
        )
        self.buffer.write(page_id, self.codec.encode(node))
        return node

    def read(self, node_id: NodeId) -> Node:
        self.stats.reads += 1
        payload = self.buffer.read(node_id)
        return self.codec.decode(payload, node_id)

    def write(self, node: Node) -> None:
        self.stats.writes += 1
        self.buffer.write(node.node_id, self.codec.encode(node))

    def free(self, node_id: NodeId) -> None:
        self.stats.frees += 1
        self.buffer.discard(node_id)
        self.pager.free_page(node_id)

    def get_root(self) -> Optional[NodeId]:
        return self.pager.get_root()

    def set_root(self, node_id: NodeId) -> None:
        self.pager.set_root(node_id)

    def get_meta(self, key: str) -> Optional[str]:
        return self.pager.get_meta(key)

    def set_meta(self, key: str, value: str) -> None:
        self.pager.set_meta(key, value)

    def node_count(self) -> int:
        return self.pager.live_nodes

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back all dirty pages and sync the file."""
        self.buffer.flush()
        self.pager.sync()

    def commit(self) -> None:
        """Write back, then commit the pager's transaction (journaled mode).

        After a commit the on-disk state is a durable snapshot: a crash
        at any later point rolls the file back to it on reopen.
        """
        self.buffer.flush()
        self.pager.commit()

    def close(self) -> None:
        """Flush and close; a degraded pager is closed without flushing.

        Once the pager has entered read-only degraded mode the dirty
        frames cannot reach the file anyway; closing the handles leaves
        the journal in place so the next open recovers the last commit.
        """
        if not self.pager.degraded:
            self.buffer.flush()
        self.pager.close()

    def __enter__(self) -> "PagedNodeStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
