"""Node (de)serialization: SB-tree / MSB-tree nodes on fixed-size pages.

Page payload layout::

    u8   flags        bit 0: leaf, bit 1: carries u-values
    u8   reserved
    u16  interval count j
    f64  times[j-1]
    val  values[j]     (8 bytes; 16 for AVG's (sum, count) pair)
    i64  children[j]   (interior nodes only)
    val  uvalues[j]    (annotated interior nodes only)

Times and numeric values are IEEE doubles (integers up to 2**53 are
exact; decoded whole numbers are restored to ``int`` for clean equality
with in-memory trees).  MIN/MAX ``NULL`` is encoded as NaN.

The codec also derives the maximum branching factor ``b`` and leaf
capacity ``l`` that fit a page -- the quantities the paper sizes its
trees by.
"""

from __future__ import annotations

import math
import struct
from typing import Any, List, Optional, Tuple

from ..core.nodes import Node, NodeId
from ..core.values import AggregateKind, AggregateSpec, spec_for

__all__ = ["NodeCodec", "NodeEncodingError"]

_HEADER = struct.Struct("<BBH")
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")

_FLAG_LEAF = 1
_FLAG_HAS_U = 2


class NodeEncodingError(RuntimeError):
    """Raised when a node cannot be encoded into (or decoded from) a page."""


def _restore_int(x: float) -> Any:
    """Give whole-valued doubles back their int identity."""
    if x == int(x):
        return int(x)
    return x


class NodeCodec:
    """Per-aggregate-kind node serializer with derived page capacities."""

    def __init__(self, spec: AggregateSpec, payload_size: int) -> None:
        self.spec = spec_for(spec)
        self.payload_size = payload_size
        self._value_width = 16 if self.spec.kind is AggregateKind.AVG else 8

    # ------------------------------------------------------------------
    # Capacity derivation (how many intervals fit on a page)
    # ------------------------------------------------------------------
    #: An insertion may leave a node two intervals over capacity for the
    #: instant before it is split (Section 3.5); since writes serialize
    #: immediately, the derived capacities reserve room for that.
    _OVERFLOW_SLACK = 2

    def max_leaf_capacity(self) -> int:
        """Largest safe l: header + (l+1) times + (l+2) values fit a page."""
        usable = self.payload_size - _HEADER.size + 8  # +8: only l-1 times
        return usable // (8 + self._value_width) - self._OVERFLOW_SLACK

    def max_branching(self, with_uvalues: bool) -> int:
        """Largest safe b for an interior node (optionally u-annotated)."""
        per_interval = 8 + self._value_width + 8  # time + value + child
        if with_uvalues:
            per_interval += self._value_width
        usable = self.payload_size - _HEADER.size + 8
        return usable // per_interval - self._OVERFLOW_SLACK

    # ------------------------------------------------------------------
    # Value encoding
    # ------------------------------------------------------------------
    def _encode_value(self, value: Any) -> bytes:
        if self.spec.kind is AggregateKind.AVG:
            total, count = value
            return _F64.pack(float(total)) + _F64.pack(float(count))
        if value is None:
            return _F64.pack(math.nan)
        return _F64.pack(float(value))

    def _decode_value(self, raw: bytes, offset: int) -> Tuple[Any, int]:
        if self.spec.kind is AggregateKind.AVG:
            (total,) = _F64.unpack_from(raw, offset)
            (count,) = _F64.unpack_from(raw, offset + 8)
            return (_restore_int(total), _restore_int(count)), offset + 16
        (x,) = _F64.unpack_from(raw, offset)
        if math.isnan(x):
            return None, offset + 8
        return _restore_int(x), offset + 8

    # ------------------------------------------------------------------
    # Node encoding
    # ------------------------------------------------------------------
    def encode(self, node: Node) -> bytes:
        flags = (_FLAG_LEAF if node.is_leaf else 0) | (
            _FLAG_HAS_U if node.uvalues is not None else 0
        )
        j = node.interval_count
        if j > 0xFFFF:
            raise NodeEncodingError("too many intervals for the u16 count field")
        parts: List[bytes] = [_HEADER.pack(flags, 0, j)]
        for t in node.times:
            parts.append(_F64.pack(float(t)))
        for v in node.values:
            parts.append(self._encode_value(v))
        if not node.is_leaf:
            for c in node.children:
                parts.append(_I64.pack(c))
        if node.uvalues is not None:
            for u in node.uvalues:
                parts.append(self._encode_value(u))
        payload = b"".join(parts)
        if len(payload) > self.payload_size:
            raise NodeEncodingError(
                f"node with {j} intervals needs {len(payload)} bytes, page "
                f"payload is {self.payload_size}"
            )
        return payload

    def decode(self, payload: bytes, node_id: NodeId) -> Node:
        flags, _, j = _HEADER.unpack_from(payload, 0)
        is_leaf = bool(flags & _FLAG_LEAF)
        has_u = bool(flags & _FLAG_HAS_U)
        offset = _HEADER.size
        times: List[Any] = []
        for _ in range(max(0, j - 1)):
            (t,) = _F64.unpack_from(payload, offset)
            times.append(_restore_int(t))
            offset += 8
        values: List[Any] = []
        for _ in range(j):
            value, offset = self._decode_value(payload, offset)
            values.append(value)
        children: List[NodeId] = []
        if not is_leaf:
            for _ in range(j):
                (c,) = _I64.unpack_from(payload, offset)
                children.append(c)
                offset += 8
        uvalues: Optional[List[Any]] = None
        if has_u:
            uvalues = []
            for _ in range(j):
                u, offset = self._decode_value(payload, offset)
                uvalues.append(u)
        return Node(
            node_id=node_id,
            is_leaf=is_leaf,
            times=times,
            values=values,
            children=children,
            uvalues=uvalues,
        )
