"""File-backed page manager.

The SB-tree is a *disk-based* structure: every node occupies exactly one
fixed-size page.  The pager owns a single file laid out as::

    page 0          header: magic, version, geometry, root pointer,
                    free-list head, live-page count, metadata blob
    pages 1..N-1    node pages (or free pages linked through their
                    first 8 bytes)

Freed pages are chained into a free list and reused before the file is
extended.  Physical reads and writes are counted so benchmarks can
report true page I/O.

With ``journaled=True`` the pager additionally keeps a rollback journal
(``<path>-journal``): before a page is first overwritten after a
commit, its pre-image is appended to the journal (each record carries
its own CRC32) and the journal is fsynced *before* the overwrite may
proceed; :meth:`commit` makes the current state durable and deletes the
journal (the commit point); reopening a file whose journal survived a
crash rolls every journaled page back (and truncates pages that did not
exist at the last commit), so the file always reflects a committed
state.

Failure handling
----------------
Every raw write and fsync is routed through a small I/O layer that

* consults an optional :class:`repro.faults.FaultInjector` (labeled
  crash points -- :data:`Pager.CRASH_POINTS` -- plus torn-write and
  I/O-error interception), which is how the crash-consistency harness
  in :mod:`repro.crashcheck` exercises the recovery path;
* retries transient ``OSError``\\ s with exponential backoff
  (``max_write_retries`` / ``retry_backoff``) -- *writes only*: a failed
  fsync is never retried, because after a failed fsync the kernel may
  already have dropped the dirty pages the retry would claim to sync;
* drops the pager into a read-only *degraded mode* after
  ``degrade_after`` consecutive retry-exhausted failures: further
  mutations raise :class:`PagerDegradedError`, reads keep working, and
  a journaled pager leaves its journal in place so the next open rolls
  back to the last commit instead of trusting half-written state.

Out-of-band events surface as ``pager.*`` counters through the active
:class:`repro.obs.MetricsRegistry` when collection is enabled.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import warnings
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

from .. import obs

__all__ = [
    "Pager",
    "PagerStats",
    "PageCorruptionError",
    "PagerDegradedError",
    "JournalError",
    "DEFAULT_PAGE_SIZE",
]

DEFAULT_PAGE_SIZE = 4096

_MAGIC = b"SBTRepro"
_VERSION = 1
#: magic(8) version(H) page_size(I) page_count(Q) free_head(q) root(q)
#: live_nodes(Q) meta_len(I)
_HEADER = struct.Struct("<8sHIQqqQI")
_FREE_LINK = struct.Struct("<q")
_CRC = struct.Struct("<I")

#: Sentinel for "no page".
NO_PAGE = -1


class PageCorruptionError(RuntimeError):
    """Raised when a page fails its checksum on read."""


class PagerDegradedError(RuntimeError):
    """Raised for writes after the pager entered read-only degraded mode."""


class JournalError(RuntimeError):
    """Raised (under ``strict=True``) when a leftover journal is unusable."""


@dataclass
class PagerStats:
    """Physical I/O counters."""

    physical_reads: int = 0
    physical_writes: int = 0

    def reset(self) -> None:
        self.physical_reads = self.physical_writes = 0

    def snapshot(self) -> "PagerStats":
        return PagerStats(self.physical_reads, self.physical_writes)

    def __sub__(self, other: "PagerStats") -> "PagerStats":
        return PagerStats(
            self.physical_reads - other.physical_reads,
            self.physical_writes - other.physical_writes,
        )


class Pager:
    """Fixed-size page file with a free list and a small metadata area.

    Each data page stores ``page_size - 4`` payload bytes followed by a
    CRC32 checksum, verified on every read.

    Parameters
    ----------
    faults:
        Optional :class:`repro.faults.FaultInjector` consulted at every
        crash point, write, and fsync.  Also assignable after
        construction (``pager.faults = injector``) so a harness can
        skip file-creation noise and target the workload alone.
    max_write_retries:
        How many times a raw write that raised ``OSError`` is retried
        before the failure propagates.
    retry_backoff:
        Base sleep (seconds) between retries; attempt *k* sleeps
        ``retry_backoff * 2**(k-1)``.  Zero disables sleeping (tests).
    degrade_after:
        Consecutive retry-exhausted write/fsync failures before the
        pager enters read-only degraded mode.
    """

    #: Labeled crash points, in protocol order.  The crash-consistency
    #: harness sweeps a :class:`~repro.faults.SimulatedCrash` through
    #: every one of these.
    CRASH_POINTS = (
        "before_journal_create",
        "after_journal_create",
        "before_journal_write",
        "after_journal_write",
        "before_journal_fsync",
        "after_journal_fsync",
        "before_page_write",
        "after_page_write",
        "before_header_write",
        "after_header_write",
        "before_commit_fsync",
        "after_commit_fsync",
        "before_journal_delete",
        "after_journal_delete",
    )

    def __init__(
        self,
        path: str,
        page_size: Optional[int] = None,
        *,
        journaled: bool = False,
        strict: bool = False,
        faults=None,
        max_write_retries: int = 3,
        retry_backoff: float = 0.002,
        degrade_after: int = 3,
    ) -> None:
        # ``None`` means "whatever the file says" (or the default for a
        # new file); an explicit size is checked against the file below.
        requested_size = page_size
        if page_size is None:
            page_size = DEFAULT_PAGE_SIZE
        if page_size < 512:
            raise ValueError("page size must be at least 512 bytes")
        self.path = os.fspath(path)
        self.journal_path = self.path + "-journal"
        self.journaled = journaled
        self.strict = strict
        self.faults = faults
        self.max_write_retries = max_write_retries
        self.retry_backoff = retry_backoff
        self.degrade_after = degrade_after
        self.degraded = False
        self.write_retries = 0
        self.write_failures = 0
        self.fsync_failures = 0
        self._consecutive_failures = 0
        self._journaled_pages: set = set()
        self._journal_file = None
        self._journal_base_count: Optional[int] = None
        #: Page ids freed by this process and not yet reallocated, kept
        #: so a double free is caught before it cycles the free list.
        self._freed: set = set()
        self.stats = PagerStats()
        # Reentrant: public methods nest (allocate -> write -> journal).
        self._mutex = threading.RLock()
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = open(self.path, "r+b" if exists else "w+b")
        if exists and os.path.exists(self.journal_path):
            # A crash left an unfinished transaction: roll it back
            # before trusting anything in the file.  A crash before the
            # very first commit rolls all the way back to an empty file,
            # which is then (re)created below.
            try:
                self._rollback_journal()
            except JournalError:
                self._file.close()
                raise
            exists = os.path.getsize(self.path) > 0
        if exists:
            self._load_header()
            if requested_size is not None and requested_size != self.page_size:
                # Geometry comes from the file, not the argument.
                message = (
                    f"page file {self.path!r} uses page_size "
                    f"{self.page_size}; requested {requested_size} is ignored"
                )
                if strict:
                    self._file.close()
                    raise ValueError(message)
                warnings.warn(message, stacklevel=2)
        else:
            self.page_size = page_size
            # Pin the pre-creation state (zero pages): until the first
            # commit, rollback erases the file entirely.
            self.page_count = 0
            self._ensure_transaction()
            self.page_count = 1  # the header page
            self._free_head = NO_PAGE
            self._root = NO_PAGE
            self.live_nodes = 0
            self._meta: Dict[str, str] = {}
            self._write_header()

    # ------------------------------------------------------------------
    # Fault-aware raw I/O
    # ------------------------------------------------------------------
    def _hook(self, point: str) -> None:
        """Announce a labeled crash point to the fault injector, if any."""
        if self.faults is not None:
            self.faults.crash_point(point)

    def _guard_writable(self) -> None:
        if self.degraded:
            raise PagerDegradedError(
                f"pager for {self.path!r} is in read-only degraded mode "
                f"after {self._consecutive_failures} consecutive write "
                "failures; reopen the file to recover the last commit"
            )

    def _note_write_failure(self, what: str) -> None:
        self._consecutive_failures += 1
        if what == "fsync":
            self.fsync_failures += 1
            obs.count("pager.fsync_failures")
        else:
            self.write_failures += 1
            obs.count("pager.write_failures")
        if not self.degraded and self._consecutive_failures >= self.degrade_after:
            self.degraded = True
            obs.count("pager.degraded")
            warnings.warn(
                f"pager for {self.path!r} entered read-only degraded mode "
                f"after {self._consecutive_failures} consecutive write "
                "failures",
                RuntimeWarning,
                stacklevel=4,
            )

    def _io_write(self, handle, offset: Optional[int], data: bytes, label: str) -> None:
        """One raw write: fault interception plus transient-error retries.

        ``offset=None`` appends at the handle's current position (the
        journal); retries always re-seek to the position of the first
        attempt, so a partial write is simply overwritten.
        """
        position = handle.tell() if offset is None else offset
        attempt = 0
        while True:
            try:
                if self.faults is not None:
                    payload, crash = self.faults.intercept_write(label, data)
                else:
                    payload, crash = data, None
                handle.seek(position)
                handle.write(payload)
                if crash is not None:
                    # A torn write: the prefix must really reach the
                    # file before the simulated process death.
                    handle.flush()
                    raise crash
            except OSError:
                if attempt >= self.max_write_retries:
                    self._note_write_failure("write")
                    raise
                attempt += 1
                self.write_retries += 1
                obs.count("pager.write_retries")
                if self.retry_backoff:
                    time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
                continue
            self._consecutive_failures = 0
            return

    def _io_fsync(self, handle, label: str) -> None:
        """One fsync.  Never retried: a failed fsync means the kernel may
        have dropped the dirty pages, so "try again" would lie."""
        try:
            if self.faults is not None:
                self.faults.intercept_fsync(label)
            os.fsync(handle.fileno())
        except OSError:
            self._note_write_failure("fsync")
            raise
        self._consecutive_failures = 0

    def _fsync_dir(self) -> None:
        """Flush the directory entry of the page file / journal.

        Needed for journal create/delete to be durable; best-effort on
        platforms that cannot open directories.
        """
        directory = os.path.dirname(os.path.abspath(self.path)) or os.curdir
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Rollback journal
    # ------------------------------------------------------------------
    _JOURNAL_HEADER = struct.Struct("<8sIQ")
    _JOURNAL_MAGIC = b"SBTRjrn2"
    #: page_id(q) crc32-of-pre-image(I), followed by page_size image bytes.
    _JOURNAL_RECORD = struct.Struct("<qI")

    def _capture_pre_image(self, page_id: int) -> None:
        """Durably append a page's current on-disk bytes to the journal.

        Called before the first overwrite of a page in the current
        transaction.  Pages created after the last commit are skipped:
        rollback simply truncates them away.  The record (tagged with
        its own CRC32) is fsynced before this returns, so the page
        overwrite that follows can never outrun the pre-image it
        depends on -- write-ahead in the literal sense.
        """
        if not self.journaled or page_id in self._journaled_pages:
            return
        self._ensure_transaction()
        if page_id >= self._journal_base_count:
            self._journaled_pages.add(page_id)
            return  # fresh page: nothing to restore
        self._file.seek(page_id * self.page_size)
        pre_image = self._file.read(self.page_size)
        pre_image = pre_image.ljust(self.page_size, b"\x00")
        record = (
            self._JOURNAL_RECORD.pack(page_id, zlib.crc32(pre_image)) + pre_image
        )
        self._hook("before_journal_write")
        self._io_write(self._journal_file, None, record, "journal")
        self._hook("after_journal_write")
        self._journal_file.flush()
        self._hook("before_journal_fsync")
        self._io_fsync(self._journal_file, "journal")
        self._hook("after_journal_fsync")
        self._journaled_pages.add(page_id)
        obs.count("pager.journal_records")

    def _ensure_transaction(self) -> None:
        """Open the journal and pin the committed page count, once.

        The journal header is flushed, fsynced, and its directory entry
        synced before any page overwrite can depend on it.
        """
        if not self.journaled or self._journal_base_count is not None:
            return
        self._hook("before_journal_create")
        self._journal_base_count = self.page_count
        self._journal_file = open(self.journal_path, "wb")
        self._io_write(
            self._journal_file,
            None,
            self._JOURNAL_HEADER.pack(
                self._JOURNAL_MAGIC, self.page_size, self.page_count
            ),
            "journal",
        )
        self._journal_file.flush()
        self._io_fsync(self._journal_file, "journal")
        self._fsync_dir()
        self._hook("after_journal_create")

    def commit(self) -> None:
        """Make the current state durable and clear the journal.

        The commit point is the journal deletion: a crash before it
        rolls the transaction back on reopen, a crash after it keeps
        the transaction.
        """
        with self._mutex:
            self._guard_writable()
            self._file.flush()
            self._hook("before_commit_fsync")
            self._io_fsync(self._file, "data")
            self._hook("after_commit_fsync")
            if self._journal_file is not None:
                self._journal_file.close()
                self._journal_file = None
            self._hook("before_journal_delete")
            if os.path.exists(self.journal_path):
                os.remove(self.journal_path)
                self._fsync_dir()
            self._hook("after_journal_delete")
            self._journaled_pages.clear()
            self._journal_base_count = None
            obs.count("pager.commits")

    def in_transaction(self) -> bool:
        """Whether uncommitted (journaled) changes exist."""
        return self._journal_base_count is not None

    def _journal_problem(self, message: str) -> None:
        """An unusable leftover journal: warn, or raise under strict.

        Deleting a journal we cannot parse would silently accept a page
        file that may hold uncommitted writes, so the condition is
        always surfaced; ``strict=True`` refuses to proceed (and the
        journal is left on disk for forensics / ``repro fsck``).
        """
        obs.count("pager.journal_problems")
        if self.strict:
            raise JournalError(message)
        warnings.warn(
            f"{message}; the page file may be left in an uncommitted state",
            RuntimeWarning,
            stacklevel=4,
        )

    def _rollback_journal(self) -> None:
        """Restore pre-images from a leftover journal, then delete it.

        Each record's CRC is verified first: rollback applies records
        up to the last valid one and stops at the first torn or
        corrupt record (a torn tail is the normal signature of a crash
        mid-append; a failed CRC on a complete record is a real
        corruption and is warned about).
        """
        obs.count("pager.rollbacks")
        restored = 0
        with open(self.journal_path, "rb") as journal:
            header = journal.read(self._JOURNAL_HEADER.size)
            if len(header) < self._JOURNAL_HEADER.size:
                self._journal_problem(
                    f"truncated journal header in {self.journal_path!r}"
                )
            else:
                magic, page_size, base_count = self._JOURNAL_HEADER.unpack(header)
                if magic != self._JOURNAL_MAGIC:
                    self._journal_problem(
                        f"bad journal magic {magic!r} in {self.journal_path!r}"
                    )
                else:
                    while True:
                        raw = journal.read(self._JOURNAL_RECORD.size)
                        if len(raw) < self._JOURNAL_RECORD.size:
                            break  # clean end, or a torn record header
                        page_id, crc = self._JOURNAL_RECORD.unpack(raw)
                        image = journal.read(page_size)
                        if len(image) < page_size:
                            break  # torn tail record: never fully on disk
                        if zlib.crc32(image) != crc or page_id < 0:
                            warnings.warn(
                                f"journal record for page {page_id} fails its "
                                "checksum; rollback stops at the last valid "
                                "record",
                                RuntimeWarning,
                                stacklevel=4,
                            )
                            obs.count("pager.journal_problems")
                            break
                        self._file.seek(page_id * page_size)
                        self._file.write(image)
                        restored += 1
                    self._file.truncate(base_count * page_size)
                    self._file.flush()
                    os.fsync(self._file.fileno())
                    obs.count("pager.rollback_pages", restored)
        os.remove(self.journal_path)
        self._fsync_dir()

    # ------------------------------------------------------------------
    # Header handling
    # ------------------------------------------------------------------
    def _load_header(self) -> None:
        self._file.seek(0)
        raw = self._file.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise PageCorruptionError("truncated header page")
        magic, version, page_size, page_count, free_head, root, live, meta_len = (
            _HEADER.unpack(raw)
        )
        if magic != _MAGIC:
            raise PageCorruptionError(f"bad magic in {self.path!r}")
        if version != _VERSION:
            raise PageCorruptionError(f"unsupported format version {version}")
        self.page_size = page_size
        self.page_count = page_count
        self._free_head = free_head
        self._root = root
        self.live_nodes = live
        meta_raw = self._file.read(meta_len).decode("utf-8")
        self._meta = {}
        for line in meta_raw.splitlines():
            key, _, value = line.partition("=")
            self._meta[key] = value

    def _write_header(self) -> None:
        meta_raw = "\n".join(f"{k}={v}" for k, v in sorted(self._meta.items()))
        blob = meta_raw.encode("utf-8")
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            self.page_size,
            self.page_count,
            self._free_head,
            self._root,
            self.live_nodes,
            len(blob),
        )
        payload = header + blob
        if len(payload) > self.page_size:
            raise ValueError("metadata does not fit in the header page")
        with self._mutex:
            self._guard_writable()
            self._capture_pre_image(0)
            self._hook("before_header_write")
            self._io_write(
                self._file, 0, payload.ljust(self.page_size, b"\x00"), "data"
            )
            self._hook("after_header_write")

    # ------------------------------------------------------------------
    # Root pointer and metadata
    # ------------------------------------------------------------------
    def get_root(self) -> Optional[int]:
        return None if self._root == NO_PAGE else self._root

    def set_root(self, page_id: int) -> None:
        self._root = page_id
        self._write_header()

    def get_meta(self, key: str) -> Optional[str]:
        return self._meta.get(key)

    def set_meta(self, key: str, value: str) -> None:
        self._meta[key] = value
        self._write_header()

    # ------------------------------------------------------------------
    # Page I/O
    # ------------------------------------------------------------------
    @property
    def payload_size(self) -> int:
        """Usable bytes per page (page size minus the checksum)."""
        return self.page_size - _CRC.size

    def read_page(self, page_id: int) -> bytes:
        """Read and checksum-verify one page's payload."""
        with self._mutex:
            if not 1 <= page_id < self.page_count:
                raise ValueError(f"page {page_id} out of range")
            self._file.seek(page_id * self.page_size)
            raw = self._file.read(self.page_size)
            self.stats.physical_reads += 1
        payload, crc_raw = raw[: self.payload_size], raw[self.payload_size:]
        (expected,) = _CRC.unpack(crc_raw)
        if zlib.crc32(payload) != expected:
            raise PageCorruptionError(f"checksum mismatch on page {page_id}")
        return payload

    def write_page(self, page_id: int, payload: bytes) -> None:
        """Write one page's payload, appending its checksum."""
        if len(payload) > self.payload_size:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds page capacity "
                f"{self.payload_size}"
            )
        with self._mutex:
            if not 1 <= page_id < self.page_count:
                raise ValueError(f"page {page_id} out of range")
            self._guard_writable()
            self._capture_pre_image(page_id)
            padded = payload.ljust(self.payload_size, b"\x00")
            self._hook("before_page_write")
            self._io_write(
                self._file,
                page_id * self.page_size,
                padded + _CRC.pack(zlib.crc32(padded)),
                "data",
            )
            self._hook("after_page_write")
            self.stats.physical_writes += 1

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate_page(self) -> int:
        """Pop a page from the free list, or extend the file."""
        with self._mutex:
            self._guard_writable()
            # Pin the committed page count before the file can grow, so
            # a rollback truncates freshly allocated pages away.
            self._ensure_transaction()
            if self._free_head != NO_PAGE:
                page_id = self._free_head
                payload = self.read_page(page_id)
                (self._free_head,) = _FREE_LINK.unpack(payload[: _FREE_LINK.size])
                self._freed.discard(page_id)
            else:
                page_id = self.page_count
                self.page_count += 1
                self.write_page(page_id, b"")
            self.live_nodes += 1
            self._write_header()
            return page_id

    def free_page(self, page_id: int) -> None:
        """Push a page onto the free list for reuse.

        Rejects the header page, out-of-range ids, and pages this
        process already freed (a double free would cycle the free list
        and silently hand the same page to two later allocations).
        """
        with self._mutex:
            if not 1 <= page_id < self.page_count:
                raise ValueError(
                    f"cannot free page {page_id}: valid data pages are "
                    f"1..{self.page_count - 1}"
                )
            if page_id in self._freed:
                raise ValueError(f"double free of page {page_id}")
            self._guard_writable()
            self.write_page(page_id, _FREE_LINK.pack(self._free_head))
            self._free_head = page_id
            self._freed.add(page_id)
            self.live_nodes -= 1
            self._write_header()

    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush the OS file buffers to stable storage."""
        with self._mutex:
            self._file.flush()
            self._io_fsync(self._file, "data")

    def close(self) -> None:
        """Clean shutdown: persist the header and commit any transaction.

        A degraded pager only closes its handles: the in-memory state
        can no longer be trusted to reach disk, so the journal (if any)
        is left in place and the next open rolls back to the last
        commit.
        """
        with self._mutex:
            if self._file.closed:
                return
            if self.degraded:
                for handle in (self._journal_file, self._file):
                    if handle is not None and not handle.closed:
                        try:
                            handle.close()
                        except OSError:  # pragma: no cover - best effort
                            pass
                self._journal_file = None
                return
            self._write_header()
            if self.journaled:
                self.commit()
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
