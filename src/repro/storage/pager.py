"""File-backed page manager.

The SB-tree is a *disk-based* structure: every node occupies exactly one
fixed-size page.  The pager owns a single file laid out as::

    page 0          header: magic, version, geometry, root pointer,
                    free-list head, live-page count, metadata blob
    pages 1..N-1    node pages (or free pages linked through their
                    first 8 bytes)

Freed pages are chained into a free list and reused before the file is
extended.  Physical reads and writes are counted so benchmarks can
report true page I/O.

With ``journaled=True`` the pager additionally keeps a rollback journal
(``<path>-journal``): before a page is first overwritten after a
commit, its pre-image is appended to the journal; :meth:`commit` makes
the current state durable and clears the journal; reopening a file whose
journal survived a crash rolls every journaled page back (and truncates
pages that did not exist at the last commit), so the file always
reflects a committed state.
"""

from __future__ import annotations

import os
import struct
import threading
import warnings
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["Pager", "PagerStats", "PageCorruptionError", "DEFAULT_PAGE_SIZE"]

DEFAULT_PAGE_SIZE = 4096

_MAGIC = b"SBTRepro"
_VERSION = 1
#: magic(8) version(H) page_size(I) page_count(Q) free_head(q) root(q)
#: live_nodes(Q) meta_len(I)
_HEADER = struct.Struct("<8sHIQqqQI")
_FREE_LINK = struct.Struct("<q")
_CRC = struct.Struct("<I")

#: Sentinel for "no page".
NO_PAGE = -1


class PageCorruptionError(RuntimeError):
    """Raised when a page fails its checksum on read."""


@dataclass
class PagerStats:
    """Physical I/O counters."""

    physical_reads: int = 0
    physical_writes: int = 0

    def reset(self) -> None:
        self.physical_reads = self.physical_writes = 0

    def snapshot(self) -> "PagerStats":
        return PagerStats(self.physical_reads, self.physical_writes)

    def __sub__(self, other: "PagerStats") -> "PagerStats":
        return PagerStats(
            self.physical_reads - other.physical_reads,
            self.physical_writes - other.physical_writes,
        )


class Pager:
    """Fixed-size page file with a free list and a small metadata area.

    Each data page stores ``page_size - 4`` payload bytes followed by a
    CRC32 checksum, verified on every read.
    """

    def __init__(
        self,
        path: str,
        page_size: Optional[int] = None,
        *,
        journaled: bool = False,
        strict: bool = False,
    ) -> None:
        # ``None`` means "whatever the file says" (or the default for a
        # new file); an explicit size is checked against the file below.
        requested_size = page_size
        if page_size is None:
            page_size = DEFAULT_PAGE_SIZE
        if page_size < 512:
            raise ValueError("page size must be at least 512 bytes")
        self.path = os.fspath(path)
        self.journal_path = self.path + "-journal"
        self.journaled = journaled
        self._journaled_pages: set = set()
        self._journal_file = None
        self._journal_base_count: Optional[int] = None
        #: Page ids freed by this process and not yet reallocated, kept
        #: so a double free is caught before it cycles the free list.
        self._freed: set = set()
        self.stats = PagerStats()
        # Reentrant: public methods nest (allocate -> write -> journal).
        self._mutex = threading.RLock()
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = open(self.path, "r+b" if exists else "w+b")
        if exists and os.path.exists(self.journal_path):
            # A crash left an unfinished transaction: roll it back
            # before trusting anything in the file.  A crash before the
            # very first commit rolls all the way back to an empty file,
            # which is then (re)created below.
            self._rollback_journal()
            exists = os.path.getsize(self.path) > 0
        if exists:
            self._load_header()
            if requested_size is not None and requested_size != self.page_size:
                # Geometry comes from the file, not the argument.
                message = (
                    f"page file {self.path!r} uses page_size "
                    f"{self.page_size}; requested {requested_size} is ignored"
                )
                if strict:
                    self._file.close()
                    raise ValueError(message)
                warnings.warn(message, stacklevel=2)
        else:
            self.page_size = page_size
            # Pin the pre-creation state (zero pages): until the first
            # commit, rollback erases the file entirely.
            self.page_count = 0
            self._ensure_transaction()
            self.page_count = 1  # the header page
            self._free_head = NO_PAGE
            self._root = NO_PAGE
            self.live_nodes = 0
            self._meta: Dict[str, str] = {}
            self._write_header()

    # ------------------------------------------------------------------
    # Rollback journal
    # ------------------------------------------------------------------
    _JOURNAL_HEADER = struct.Struct("<8sIQ")
    _JOURNAL_MAGIC = b"SBTRjrnl"
    _JOURNAL_RECORD = struct.Struct("<q")

    def _capture_pre_image(self, page_id: int) -> None:
        """Append a page's current on-disk bytes to the journal.

        Called before the first overwrite of a page in the current
        transaction.  Pages created after the last commit are skipped:
        rollback simply truncates them away.
        """
        if not self.journaled or page_id in self._journaled_pages:
            return
        self._ensure_transaction()
        self._journaled_pages.add(page_id)
        if page_id >= self._journal_base_count:
            return  # fresh page: nothing to restore
        self._file.seek(page_id * self.page_size)
        pre_image = self._file.read(self.page_size)
        pre_image = pre_image.ljust(self.page_size, b"\x00")
        self._journal_file.write(self._JOURNAL_RECORD.pack(page_id))
        self._journal_file.write(pre_image)
        self._journal_file.flush()

    def _ensure_transaction(self) -> None:
        """Open the journal and pin the committed page count, once."""
        if not self.journaled or self._journal_base_count is not None:
            return
        self._journal_base_count = self.page_count
        self._journal_file = open(self.journal_path, "wb")
        self._journal_file.write(
            self._JOURNAL_HEADER.pack(
                self._JOURNAL_MAGIC, self.page_size, self.page_count
            )
        )

    def commit(self) -> None:
        """Make the current state durable and clear the journal."""
        with self._mutex:
            self._file.flush()
            os.fsync(self._file.fileno())
            if self._journal_file is not None:
                self._journal_file.close()
                self._journal_file = None
            if os.path.exists(self.journal_path):
                os.remove(self.journal_path)
            self._journaled_pages.clear()
            self._journal_base_count = None

    def in_transaction(self) -> bool:
        """Whether uncommitted (journaled) changes exist."""
        return self._journal_base_count is not None

    def _rollback_journal(self) -> None:
        """Restore pre-images from a leftover journal, then delete it."""
        with open(self.journal_path, "rb") as journal:
            header = journal.read(self._JOURNAL_HEADER.size)
            if len(header) == self._JOURNAL_HEADER.size:
                magic, page_size, base_count = self._JOURNAL_HEADER.unpack(header)
                if magic == self._JOURNAL_MAGIC:
                    while True:
                        record = journal.read(self._JOURNAL_RECORD.size)
                        if len(record) < self._JOURNAL_RECORD.size:
                            break
                        (page_id,) = self._JOURNAL_RECORD.unpack(record)
                        image = journal.read(page_size)
                        if len(image) < page_size:
                            break  # torn tail record: ignore
                        self._file.seek(page_id * page_size)
                        self._file.write(image)
                    self._file.truncate(base_count * page_size)
                    self._file.flush()
                    os.fsync(self._file.fileno())
        os.remove(self.journal_path)

    # ------------------------------------------------------------------
    # Header handling
    # ------------------------------------------------------------------
    def _load_header(self) -> None:
        self._file.seek(0)
        raw = self._file.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise PageCorruptionError("truncated header page")
        magic, version, page_size, page_count, free_head, root, live, meta_len = (
            _HEADER.unpack(raw)
        )
        if magic != _MAGIC:
            raise PageCorruptionError(f"bad magic in {self.path!r}")
        if version != _VERSION:
            raise PageCorruptionError(f"unsupported format version {version}")
        self.page_size = page_size
        self.page_count = page_count
        self._free_head = free_head
        self._root = root
        self.live_nodes = live
        meta_raw = self._file.read(meta_len).decode("utf-8")
        self._meta = {}
        for line in meta_raw.splitlines():
            key, _, value = line.partition("=")
            self._meta[key] = value

    def _write_header(self) -> None:
        meta_raw = "\n".join(f"{k}={v}" for k, v in sorted(self._meta.items()))
        blob = meta_raw.encode("utf-8")
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            self.page_size,
            self.page_count,
            self._free_head,
            self._root,
            self.live_nodes,
            len(blob),
        )
        payload = header + blob
        if len(payload) > self.page_size:
            raise ValueError("metadata does not fit in the header page")
        with self._mutex:
            self._capture_pre_image(0)
            self._file.seek(0)
            self._file.write(payload.ljust(self.page_size, b"\x00"))

    # ------------------------------------------------------------------
    # Root pointer and metadata
    # ------------------------------------------------------------------
    def get_root(self) -> Optional[int]:
        return None if self._root == NO_PAGE else self._root

    def set_root(self, page_id: int) -> None:
        self._root = page_id
        self._write_header()

    def get_meta(self, key: str) -> Optional[str]:
        return self._meta.get(key)

    def set_meta(self, key: str, value: str) -> None:
        self._meta[key] = value
        self._write_header()

    # ------------------------------------------------------------------
    # Page I/O
    # ------------------------------------------------------------------
    @property
    def payload_size(self) -> int:
        """Usable bytes per page (page size minus the checksum)."""
        return self.page_size - _CRC.size

    def read_page(self, page_id: int) -> bytes:
        """Read and checksum-verify one page's payload."""
        with self._mutex:
            if not 1 <= page_id < self.page_count:
                raise ValueError(f"page {page_id} out of range")
            self._file.seek(page_id * self.page_size)
            raw = self._file.read(self.page_size)
            self.stats.physical_reads += 1
        payload, crc_raw = raw[: self.payload_size], raw[self.payload_size:]
        (expected,) = _CRC.unpack(crc_raw)
        if zlib.crc32(payload) != expected:
            raise PageCorruptionError(f"checksum mismatch on page {page_id}")
        return payload

    def write_page(self, page_id: int, payload: bytes) -> None:
        """Write one page's payload, appending its checksum."""
        if len(payload) > self.payload_size:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds page capacity "
                f"{self.payload_size}"
            )
        with self._mutex:
            if not 1 <= page_id < self.page_count:
                raise ValueError(f"page {page_id} out of range")
            self._capture_pre_image(page_id)
            padded = payload.ljust(self.payload_size, b"\x00")
            self._file.seek(page_id * self.page_size)
            self._file.write(padded + _CRC.pack(zlib.crc32(padded)))
            self.stats.physical_writes += 1

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate_page(self) -> int:
        """Pop a page from the free list, or extend the file."""
        with self._mutex:
            # Pin the committed page count before the file can grow, so
            # a rollback truncates freshly allocated pages away.
            self._ensure_transaction()
            if self._free_head != NO_PAGE:
                page_id = self._free_head
                payload = self.read_page(page_id)
                (self._free_head,) = _FREE_LINK.unpack(payload[: _FREE_LINK.size])
                self._freed.discard(page_id)
            else:
                page_id = self.page_count
                self.page_count += 1
                self.write_page(page_id, b"")
            self.live_nodes += 1
            self._write_header()
            return page_id

    def free_page(self, page_id: int) -> None:
        """Push a page onto the free list for reuse.

        Rejects the header page, out-of-range ids, and pages this
        process already freed (a double free would cycle the free list
        and silently hand the same page to two later allocations).
        """
        with self._mutex:
            if not 1 <= page_id < self.page_count:
                raise ValueError(
                    f"cannot free page {page_id}: valid data pages are "
                    f"1..{self.page_count - 1}"
                )
            if page_id in self._freed:
                raise ValueError(f"double free of page {page_id}")
            self.write_page(page_id, _FREE_LINK.pack(self._free_head))
            self._free_head = page_id
            self._freed.add(page_id)
            self.live_nodes -= 1
            self._write_header()

    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush the OS file buffers to stable storage."""
        with self._mutex:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        """Clean shutdown: persist the header and commit any transaction."""
        with self._mutex:
            if not self._file.closed:
                self._write_header()
                if self.journaled:
                    self.commit()
                self._file.flush()
                self._file.close()

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
