"""LRU buffer pool with write-back caching over a pager.

Sits between the node store and the page file.  Reads are served from
the pool when possible (a *hit*); otherwise the page is fetched from the
pager (a *miss*).  Writes dirty the cached copy; dirty pages reach the
pager only on eviction or an explicit flush -- standard write-back
semantics, which is what makes the paper's O(h)-pages-per-update claim
measurable: repeated touches of the upper tree levels are absorbed by
the pool.

The pool is internally synchronized: even a logically read-only tree
operation *mutates* LRU recency state and may trigger an eviction, so
concurrent readers (e.g. under :class:`repro.concurrent.ConcurrentTree`'s
shared lock) must not race on the frame table.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

from .pager import Pager

__all__ = ["BufferPool", "BufferStats"]


@dataclass
class BufferStats:
    """Cache behaviour counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.dirty_writebacks = 0

    def snapshot(self) -> "BufferStats":
        return BufferStats(
            self.hits, self.misses, self.evictions, self.dirty_writebacks
        )

    def __sub__(self, other: "BufferStats") -> "BufferStats":
        return BufferStats(
            self.hits - other.hits,
            self.misses - other.misses,
            self.evictions - other.evictions,
            self.dirty_writebacks - other.dirty_writebacks,
        )


class _Frame:
    __slots__ = ("payload", "dirty")

    def __init__(self, payload: bytes, dirty: bool) -> None:
        self.payload = payload
        self.dirty = dirty


class BufferPool:
    """A fixed-capacity, least-recently-used page cache."""

    def __init__(self, pager: Pager, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.pager = pager
        self.capacity = capacity
        self.stats = BufferStats()
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    def read(self, page_id: int) -> bytes:
        """Return a page's payload, via the cache."""
        with self._mutex:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.hits += 1
                self._frames.move_to_end(page_id)
                return frame.payload
            self.stats.misses += 1
            payload = self.pager.read_page(page_id)
            self._admit(page_id, _Frame(payload, dirty=False))
            return payload

    def write(self, page_id: int, payload: bytes) -> None:
        """Record new contents for a page (write-back: no pager I/O yet)."""
        with self._mutex:
            frame = self._frames.get(page_id)
            if frame is not None:
                frame.payload = payload
                frame.dirty = True
                self._frames.move_to_end(page_id)
                return
            self._admit(page_id, _Frame(payload, dirty=True))

    def discard(self, page_id: int) -> None:
        """Drop a page from the pool without writing it back (page freed)."""
        with self._mutex:
            self._frames.pop(page_id, None)

    def flush(self) -> None:
        """Write every dirty frame back to the pager."""
        with self._mutex:
            for page_id, frame in self._frames.items():
                if frame.dirty:
                    self.pager.write_page(page_id, frame.payload)
                    self.stats.dirty_writebacks += 1
                    frame.dirty = False

    # ------------------------------------------------------------------
    def _admit(self, page_id: int, frame: _Frame) -> None:
        while len(self._frames) >= self.capacity:
            # Write the victim back BEFORE dropping its frame: if the
            # pager raises (EIO, degraded mode), the dirty frame must
            # survive in the pool or committed data would silently
            # vanish.  The exception propagates with the pool intact.
            victim_id, victim = next(iter(self._frames.items()))
            if victim.dirty:
                self.pager.write_page(victim_id, victim.payload)
                self.stats.dirty_writebacks += 1
                victim.dirty = False
            del self._frames[victim_id]
            self.stats.evictions += 1
        self._frames[page_id] = frame

    def __len__(self) -> int:
        return len(self._frames)
