"""Closed-loop load generator for the temporal-aggregate service.

``N`` worker threads each open one connection and run a closed loop of
mixed ``insert`` / ``lookup`` / ``rangeq`` traffic -- plus ``window``
probes when the server's kind supports them -- recording per-operation
latencies and verifying every read against the in-process reference
oracle.

With ``pipeline=1`` the loop is strictly request/response (next request
only after the previous reply).  With ``pipeline=k`` each worker keeps
*bursts* of up to ``k`` requests in flight on its one connection via
:meth:`ServiceClient.submit`.  Bursts are **homogeneous** -- all
inserts or all reads -- and a burst's replies are all collected before
the next burst starts, so at every read the worker's acked-fact list is
still a complete oracle: reads in one burst never race the same
worker's writes, and other workers' writes are invisible to it by band
ownership (below).  ``codec`` selects the wire format per connection
("auto", "binary", or "json").

Verification under concurrency works by *time-band ownership*: the
server's span is cut into one disjoint half-open band per worker, and a
worker only ever inserts facts inside its own band and reads instants
inside it.  Instantaneous aggregates at ``t`` depend only on facts
containing ``t``, and no other worker's facts can contain an instant in
this worker's band, so each connection's acked-fact list is a complete
oracle for its own reads even while the other connections hammer the
same server.  Window probes bound ``w`` so the closed window
``[t - w, t]`` stays inside the band for the same reason.

The run summary is written as ``BENCH_service.json`` via
:func:`repro.benchlib.write_bench_json`: latency percentiles as the
series (one column per operation), throughput/error/verification
numbers in the ``extra`` payload.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .. import benchlib
from ..core import reference
from ..obs import trace
from .client import (
    CircuitOpenError,
    ServiceClient,
    ServiceError,
    TransportError,
)

__all__ = [
    "LoadgenResult",
    "PatientWriteResult",
    "run_loadgen",
    "run_codec_comparison",
    "run_patient_writes",
    "percentile",
]

#: Percentiles reported in the latency series.
PERCENTILES = (50.0, 90.0, 95.0, 99.0)

#: Operation mix of the closed loop (renormalized if window is dropped).
DEFAULT_MIX = {"insert": 0.4, "lookup": 0.35, "rangeq": 0.2, "window": 0.05}


def percentile(sorted_values: List[float], pct: float) -> float:
    """Exact percentile (nearest-rank) of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(pct / 100.0 * len(sorted_values))))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class LoadgenResult:
    """Everything one load-generation run measured."""

    def __init__(self) -> None:
        self.kind: str = ""
        self.duration_s: float = 0.0
        self.connections: int = 0
        self.codec: str = "json"
        self.pipeline: int = 1
        self.ops: Dict[str, int] = {}
        self.errors: int = 0
        self.latencies_s: Dict[str, List[float]] = {}
        self.lookups_verified: int = 0
        self.rows_verified: int = 0
        self.windows_verified: int = 0
        self.verify_failures: List[str] = []
        self.facts_inserted: int = 0
        self.server_stats: Dict[str, Any] = {}
        self.tracing_enabled: bool = False

    @property
    def total_ops(self) -> int:
        return sum(self.ops.values())

    @property
    def throughput(self) -> float:
        return self.total_ops / self.duration_s if self.duration_s else 0.0

    @property
    def verified_ok(self) -> bool:
        return not self.verify_failures

    def series(self) -> benchlib.Series:
        series = benchlib.Series("percentile", list(PERCENTILES))
        for op in sorted(self.latencies_s):
            values = sorted(self.latencies_s[op])
            series.add(
                f"{op}_ms",
                [percentile(values, pct) * 1e3 for pct in PERCENTILES],
            )
        return series

    def extra(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "connections": self.connections,
            "codec": self.codec,
            "pipeline": self.pipeline,
            "duration_s": round(self.duration_s, 6),
            "ops": dict(self.ops),
            "total_ops": self.total_ops,
            "throughput_ops_per_s": round(self.throughput, 2),
            "errors": self.errors,
            "facts_inserted": self.facts_inserted,
            "verified": {
                "lookups": self.lookups_verified,
                "rangeq_rows": self.rows_verified,
                "windows": self.windows_verified,
                "failures": list(self.verify_failures),
                "ok": self.verified_ok,
            },
            "server": {
                "num_shards": self.server_stats.get("shards", {}).get(
                    "num_shards"
                ),
                "facts": self.server_stats.get("shards", {}).get("facts"),
            },
            # So a benchmark reader knows whether latencies include the
            # per-request tracing cost.
            "tracing": self.tracing_enabled,
        }

    def render(self) -> str:
        lines = [
            f"service loadgen: kind={self.kind} connections={self.connections}"
            f" codec={self.codec} pipeline={self.pipeline}"
            f" ops={self.total_ops} errors={self.errors}"
            f" throughput={self.throughput:.0f} ops/s"
            f" duration={self.duration_s:.2f}s",
            "latency percentiles (ms):",
            self.series().render(with_exponents=False),
            f"verified: {self.lookups_verified} lookups,"
            f" {self.rows_verified} rangeq rows,"
            f" {self.windows_verified} windows ->"
            f" {'OK' if self.verified_ok else 'FAILED'}",
        ]
        for failure in self.verify_failures[:5]:
            lines.append(f"  MISMATCH {failure}")
        return "\n".join(lines)


class _Worker(threading.Thread):
    """One closed-loop connection owning a disjoint time band."""

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        kind: str,
        band: Tuple[int, int],
        ops: int,
        mix: Dict[str, float],
        seed: int,
        timeout: float,
        codec: str = "auto",
        pipeline: int = 1,
    ) -> None:
        super().__init__(name=f"loadgen-{index}", daemon=True)
        self.index = index
        self.host = host
        self.port = port
        self.kind = kind
        self.band = band
        self.ops_target = ops
        self.mix = mix
        self.rng = random.Random(seed)
        self.timeout = timeout
        self.codec = codec
        self.pipeline = max(1, pipeline)
        self.result = LoadgenResult()
        self.facts: List[Tuple[Any, Tuple[int, int]]] = []
        self.error: Optional[BaseException] = None
        # Reads recorded for post-run verification: (op, args, reply,
        # len(self.facts) at read time).  The oracle rescans every
        # acked fact per read -- running it inside the timed loop would
        # contend with the service under test for CPU and understate
        # throughput, so the timed loop only records and the check runs
        # after the clock stops.  Exactness is preserved: facts are
        # append-only and the recorded prefix length pins each read's
        # oracle set.
        self._deferred: List[Tuple[str, Any, Any, int]] = []

    def run(self) -> None:
        try:
            with ServiceClient(
                self.host, self.port, timeout=self.timeout, codec=self.codec
            ) as client:
                if self.pipeline > 1:
                    self._loop_pipelined(client)
                else:
                    self._loop(client)
        except BaseException as exc:  # surfaced by run_loadgen
            self.error = exc

    # ------------------------------------------------------------------
    def _loop(self, client: ServiceClient) -> None:
        lo, hi = self.band
        ops = list(self.mix)
        weights = [self.mix[op] for op in ops]
        res = self.result
        for _ in range(self.ops_target):
            op = self.rng.choices(ops, weights)[0]
            started = time.perf_counter()
            try:
                if op == "insert":
                    self._insert(client, lo, hi)
                elif op == "lookup":
                    self._lookup(client, lo, hi)
                elif op == "rangeq":
                    self._rangeq(client, lo, hi)
                else:
                    self._window(client, lo, hi)
            except ServiceError:
                res.errors += 1
            elapsed = time.perf_counter() - started
            res.ops[op] = res.ops.get(op, 0) + 1
            res.latencies_s.setdefault(op, []).append(elapsed)

    # ------------------------------------------------------------------
    def _loop_pipelined(self, client: ServiceClient) -> None:
        """Homogeneous bursts of up to ``pipeline`` in-flight requests.

        An insert burst's replies are all collected (and its acked facts
        recorded) before any later read burst is built, so every read's
        oracle is exact.  Per-request latency is submit-to-reply, which
        *includes* queueing behind the burst -- deep pipelines trade
        per-request latency for throughput, and the numbers show it.
        """
        lo, hi = self.band
        ops = list(self.mix)
        weights = [self.mix[op] for op in ops]
        res = self.result
        remaining = self.ops_target
        while remaining > 0:
            op = self.rng.choices(ops, weights)[0]
            depth = min(self.pipeline, remaining)
            remaining -= depth
            if op == "insert":
                self._insert_burst(client, lo, hi, depth)
            else:
                self._read_burst(client, op, lo, hi, depth)

    def _insert_burst(self, client, lo: int, hi: int, depth: int) -> None:
        res = self.result
        batch = []
        for _ in range(depth):
            s, e = self._span(lo, hi)
            value = self.rng.randint(1, 100)
            started = time.perf_counter()
            batch.append(
                (value, s, e, started,
                 client.submit_insert(value, s, e, flush=False))
            )
        client.flush()  # the whole burst leaves in one system call
        for value, s, e, started, future in batch:
            try:
                future.result()
            except ServiceError:
                res.errors += 1
            else:
                self.facts.append((value, (s, e)))
                res.facts_inserted += 1
            res.ops["insert"] = res.ops.get("insert", 0) + 1
            res.latencies_s.setdefault("insert", []).append(
                time.perf_counter() - started
            )

    def _read_burst(self, client, op: str, lo: int, hi: int, depth: int) -> None:
        res = self.result
        batch = []
        for _ in range(depth):
            started = time.perf_counter()
            if op == "lookup":
                t = self.rng.randint(lo, hi - 1)
                batch.append(
                    (t, started, client.submit("lookup", flush=False, t=t))
                )
            elif op == "rangeq":
                s, e = self._span(lo, hi)
                batch.append(
                    ((s, e), started,
                     client.submit("rangeq", flush=False, start=s, end=e))
                )
            else:
                t = self.rng.randint(lo + 1, hi - 1)
                w = self.rng.randint(0, t - lo)
                batch.append(
                    ((t, w), started,
                     client.submit("window", flush=False, t=t, w=w))
                )
        client.flush()
        for args, started, future in batch:
            try:
                got = future.result()
            except ServiceError:
                res.errors += 1
            else:
                self._deferred.append((op, args, got, len(self.facts)))
            res.ops[op] = res.ops.get(op, 0) + 1
            res.latencies_s.setdefault(op, []).append(
                time.perf_counter() - started
            )

    def verify_deferred(self) -> None:
        """Check every recorded read against the oracle (post-run)."""
        lo, hi = self.band
        for op, args, got, nfacts in self._deferred:
            self._verify_read(op, args, got, lo, hi, self.facts[:nfacts])
        self._deferred.clear()

    def _verify_read(
        self, op: str, args, got, lo: int, hi: int, facts
    ) -> None:
        res = self.result
        if op == "lookup":
            t = args
            want = reference.instantaneous_value(facts, self.kind, t)
            res.lookups_verified += 1
            if got != want:
                res.verify_failures.append(
                    f"lookup(t={t}) = {got!r}, oracle {want!r}"
                )
        elif op == "rangeq":
            s, e = args
            for value, rs, _re in got:
                if not (lo <= rs < hi):
                    continue
                want = reference.instantaneous_value(facts, self.kind, rs)
                res.rows_verified += 1
                if value != want:
                    res.verify_failures.append(
                        f"rangeq({s},{e}) row at {rs} = {value!r},"
                        f" oracle {want!r}"
                    )
        else:
            t, w = args
            want = reference.cumulative_value(facts, self.kind, t, w)
            res.windows_verified += 1
            if got != want:
                res.verify_failures.append(
                    f"window(t={t}, w={w}) = {got!r}, oracle {want!r}"
                )

    def _span(self, lo: int, hi: int) -> Tuple[int, int]:
        width = max(1, (hi - lo) // 8)
        s = self.rng.randint(lo, max(lo, hi - 1 - width))
        e = s + self.rng.randint(1, width)
        return s, min(e, hi)

    def _insert(self, client: ServiceClient, lo: int, hi: int) -> None:
        s, e = self._span(lo, hi)
        value = self.rng.randint(1, 100)
        client.insert(value, s, e)
        self.facts.append((value, (s, e)))
        self.result.facts_inserted += 1

    def _lookup(self, client: ServiceClient, lo: int, hi: int) -> None:
        t = self.rng.randint(lo, hi - 1)
        got = client.lookup(t)
        self._deferred.append(("lookup", t, got, len(self.facts)))

    def _rangeq(self, client: ServiceClient, lo: int, hi: int) -> None:
        s, e = self._span(lo, hi)
        rows = client.rangeq(s, e)
        triples = [(value, iv.start, iv.end) for value, iv in rows]
        self._deferred.append(("rangeq", (s, e), triples, len(self.facts)))

    def _window(self, client: ServiceClient, lo: int, hi: int) -> None:
        t = self.rng.randint(lo + 1, hi - 1)
        w = self.rng.randint(0, t - lo)  # keep [t - w, t] inside the band
        got = client.window(t, w)
        self._deferred.append(("window", (t, w), got, len(self.facts)))


def _bands(lo: int, hi: int, n: int) -> List[Tuple[int, int]]:
    """Cut ``[lo, hi)`` into *n* disjoint half-open bands of >= 2 units."""
    if hi - lo < 2 * n:
        raise ValueError(
            f"span [{lo}, {hi}) too narrow for {n} worker bands"
        )
    cuts = [lo + (hi - lo) * i // n for i in range(n + 1)]
    return [(cuts[i], cuts[i + 1]) for i in range(n)]


def run_loadgen(
    host: str,
    port: int,
    *,
    connections: int = 4,
    ops_per_connection: int = 500,
    span: Optional[Tuple[int, int]] = None,
    mix: Optional[Dict[str, float]] = None,
    seed: int = 0,
    timeout: float = 10.0,
    codec: str = "auto",
    pipeline: int = 1,
    out_dir: Optional[str] = None,
) -> LoadgenResult:
    """Drive a running server with a verified closed-loop workload.

    Connects, learns the server's kind (and, when *span* is omitted, a
    usable time span from its shard boundaries), fans out
    ``connections`` workers over disjoint time bands -- each keeping up
    to ``pipeline`` requests in flight on a ``codec`` connection --
    then merges their measurements.  When *out_dir* is given the
    summary is written there as ``BENCH_service.json``.
    """
    with ServiceClient(host, port, timeout=timeout, codec=codec) as probe:
        stats = probe.stats()
        negotiated = probe.negotiated_codec or codec
    kind = stats["kind"]
    if span is None:
        span = _span_from_boundaries(stats["shards"]["boundaries"])
    lo, hi = int(span[0]), int(span[1])

    mix = dict(DEFAULT_MIX if mix is None else mix)
    if kind not in ("min", "max"):
        dropped = mix.pop("window", 0.0)
        if dropped and "lookup" in mix:
            mix["lookup"] += dropped
    total_weight = sum(mix.values())
    if total_weight <= 0:
        raise ValueError("operation mix has no positive weights")

    workers = [
        _Worker(
            i,
            host,
            port,
            kind,
            band,
            ops_per_connection,
            mix,
            seed * 10_007 + i,
            timeout,
            codec,
            pipeline,
        )
        for i, band in enumerate(_bands(lo, hi, connections))
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    duration = time.perf_counter() - started
    for worker in workers:
        if worker.error is not None:
            raise worker.error
    for worker in workers:
        worker.verify_deferred()  # oracle runs outside the timed window

    merged = LoadgenResult()
    merged.kind = kind
    merged.connections = connections
    merged.codec = negotiated
    merged.pipeline = max(1, pipeline)
    merged.duration_s = duration
    merged.tracing_enabled = trace.is_enabled()
    for worker in workers:
        res = worker.result
        merged.errors += res.errors
        merged.facts_inserted += res.facts_inserted
        merged.lookups_verified += res.lookups_verified
        merged.rows_verified += res.rows_verified
        merged.windows_verified += res.windows_verified
        merged.verify_failures.extend(res.verify_failures)
        for op, count in res.ops.items():
            merged.ops[op] = merged.ops.get(op, 0) + count
        for op, latencies in res.latencies_s.items():
            merged.latencies_s.setdefault(op, []).extend(latencies)

    with ServiceClient(host, port, timeout=timeout) as probe:
        merged.server_stats = probe.stats()

    if out_dir is not None:
        benchlib.write_bench_json(
            out_dir, "service", merged.series(), extra=merged.extra()
        )
    return merged


def run_codec_comparison(
    host: str,
    port: int,
    *,
    connections: int = 4,
    ops_per_connection: int = 500,
    span: Optional[Tuple[int, int]] = None,
    depths: Tuple[int, ...] = (1, 8, 32),
    seed: int = 0,
    timeout: float = 10.0,
    out_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Measure both codecs across pipeline depths against one server.

    The baseline cell is ``(json, depth 1)`` -- exactly the old wire
    protocol and one-in-flight client -- then the JSON codec at the
    deepest pipeline and the binary codec at every depth in *depths*.
    Each cell runs a verified 50/50 insert+lookup workload on its own
    **disjoint slice** of the time span, so one cell's facts can never
    pollute a later cell's read oracle (bands repeat across runs
    otherwise).

    Returns ``{"cells": [...], "baseline": ..., "best": ...,
    "speedup": ...}`` where *speedup* is best-cell throughput over the
    baseline.  When *out_dir* is given, ``BENCH_service.json`` is
    written with the best cell's latency series and the whole matrix
    (plus the speedup) in the extra payload.
    """
    deepest = max(depths) if depths else 1
    cells = [("json", 1)]
    if deepest > 1:
        cells.append(("json", deepest))
    cells.extend(("binary", depth) for depth in sorted(set(depths)))
    with ServiceClient(host, port, timeout=timeout) as probe:
        stats = probe.stats()
    if span is None:
        span = _span_from_boundaries(stats["shards"]["boundaries"])
    slices = _bands(int(span[0]), int(span[1]), len(cells))
    mix = {"insert": 0.5, "lookup": 0.5}

    results: List[LoadgenResult] = []
    for (codec, depth), cell_span in zip(cells, slices):
        res = run_loadgen(
            host,
            port,
            connections=connections,
            ops_per_connection=ops_per_connection,
            span=cell_span,
            mix=mix,
            seed=seed,
            timeout=timeout,
            codec=codec,
            pipeline=depth,
        )
        results.append(res)

    baseline = results[0]
    best = max(results, key=lambda r: r.throughput)
    speedup = (
        best.throughput / baseline.throughput if baseline.throughput else 0.0
    )
    comparison = {
        "cells": results,
        "baseline": baseline,
        "best": best,
        "speedup": speedup,
    }
    if out_dir is not None:
        extra = best.extra()
        extra["codec_matrix"] = [
            {
                "codec": r.codec,
                "pipeline": r.pipeline,
                "throughput_ops_per_s": round(r.throughput, 2),
                "total_ops": r.total_ops,
                "errors": r.errors,
                "verified_ok": r.verified_ok,
            }
            for r in results
        ]
        extra["baseline"] = {
            "codec": baseline.codec,
            "pipeline": baseline.pipeline,
            "throughput_ops_per_s": round(baseline.throughput, 2),
        }
        extra["pipeline_speedup"] = round(speedup, 2)
        benchlib.write_bench_json(
            out_dir, "service", best.series(), extra=extra
        )
    return comparison


class PatientWriteResult:
    """What a patient (retry-until-acked) write run observed."""

    def __init__(self) -> None:
        self.facts: List[Tuple[Any, Tuple[int, int]]] = []  # acked only
        self.attempts = 0
        self.acked = 0
        self.duplicate_acks = 0
        self.transport_errors = 0
        self.retryable_rejections = 0
        self.circuit_opens = 0
        self.unacked = 0
        self.duration_s = 0.0

    def extra(self) -> Dict[str, Any]:
        return {
            "acked_writes": self.acked,
            "attempts": self.attempts,
            "duplicate_acks": self.duplicate_acks,
            "transport_errors": self.transport_errors,
            "retryable_rejections": self.retryable_rejections,
            "circuit_opens": self.circuit_opens,
            "unacked_writes": self.unacked,
            "duration_s": round(self.duration_s, 6),
        }


class _PatientWriter(threading.Thread):
    """One connection retrying each write (same idempotency key) to ack.

    Exactly-once is what makes patience safe: every attempt of one
    logical write carries the same ``(client, seq)`` key, so no matter
    how many times the chaos proxy eats the reply -- or the server dies
    and restarts between attempts -- the fact lands at most once, and
    the loop only moves on once it landed at least once.
    """

    #: Server errors a patient writer waits out rather than dying on
    #: (everything transient: overload, drain, deadline shed, injected
    #: faults, shard lock timeouts -- and ``not_primary``, which the
    #: failover harness produces in the window between retargeting
    #: writers at a replica and that replica's promotion completing).
    WAITABLE = frozenset(
        {
            "overloaded",
            "shutting_down",
            "deadline_exceeded",
            "timeout",
            "fault_injected",
            "not_primary",
        }
    )

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        band: Tuple[int, int],
        writes: int,
        seed: int,
        timeout: float,
        give_up_after: float,
        codec: str = "auto",
    ) -> None:
        super().__init__(name=f"patient-{index}", daemon=True)
        self.index = index
        self.host = host
        self.port = port
        self.band = band
        self.writes = writes
        self.rng = random.Random(seed)
        self.timeout = timeout
        self.give_up_after = give_up_after
        self.codec = codec
        self.result = PatientWriteResult()
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            client = ServiceClient(
                self.host,
                self.port,
                timeout=self.timeout,
                retries=0,  # the patient loop owns all retrying
                client_id=f"patient-{self.index}",
                jitter_seed=self.index,
                circuit_threshold=6,
                circuit_cooldown=min(0.25, self.timeout),
                codec=self.codec,
            )
            with client:
                self._loop(client)
        except BaseException as exc:  # surfaced by run_patient_writes
            self.error = exc

    def _loop(self, client: ServiceClient) -> None:
        lo, hi = self.band
        res = self.result
        for _ in range(self.writes):
            width = max(1, (hi - lo) // 8)
            s = self.rng.randint(lo, max(lo, hi - 1 - width))
            e = min(s + self.rng.randint(1, width), hi)
            value = self.rng.randint(1, 100)
            seq = client.next_seq()  # ONE key for every attempt below
            deadline = time.monotonic() + self.give_up_after
            backoff = 0.01
            acked = False
            while time.monotonic() < deadline:
                res.attempts += 1
                try:
                    result = client.insert_result(value, s, e, seq=seq)
                except CircuitOpenError:
                    res.circuit_opens += 1
                except (TransportError, OSError):
                    res.transport_errors += 1
                except ServiceError as exc:
                    if exc.type not in self.WAITABLE:
                        raise
                    res.retryable_rejections += 1
                    if exc.retry_after:
                        backoff = max(backoff, float(exc.retry_after))
                else:
                    acked = True
                    res.acked += 1
                    if result.get("duplicate"):
                        res.duplicate_acks += 1
                    res.facts.append((value, (s, e)))
                    break
                time.sleep(backoff * (0.5 + 0.5 * self.rng.random()))
                backoff = min(backoff * 2, 0.25)
            if not acked:
                # Indeterminate: the write may or may not be applied.
                # The harness treats any unacked write as a run failure
                # (the oracle can no longer be exact).
                res.unacked += 1


def run_patient_writes(
    host: str,
    port: int,
    *,
    connections: int = 4,
    writes_per_connection: int = 100,
    span: Tuple[int, int] = (0, 100_000),
    seed: int = 0,
    timeout: float = 1.0,
    give_up_after: float = 60.0,
    codec: str = "auto",
) -> PatientWriteResult:
    """Fan out patient exactly-once writers; merge what they acked.

    Unlike :func:`run_loadgen` this makes *no* read-path assumptions --
    it is the write driver of the resilience harness, which verifies
    the final tree against the reference oracle built from the merged
    ``facts`` list after the chaos run ends.
    """
    workers = [
        _PatientWriter(
            i,
            host,
            port,
            band,
            writes_per_connection,
            seed * 10_007 + i,
            timeout,
            give_up_after,
            codec,
        )
        for i, band in enumerate(_bands(int(span[0]), int(span[1]), connections))
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    merged = PatientWriteResult()
    merged.duration_s = time.perf_counter() - started
    for worker in workers:
        if worker.error is not None:
            raise worker.error
        res = worker.result
        merged.facts.extend(res.facts)
        merged.attempts += res.attempts
        merged.acked += res.acked
        merged.duplicate_acks += res.duplicate_acks
        merged.transport_errors += res.transport_errors
        merged.retryable_rejections += res.retryable_rejections
        merged.circuit_opens += res.circuit_opens
        merged.unacked += res.unacked
    return merged


def _span_from_boundaries(boundaries: List[float]) -> Tuple[int, int]:
    """A finite working span for a server known only by its shard cuts.

    The outermost shards are unbounded, so extend one median shard
    width beyond the first and last cut; with a single cut (two shards)
    fall back to a symmetric window around it.
    """
    if not boundaries:
        return (0, 1_000_000)
    if len(boundaries) == 1:
        b = int(boundaries[0])
        pad = max(abs(b), 1000)
        return (b - pad, b + pad)
    widths = sorted(
        boundaries[i + 1] - boundaries[i] for i in range(len(boundaries) - 1)
    )
    pad = int(widths[len(widths) // 2]) or 1
    return (int(boundaries[0]) - pad, int(boundaries[-1]) + pad)
