"""Closed-loop load generator for the temporal-aggregate service.

``N`` worker threads each open one connection and run a closed loop
(next request only after the previous reply) of mixed ``insert`` /
``lookup`` / ``rangeq`` traffic -- plus ``window`` probes when the
server's kind supports them -- recording per-operation latencies and
verifying every read against the in-process reference oracle.

Verification under concurrency works by *time-band ownership*: the
server's span is cut into one disjoint half-open band per worker, and a
worker only ever inserts facts inside its own band and reads instants
inside it.  Instantaneous aggregates at ``t`` depend only on facts
containing ``t``, and no other worker's facts can contain an instant in
this worker's band, so each connection's acked-fact list is a complete
oracle for its own reads even while the other connections hammer the
same server.  Window probes bound ``w`` so the closed window
``[t - w, t]`` stays inside the band for the same reason.

The run summary is written as ``BENCH_service.json`` via
:func:`repro.benchlib.write_bench_json`: latency percentiles as the
series (one column per operation), throughput/error/verification
numbers in the ``extra`` payload.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .. import benchlib
from ..core import reference
from ..obs import trace
from .client import (
    CircuitOpenError,
    ServiceClient,
    ServiceError,
    TransportError,
)

__all__ = [
    "LoadgenResult",
    "PatientWriteResult",
    "run_loadgen",
    "run_patient_writes",
    "percentile",
]

#: Percentiles reported in the latency series.
PERCENTILES = (50.0, 90.0, 95.0, 99.0)

#: Operation mix of the closed loop (renormalized if window is dropped).
DEFAULT_MIX = {"insert": 0.4, "lookup": 0.35, "rangeq": 0.2, "window": 0.05}


def percentile(sorted_values: List[float], pct: float) -> float:
    """Exact percentile (nearest-rank) of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(pct / 100.0 * len(sorted_values))))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class LoadgenResult:
    """Everything one load-generation run measured."""

    def __init__(self) -> None:
        self.kind: str = ""
        self.duration_s: float = 0.0
        self.connections: int = 0
        self.ops: Dict[str, int] = {}
        self.errors: int = 0
        self.latencies_s: Dict[str, List[float]] = {}
        self.lookups_verified: int = 0
        self.rows_verified: int = 0
        self.windows_verified: int = 0
        self.verify_failures: List[str] = []
        self.facts_inserted: int = 0
        self.server_stats: Dict[str, Any] = {}
        self.tracing_enabled: bool = False

    @property
    def total_ops(self) -> int:
        return sum(self.ops.values())

    @property
    def throughput(self) -> float:
        return self.total_ops / self.duration_s if self.duration_s else 0.0

    @property
    def verified_ok(self) -> bool:
        return not self.verify_failures

    def series(self) -> benchlib.Series:
        series = benchlib.Series("percentile", list(PERCENTILES))
        for op in sorted(self.latencies_s):
            values = sorted(self.latencies_s[op])
            series.add(
                f"{op}_ms",
                [percentile(values, pct) * 1e3 for pct in PERCENTILES],
            )
        return series

    def extra(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "connections": self.connections,
            "duration_s": round(self.duration_s, 6),
            "ops": dict(self.ops),
            "total_ops": self.total_ops,
            "throughput_ops_per_s": round(self.throughput, 2),
            "errors": self.errors,
            "facts_inserted": self.facts_inserted,
            "verified": {
                "lookups": self.lookups_verified,
                "rangeq_rows": self.rows_verified,
                "windows": self.windows_verified,
                "failures": list(self.verify_failures),
                "ok": self.verified_ok,
            },
            "server": {
                "num_shards": self.server_stats.get("shards", {}).get(
                    "num_shards"
                ),
                "facts": self.server_stats.get("shards", {}).get("facts"),
            },
            # So a benchmark reader knows whether latencies include the
            # per-request tracing cost.
            "tracing": self.tracing_enabled,
        }

    def render(self) -> str:
        lines = [
            f"service loadgen: kind={self.kind} connections={self.connections}"
            f" ops={self.total_ops} errors={self.errors}"
            f" throughput={self.throughput:.0f} ops/s"
            f" duration={self.duration_s:.2f}s",
            "latency percentiles (ms):",
            self.series().render(with_exponents=False),
            f"verified: {self.lookups_verified} lookups,"
            f" {self.rows_verified} rangeq rows,"
            f" {self.windows_verified} windows ->"
            f" {'OK' if self.verified_ok else 'FAILED'}",
        ]
        for failure in self.verify_failures[:5]:
            lines.append(f"  MISMATCH {failure}")
        return "\n".join(lines)


class _Worker(threading.Thread):
    """One closed-loop connection owning a disjoint time band."""

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        kind: str,
        band: Tuple[int, int],
        ops: int,
        mix: Dict[str, float],
        seed: int,
        timeout: float,
    ) -> None:
        super().__init__(name=f"loadgen-{index}", daemon=True)
        self.index = index
        self.host = host
        self.port = port
        self.kind = kind
        self.band = band
        self.ops_target = ops
        self.mix = mix
        self.rng = random.Random(seed)
        self.timeout = timeout
        self.result = LoadgenResult()
        self.facts: List[Tuple[Any, Tuple[int, int]]] = []
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            with ServiceClient(
                self.host, self.port, timeout=self.timeout
            ) as client:
                self._loop(client)
        except BaseException as exc:  # surfaced by run_loadgen
            self.error = exc

    # ------------------------------------------------------------------
    def _loop(self, client: ServiceClient) -> None:
        lo, hi = self.band
        ops = list(self.mix)
        weights = [self.mix[op] for op in ops]
        res = self.result
        for _ in range(self.ops_target):
            op = self.rng.choices(ops, weights)[0]
            started = time.perf_counter()
            try:
                if op == "insert":
                    self._insert(client, lo, hi)
                elif op == "lookup":
                    self._lookup(client, lo, hi)
                elif op == "rangeq":
                    self._rangeq(client, lo, hi)
                else:
                    self._window(client, lo, hi)
            except ServiceError:
                res.errors += 1
            elapsed = time.perf_counter() - started
            res.ops[op] = res.ops.get(op, 0) + 1
            res.latencies_s.setdefault(op, []).append(elapsed)

    def _span(self, lo: int, hi: int) -> Tuple[int, int]:
        width = max(1, (hi - lo) // 8)
        s = self.rng.randint(lo, max(lo, hi - 1 - width))
        e = s + self.rng.randint(1, width)
        return s, min(e, hi)

    def _insert(self, client: ServiceClient, lo: int, hi: int) -> None:
        s, e = self._span(lo, hi)
        value = self.rng.randint(1, 100)
        client.insert(value, s, e)
        self.facts.append((value, (s, e)))
        self.result.facts_inserted += 1

    def _lookup(self, client: ServiceClient, lo: int, hi: int) -> None:
        t = self.rng.randint(lo, hi - 1)
        got = client.lookup(t)
        want = reference.instantaneous_value(self.facts, self.kind, t)
        self.result.lookups_verified += 1
        if got != want:
            self.result.verify_failures.append(
                f"lookup(t={t}) = {got!r}, oracle {want!r}"
            )

    def _rangeq(self, client: ServiceClient, lo: int, hi: int) -> None:
        s, e = self._span(lo, hi)
        rows = client.rangeq(s, e)
        for value, interval in rows:
            t = interval.start
            if not (lo <= t < hi):
                continue
            want = reference.instantaneous_value(self.facts, self.kind, t)
            self.result.rows_verified += 1
            if value != want:
                self.result.verify_failures.append(
                    f"rangeq({s},{e}) row at {t} = {value!r}, oracle {want!r}"
                )

    def _window(self, client: ServiceClient, lo: int, hi: int) -> None:
        t = self.rng.randint(lo + 1, hi - 1)
        w = self.rng.randint(0, t - lo)  # keep [t - w, t] inside the band
        got = client.window(t, w)
        want = reference.cumulative_value(self.facts, self.kind, t, w)
        self.result.windows_verified += 1
        if got != want:
            self.result.verify_failures.append(
                f"window(t={t}, w={w}) = {got!r}, oracle {want!r}"
            )


def _bands(lo: int, hi: int, n: int) -> List[Tuple[int, int]]:
    """Cut ``[lo, hi)`` into *n* disjoint half-open bands of >= 2 units."""
    if hi - lo < 2 * n:
        raise ValueError(
            f"span [{lo}, {hi}) too narrow for {n} worker bands"
        )
    cuts = [lo + (hi - lo) * i // n for i in range(n + 1)]
    return [(cuts[i], cuts[i + 1]) for i in range(n)]


def run_loadgen(
    host: str,
    port: int,
    *,
    connections: int = 4,
    ops_per_connection: int = 500,
    span: Optional[Tuple[int, int]] = None,
    mix: Optional[Dict[str, float]] = None,
    seed: int = 0,
    timeout: float = 10.0,
    out_dir: Optional[str] = None,
) -> LoadgenResult:
    """Drive a running server with a verified closed-loop workload.

    Connects, learns the server's kind (and, when *span* is omitted, a
    usable time span from its shard boundaries), fans out
    ``connections`` closed-loop workers over disjoint time bands, then
    merges their measurements.  When *out_dir* is given the summary is
    written there as ``BENCH_service.json``.
    """
    with ServiceClient(host, port, timeout=timeout) as probe:
        stats = probe.stats()
    kind = stats["kind"]
    if span is None:
        span = _span_from_boundaries(stats["shards"]["boundaries"])
    lo, hi = int(span[0]), int(span[1])

    mix = dict(DEFAULT_MIX if mix is None else mix)
    if kind not in ("min", "max"):
        dropped = mix.pop("window", 0.0)
        if dropped and "lookup" in mix:
            mix["lookup"] += dropped
    total_weight = sum(mix.values())
    if total_weight <= 0:
        raise ValueError("operation mix has no positive weights")

    workers = [
        _Worker(
            i,
            host,
            port,
            kind,
            band,
            ops_per_connection,
            mix,
            seed * 10_007 + i,
            timeout,
        )
        for i, band in enumerate(_bands(lo, hi, connections))
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    duration = time.perf_counter() - started
    for worker in workers:
        if worker.error is not None:
            raise worker.error

    merged = LoadgenResult()
    merged.kind = kind
    merged.connections = connections
    merged.duration_s = duration
    merged.tracing_enabled = trace.is_enabled()
    for worker in workers:
        res = worker.result
        merged.errors += res.errors
        merged.facts_inserted += res.facts_inserted
        merged.lookups_verified += res.lookups_verified
        merged.rows_verified += res.rows_verified
        merged.windows_verified += res.windows_verified
        merged.verify_failures.extend(res.verify_failures)
        for op, count in res.ops.items():
            merged.ops[op] = merged.ops.get(op, 0) + count
        for op, latencies in res.latencies_s.items():
            merged.latencies_s.setdefault(op, []).extend(latencies)

    with ServiceClient(host, port, timeout=timeout) as probe:
        merged.server_stats = probe.stats()

    if out_dir is not None:
        benchlib.write_bench_json(
            out_dir, "service", merged.series(), extra=merged.extra()
        )
    return merged


class PatientWriteResult:
    """What a patient (retry-until-acked) write run observed."""

    def __init__(self) -> None:
        self.facts: List[Tuple[Any, Tuple[int, int]]] = []  # acked only
        self.attempts = 0
        self.acked = 0
        self.duplicate_acks = 0
        self.transport_errors = 0
        self.retryable_rejections = 0
        self.circuit_opens = 0
        self.unacked = 0
        self.duration_s = 0.0

    def extra(self) -> Dict[str, Any]:
        return {
            "acked_writes": self.acked,
            "attempts": self.attempts,
            "duplicate_acks": self.duplicate_acks,
            "transport_errors": self.transport_errors,
            "retryable_rejections": self.retryable_rejections,
            "circuit_opens": self.circuit_opens,
            "unacked_writes": self.unacked,
            "duration_s": round(self.duration_s, 6),
        }


class _PatientWriter(threading.Thread):
    """One connection retrying each write (same idempotency key) to ack.

    Exactly-once is what makes patience safe: every attempt of one
    logical write carries the same ``(client, seq)`` key, so no matter
    how many times the chaos proxy eats the reply -- or the server dies
    and restarts between attempts -- the fact lands at most once, and
    the loop only moves on once it landed at least once.
    """

    #: Server errors a patient writer waits out rather than dying on
    #: (everything transient: overload, drain, deadline shed, injected
    #: faults, shard lock timeouts).
    WAITABLE = frozenset(
        {
            "overloaded",
            "shutting_down",
            "deadline_exceeded",
            "timeout",
            "fault_injected",
        }
    )

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        band: Tuple[int, int],
        writes: int,
        seed: int,
        timeout: float,
        give_up_after: float,
    ) -> None:
        super().__init__(name=f"patient-{index}", daemon=True)
        self.index = index
        self.host = host
        self.port = port
        self.band = band
        self.writes = writes
        self.rng = random.Random(seed)
        self.timeout = timeout
        self.give_up_after = give_up_after
        self.result = PatientWriteResult()
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            client = ServiceClient(
                self.host,
                self.port,
                timeout=self.timeout,
                retries=0,  # the patient loop owns all retrying
                client_id=f"patient-{self.index}",
                jitter_seed=self.index,
                circuit_threshold=6,
                circuit_cooldown=min(0.25, self.timeout),
            )
            with client:
                self._loop(client)
        except BaseException as exc:  # surfaced by run_patient_writes
            self.error = exc

    def _loop(self, client: ServiceClient) -> None:
        lo, hi = self.band
        res = self.result
        for _ in range(self.writes):
            width = max(1, (hi - lo) // 8)
            s = self.rng.randint(lo, max(lo, hi - 1 - width))
            e = min(s + self.rng.randint(1, width), hi)
            value = self.rng.randint(1, 100)
            seq = client.next_seq()  # ONE key for every attempt below
            deadline = time.monotonic() + self.give_up_after
            backoff = 0.01
            acked = False
            while time.monotonic() < deadline:
                res.attempts += 1
                try:
                    result = client.insert_result(value, s, e, seq=seq)
                except CircuitOpenError:
                    res.circuit_opens += 1
                except (TransportError, OSError):
                    res.transport_errors += 1
                except ServiceError as exc:
                    if exc.type not in self.WAITABLE:
                        raise
                    res.retryable_rejections += 1
                    if exc.retry_after:
                        backoff = max(backoff, float(exc.retry_after))
                else:
                    acked = True
                    res.acked += 1
                    if result.get("duplicate"):
                        res.duplicate_acks += 1
                    res.facts.append((value, (s, e)))
                    break
                time.sleep(backoff * (0.5 + 0.5 * self.rng.random()))
                backoff = min(backoff * 2, 0.25)
            if not acked:
                # Indeterminate: the write may or may not be applied.
                # The harness treats any unacked write as a run failure
                # (the oracle can no longer be exact).
                res.unacked += 1


def run_patient_writes(
    host: str,
    port: int,
    *,
    connections: int = 4,
    writes_per_connection: int = 100,
    span: Tuple[int, int] = (0, 100_000),
    seed: int = 0,
    timeout: float = 1.0,
    give_up_after: float = 60.0,
) -> PatientWriteResult:
    """Fan out patient exactly-once writers; merge what they acked.

    Unlike :func:`run_loadgen` this makes *no* read-path assumptions --
    it is the write driver of the resilience harness, which verifies
    the final tree against the reference oracle built from the merged
    ``facts`` list after the chaos run ends.
    """
    workers = [
        _PatientWriter(
            i,
            host,
            port,
            band,
            writes_per_connection,
            seed * 10_007 + i,
            timeout,
            give_up_after,
        )
        for i, band in enumerate(_bands(int(span[0]), int(span[1]), connections))
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    merged = PatientWriteResult()
    merged.duration_s = time.perf_counter() - started
    for worker in workers:
        if worker.error is not None:
            raise worker.error
        res = worker.result
        merged.facts.extend(res.facts)
        merged.attempts += res.attempts
        merged.acked += res.acked
        merged.duplicate_acks += res.duplicate_acks
        merged.transport_errors += res.transport_errors
        merged.retryable_rejections += res.retryable_rejections
        merged.circuit_opens += res.circuit_opens
        merged.unacked += res.unacked
    return merged


def _span_from_boundaries(boundaries: List[float]) -> Tuple[int, int]:
    """A finite working span for a server known only by its shard cuts.

    The outermost shards are unbounded, so extend one median shard
    width beyond the first and last cut; with a single cut (two shards)
    fall back to a symmetric window around it.
    """
    if not boundaries:
        return (0, 1_000_000)
    if len(boundaries) == 1:
        b = int(boundaries[0])
        pad = max(abs(b), 1000)
        return (b - pad, b + pad)
    widths = sorted(
        boundaries[i + 1] - boundaries[i] for i in range(len(boundaries) - 1)
    )
    pad = int(widths[len(widths) // 2]) or 1
    return (int(boundaries[0]) - pad, int(boundaries[-1]) + pad)
