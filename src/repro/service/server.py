"""The asyncio TCP front end over a :class:`~repro.sharding.ShardedTree`.

Stdlib-only.  One event loop owns all connections; tree operations run
in a small thread pool so shard read locks actually overlap and a slow
(or fault-injected) shard apply delays only the requests waiting on it,
never the loop.  The moving parts:

* **Dual-codec wire.**  Each reply goes out in the codec its request
  frame arrived in (JSON or struct-packed binary, auto-detected per
  frame); the ``hello`` op grants clients the binary codec.  Dispatch
  is codec-agnostic -- both codecs decode to identical request dicts.
* **Group commit.**  ``insert``/``batch_insert`` requests do not touch
  the tree directly: their facts join a pending batch, and a flush is
  triggered when the batch reaches ``batch_max`` facts or the oldest
  waiter has aged ``batch_delay`` seconds.  One flush groups every
  fact's pieces per shard and applies them with *one* write-lock
  acquisition per touched shard (:meth:`ShardedTree.batch_insert`), so
  k concurrent writers cost one lock round per shard, not one per
  fact.  Writers are acknowledged only after their whole batch applied.
* **Backpressure.**  Each connection holds a semaphore of
  ``queue_limit`` in-flight requests; when it is exhausted the reader
  coroutine stops reading frames, which propagates to the client
  through TCP flow control -- a bounded per-connection queue with no
  explicit queue object.
* **Structured errors.**  Every failure the server can attribute to a
  request -- unknown op, bad arguments, unsupported window kind, an
  injected fault, a shard lock timeout -- produces an ``{"ok": false,
  "error": {...}}`` reply on the same connection.  Only unframeable
  garbage closes the connection (after a best-effort error frame).
* **Exactly-once writes.**  Mutating requests may carry an idempotency
  key ``(client, seq)``; applied keys are remembered in a
  :class:`~repro.service.dedup.DedupWindow` and duplicates are answered
  by replaying the original reply (``"duplicate": true``) instead of
  re-applying -- blind client retries cannot double-count a SUM.  When
  the shards are store-backed, the window is serialized into the page
  file's header metadata *inside* the group commit, so dedup state and
  tree data survive a crash-restart atomically.
* **Durable acks.**  With store-backed shards, every group-commit flush
  ends in :meth:`~repro.sharding.ShardedTree.commit` before the batch's
  waiters are acknowledged: an acked write is on disk, mirroring the
  pager's acked-write contract over the network.
* **Overload protection.**  Admission control bounds the *global*
  in-flight request count and bytes (``max_inflight`` /
  ``max_inflight_bytes``); requests beyond the bound are rejected
  immediately with ``ERR_OVERLOADED`` and a ``retry_after`` hint,
  before they consume a queue slot.  Requests carrying ``deadline_ms``
  are shed with ``ERR_DEADLINE`` if their budget expired while queued.
* **Graceful drain.**  ``stop()`` closes the listener, flushes (and,
  when durable, commits) the pending write batch, waits for in-flight
  requests to reply, and only then closes connections.  Writes arriving
  during the drain get ``ERR_SHUTTING_DOWN``.
* **Observability.**  Per-op counters and latency histograms land in a
  :class:`~repro.obs.MetricsRegistry` under ``service.<op>.*`` (reusing
  the ``op.*`` record machinery), plus ``service.batch.size``, flush,
  dedup, overload, and deadline counters; the ``stats`` op serves them
  to clients.
* **Replication.**  A primary ships every committed batch to
  subscribed followers (``subscribe_journal`` / ``journal_batch``, see
  :mod:`repro.service.replication`) and, by default, holds each
  write's ack until every live follower has applied it (semi-sync,
  bounded by ``repl_ack_timeout``).  A server started with
  ``replica_of`` follows a primary instead of accepting writes: reads
  are served tagged with the applied-commit watermark, writes are
  rejected with ``ERR_NOT_PRIMARY`` + a redirect hint, and the
  ``promote`` op seals the stream and flips the replica into a
  primary with the exactly-once dedup window intact.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import traceback
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from .. import obs
from ..concurrent import LockTimeout
from ..core.intervals import Interval
from ..faults import SimulatedCrash
from ..obs import trace
from ..obs.health import record_health, record_view_gauges, sharded_health
from ..sharding import ShardedTree, ShardingError, WindowUnsupportedError
from ..warehouse.dynamic import DynamicCatalog, ViewDependencyError
from . import dedup as dedup_mod
from . import protocol as wire
from .dedup import DedupWindow
from .replication import CommitLog, ReplicationError, decode_records, encode_records

__all__ = ["TemporalAggregateServer", "ServerHandle"]

logger = logging.getLogger(__name__)

#: Header-metadata key the dedup window is persisted under.
DEDUP_META_KEY = "service.dedup"

#: Header-metadata key the replication commit watermark is persisted
#: under.  Written inside every durable group commit (primaries write
#: their commit-log head, replicas their applied commit), so a restarted
#: process knows exactly where in the replication stream its on-disk
#: state sits: a primary restores its commit numbering (and refuses
#: followers that would need the unretained prefix), a replica resumes
#: its subscription from the watermark instead of refetching history.
REPL_COMMIT_META_KEY = "service.repl.commit"


def _number(value: Any, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise wire.ProtocolError(f"field {field!r} must be a number")
    return value


class _InlineAck:
    """Reply slot for an insert enqueued straight from the read loop.

    Takes the place of the per-request ``asyncio.Future`` waiter in the
    group-commit batch: instead of a task awaiting the future and then
    sending its own reply, the flush writes every inline ack of a
    connection in one coalesced ``write``.  ``future`` is non-None only
    when the request carried an idempotency key -- duplicate deliveries
    racing the flush join it via ``_dedup_pending`` exactly as they join
    a slow-path insert.
    """

    __slots__ = ("writer", "write_lock", "request", "codec", "future", "arrival")

    def __init__(self, writer, write_lock, request, codec, future, arrival):
        self.writer = writer
        self.write_lock = write_lock
        self.request = request
        self.codec = codec
        self.future = future
        self.arrival = arrival


class _Draining(Exception):
    """A write arrived while the server is draining."""


class _DeadlineExpired(Exception):
    """A request's propagated deadline lapsed before dispatch."""


class _CommitFailed(Exception):
    """The batch applied but its durability commit failed."""


class _NotPrimary(Exception):
    """A write reached a replica; the client must redirect."""


class _StreamReset(Exception):
    """The follower must drop and re-establish its subscription
    (idle link, sequence gap, corrupt batch) -- transient by design:
    resubscribing from the applied watermark loses nothing."""


class _StreamRejected(Exception):
    """The upstream refused the subscription (wrong shard layout,
    diverged history, itself a replica); retried slowly -- the
    condition usually needs an operator (or a promotion) to clear."""


class _Subscriber:
    """One follower's registration on a primary."""

    __slots__ = ("name", "writer", "codec", "acked", "last_ack")

    def __init__(self, name: str, writer, codec: str, acked: int) -> None:
        self.name = name
        self.writer = writer
        self.codec = codec
        self.acked = acked
        self.last_ack: Optional[float] = None


def _idem_key(request: Dict[str, Any]) -> Optional[dedup_mod.IdemKey]:
    """Validate and extract the request's idempotency key, if any."""
    client = request.get("client")
    seq = request.get("seq")
    if client is None and seq is None:
        return None
    if not isinstance(client, str) or not client:
        raise wire.ProtocolError("field 'client' must be a non-empty string")
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 1:
        raise wire.ProtocolError("field 'seq' must be a positive integer")
    return client, seq


class TemporalAggregateServer:
    """Serve one sharded temporal-aggregate index over TCP."""

    def __init__(
        self,
        sharded: ShardedTree,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_max: int = 64,
        batch_delay: float = 0.002,
        queue_limit: int = 32,
        drain_timeout: float = 5.0,
        health_interval: float = 0.0,
        max_inflight: int = 256,
        max_inflight_bytes: int = 32 * 1024 * 1024,
        dedup_window: int = 128,
        registry: Optional[obs.MetricsRegistry] = None,
        executor: Optional[ThreadPoolExecutor] = None,
        replica_of: Optional[str] = None,
        replica_name: Optional[str] = None,
        repl_sync: bool = True,
        repl_ack_timeout: float = 10.0,
        repl_heartbeat: float = 0.5,
        repl_log_cap: int = 64 * 1024 * 1024,
        views: Optional[DynamicCatalog] = None,
        view_tick: float = 0.05,
    ) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be at least 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if max_inflight < 1 or max_inflight_bytes < 1:
            raise ValueError("inflight bounds must be positive")
        self.sharded = sharded
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.batch_delay = batch_delay
        self.queue_limit = queue_limit
        self.drain_timeout = drain_timeout
        self.health_interval = health_interval
        self.max_inflight = max_inflight
        self.max_inflight_bytes = max_inflight_bytes
        self.registry = registry if registry is not None else obs.MetricsRegistry()
        self._executor = executor or ThreadPoolExecutor(
            max_workers=max(4, sharded.num_shards + 2),
            thread_name_prefix="repro-service",
        )
        self._owns_executor = executor is None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._inflight: set = set()
        self._inflight_bytes = 0
        self._connections: set = set()
        # Group-commit state (only touched from the event loop).  Each
        # entry carries the waiter's trace context (or None) so a flush
        # can replay its spans under every sampled participant, plus the
        # request's idempotency key (or None).
        self._pending: List[
            Tuple[
                List[Tuple[Any, Interval]],
                asyncio.Future,
                Optional[trace.TraceContext],
                Optional[dedup_mod.IdemKey],
            ]
        ] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._flush_lock: Optional[asyncio.Lock] = None
        self._health_task: Optional[asyncio.Task] = None
        # Exactly-once state: applied keys, and keys whose batch is in
        # flight (duplicates of those join the batch's future instead of
        # enqueueing a second apply).
        self._durable = sharded.durable
        self._dedup = DedupWindow(per_client=dedup_window)
        self._dedup_pending: Dict[dedup_mod.IdemKey, asyncio.Future] = {}
        loaded = self._dedup.load(sharded.get_meta(DEDUP_META_KEY))
        if loaded:
            self.registry.counter("service.dedup.loaded").inc(loaded)
        # Replication state.  The durable watermark ties the on-disk
        # tree to a position in the commit stream (see
        # REPL_COMMIT_META_KEY); both roles restore it on open.
        restored = 0
        for raw in sharded.get_meta(REPL_COMMIT_META_KEY):
            try:
                restored = max(restored, int(raw))
            except (TypeError, ValueError):
                pass
        self._is_replica = replica_of is not None
        self._promoted = False
        self._primary_addr: Optional[Tuple[str, int]] = None
        if replica_of is not None:
            try:
                if isinstance(replica_of, str):
                    phost, _, pport = replica_of.rpartition(":")
                    self._primary_addr = (phost, int(pport))
                else:
                    phost, pport = replica_of
                    self._primary_addr = (str(phost), int(pport))
            except (TypeError, ValueError):
                raise ValueError(
                    f"replica_of must be 'host:port', got {replica_of!r}"
                ) from None
        self.replica_name = replica_name
        self.repl_sync = repl_sync
        self.repl_ack_timeout = repl_ack_timeout
        self.repl_heartbeat = repl_heartbeat
        self.repl_log_cap = repl_log_cap
        # Primary side: the bounded commit log and its subscribers.
        self._commit_log = CommitLog(base=restored, cap_bytes=repl_log_cap)
        self._stream_id = uuid.uuid4().hex
        self._had_subscriber = False
        # True while the semi-sync floor must hold even with zero live
        # subscriber connections (a follower exists but is mid-reconnect
        # after a link fault); cleared only by a full ack-timeout
        # degrade, set again the moment a follower (re)subscribes.
        self._repl_expected = False
        self._subscribers: Dict[str, _Subscriber] = {}
        self._ack_waiters: List[Tuple[int, asyncio.Future]] = []
        self._heartbeat_task: Optional[asyncio.Task] = None
        # Follower side: applied watermark and the follow loop.
        self._applied_commit = restored
        self._stream_head = restored
        self._last_stream_mono: Optional[float] = None
        self._gap_since: Optional[float] = None
        self._repl_idle = max(3.0 * repl_heartbeat, 2.0)
        self._repl_connected = False
        self._repl_last_error: Optional[str] = None
        self._repl_sealed = False
        self._follow_task: Optional[asyncio.Task] = None
        self._follow_writer = None
        self._repl_stop: Optional[asyncio.Event] = None
        self._promote_lock: Optional[asyncio.Lock] = None
        # Hot-path bindings, resolved once instead of per request: the
        # profile of the dispatch loop showed registry name lookups and
        # the op if-chain costing more than the tree work for ping-sized
        # requests.
        self._m_errors = self.registry.counter("service.errors")
        self._m_overload = self.registry.counter("service.overload.rejected")
        self._m_deadline_shed = self.registry.counter("service.deadline.shed")
        self._m_dedup_replays = self.registry.counter("service.dedup.replays")
        self._m_fast_reads = self.registry.counter("service.fast_reads")
        # Inline read fast path: a ``lookup`` whose shard read lock is
        # free is answered on the event loop itself -- profiling showed
        # the executor round-trip (~70us) plus task creation (~15us)
        # costing 10x the tree lookup (~7us).  Zero-wait try-acquire
        # keeps the loop from ever blocking on a busy shard (those
        # requests take the normal executor path), and the path is
        # disabled entirely for durable or fault-injected trees, whose
        # stores may carry injected delays that must never run on the
        # loop.
        self._inline_reads = (
            not sharded.durable and sharded.fault_injector is None
        )
        # Inline write fast path: an ``insert`` is validated, dedup-
        # checked, and appended to the group-commit batch directly from
        # the connection read loop -- no per-request task, no semaphore,
        # no per-reply drain.  The flush acknowledges all inline inserts
        # of a connection in ONE coalesced write.  The apply itself
        # still runs in the executor via the unchanged flush machinery,
        # so exactly-once and durability semantics are identical.
        # Disabled alongside fault injection because the overload
        # contract counts slow in-flight requests against
        # ``max_inflight``, and inline inserts do not hold a slot.
        # Replicas disable it too: their writes must reach the
        # _NotPrimary rejection in _write_op, not the batch queue.
        self._inline_writes = self._inline_reads and not self._is_replica
        self._m_fast_writes = self.registry.counter("service.fast_writes")
        self._pending_facts = 0  # mirrors sum(len(f) for f, ... in _pending)
        # The dynamic-view fleet (see repro.warehouse.dynamic): named
        # base tables ingested via table_insert, views refreshed by a
        # background tick at view_tick seconds (<= 0 disables the loop;
        # lag="downstream" views and pinned reports still refresh
        # on demand).  The catalog has its own lock, so view ops run in
        # the executor like tree ops.
        self.views = views if views is not None else DynamicCatalog()
        self.view_tick = view_tick
        self._view_task: Optional[asyncio.Task] = None
        self._handlers = {
            "ping": self._op_ping,
            "hello": self._op_hello,
            "insert": self._op_insert,
            "batch_insert": self._op_batch_insert,
            "lookup": self._op_lookup,
            "rangeq": self._op_rangeq,
            "window": self._op_window,
            "stats": self._op_stats,
            "journal_ack": self._op_journal_ack,
            "promote": self._op_promote,
            "table_insert": self._op_table_insert,
            "create_view": self._op_create_view,
            "query_view": self._op_query_view,
            "refresh_view": self._op_refresh_view,
            "drop_view": self._op_drop_view,
            "view_stats": self._op_view_stats,
            "repair_view": self._op_repair_view,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the real port."""
        self._loop = asyncio.get_running_loop()
        self._flush_lock = asyncio.Lock()
        self._promote_lock = asyncio.Lock()
        self._repl_stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.health_interval > 0:
            self._health_task = self._loop.create_task(self._health_loop())
        if self.view_tick > 0:
            self._view_task = self._loop.create_task(self._view_tick_loop())
        if self._is_replica:
            if self.replica_name is None:
                self.replica_name = f"{self.host}:{self.port}"
            self._follow_task = self._loop.create_task(self._follow_loop())

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Graceful drain: stop accepting, flush writes, answer in-flight."""
        self._draining = True
        if self._repl_stop is not None:
            self._repl_stop.set()
        if self._follow_task is not None:
            if self._follow_writer is not None:
                try:
                    self._follow_writer.close()
                except Exception:
                    pass
            try:
                await asyncio.wait_for(
                    self._follow_task, timeout=self.drain_timeout
                )
            except Exception:
                self._follow_task.cancel()
            self._follow_task = None
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        if self._health_task is not None:
            self._health_task.cancel()
            self._health_task = None
        if self._view_task is not None:
            self._view_task.cancel()
            self._view_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        await self._flush_batch()
        if self._inflight:
            await asyncio.wait(
                list(self._inflight), timeout=self.drain_timeout
            )
        for task in list(self._inflight):
            task.cancel()
        for writer in list(self._connections):
            writer.close()
        try:
            # Checkpoint the view catalog (a no-op for in-memory ones)
            # so persisted watermarks reflect everything acknowledged.
            await self._run(self.views.close)
        except Exception:
            self.registry.counter("service.views.close_errors").inc()
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    async def _health_loop(self) -> None:
        """Periodically publish tree-health gauges to the registry."""
        try:
            while True:
                await asyncio.sleep(self.health_interval)
                try:
                    await self._run(self.refresh_health)
                except Exception:
                    self.registry.counter("service.health.poll_errors").inc()
        except asyncio.CancelledError:
            pass

    def refresh_health(self) -> Dict[str, Any]:
        """Snapshot shard health and record it as registry gauges.

        Blocking (takes each shard's read lock): call from the executor
        or another non-loop thread (the ``/metrics`` endpoint does).
        """
        health = sharded_health(self.sharded)
        record_health(self.registry, health)
        try:
            self._refresh_repl_gauges()
        except Exception:
            pass  # gauge refresh races the loop; never fail a scrape
        return health

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        slots = asyncio.Semaphore(self.queue_limit)
        write_lock = asyncio.Lock()
        self.registry.counter("service.connections.opened").inc()
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                # Replies go out in the codec their request arrived in;
                # a pipelined connection may even interleave codecs
                # (the frame after a binary-granting ``hello`` is the
                # first binary one).
                codec = wire.CODEC_JSON
                try:
                    length = wire.decode_length(header)
                    body = await reader.readexactly(length)
                    codec = wire.codec_of(body)
                    request = wire.decode_body(body)
                except wire.ProtocolError as exc:
                    # Unframeable input: answer once, then hang up (the
                    # stream offset can no longer be trusted).
                    await self._send(
                        writer, write_lock,
                        wire.error_reply(wire.ERR_BAD_REQUEST, str(exc)),
                        codec=codec,
                    )
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                arrival = asyncio.get_running_loop().time()
                if request.get("op") == "subscribe_journal":
                    # Subscriptions bypass admission control (one frame
                    # turns the connection into a push stream) and must
                    # register atomically with the flush machinery.
                    await self._subscribe_journal(
                        request, writer, write_lock, codec
                    )
                    continue
                if request.get("op") == "journal_ack":
                    # Acks release semi-sync writers; they must never
                    # queue behind admission control (a primary at
                    # max_inflight would otherwise deadlock on its own
                    # followers until the ack timeout).
                    try:
                        reply = await self._op_journal_ack(request, None)
                    except wire.ProtocolError as exc:
                        reply = wire.error_reply(
                            wire.ERR_BAD_REQUEST, str(exc), request
                        )
                    await self._send(
                        writer, write_lock, reply, request, codec=codec
                    )
                    continue
                # Admission control: a request beyond the global bounds
                # is rejected *now*, before it holds a queue slot --
                # shedding load costs one error frame, not a thread or a
                # growing queue.
                if (
                    len(self._inflight) >= self.max_inflight
                    or self._inflight_bytes + length > self.max_inflight_bytes
                ):
                    self._m_overload.inc()
                    await self._send(
                        writer, write_lock,
                        wire.error_reply(
                            wire.ERR_OVERLOADED,
                            f"server over capacity ({len(self._inflight)} "
                            f"requests, {self._inflight_bytes} bytes in flight)",
                            request,
                            retry_after=self._retry_after(),
                        ),
                        request,
                        codec=codec,
                    )
                    continue
                if not trace.TRACING and not obs.ENABLED:
                    op = request.get("op")
                    if op == "lookup" and self._inline_reads:
                        reply = self._fast_lookup_reply(request, arrival)
                        if reply is not None:
                            await self._send(
                                writer, write_lock, reply, request,
                                codec=codec,
                            )
                            continue
                    elif op == "insert" and self._inline_writes:
                        if await self._fast_insert(
                            request, arrival, writer, write_lock, codec
                        ):
                            continue
                await slots.acquire()  # backpressure: stop reading when full
                task = asyncio.ensure_future(
                    self._serve_request(
                        request, writer, write_lock, slots, arrival, codec
                    )
                )
                self._inflight.add(task)
                self._inflight_bytes += length
                task.add_done_callback(
                    lambda t, n=length: self._request_done(t, n)
                )
        finally:
            self._connections.discard(writer)
            self.registry.counter("service.connections.closed").inc()
            try:
                writer.close()
            except Exception:
                pass

    def _request_done(self, task, nbytes: int) -> None:
        self._inflight.discard(task)
        self._inflight_bytes -= nbytes

    def _fast_lookup_reply(self, request, arrival) -> Optional[Dict[str, Any]]:
        """Serve a lookup inline on the loop, or None to take the slow path.

        Declines (returns None) when the target shard's read lock is
        not *immediately* free; otherwise it holds the lock only for
        the in-memory tree descent.  Every contract of the normal path
        is preserved: deadline validation and shedding, structured
        errors, and the ``service.lookup`` op record.
        """
        loop = asyncio.get_running_loop()
        try:
            self._check_deadline(request, arrival, loop)
            t = request.get("t")
            if isinstance(t, bool) or not isinstance(t, (int, float)):
                raise wire.ProtocolError("field 't' must be a number")
            sharded = self.sharded
            if "lookup_final" in sharded.__dict__:
                # The read path has been wrapped on the instance (test
                # doubles, instrumentation): honor it via the slow path.
                return None
            shard = sharded.shards[sharded.router.shard_of(t)]
            if not shard.lock.acquire_read(0):
                return None  # contended: queue behind the writer instead
            try:
                value = shard.tree.lookup(t)
            finally:
                shard.lock.release_read()
            reply = wire.ok_reply(sharded.spec.finalize(value), request)
        except _DeadlineExpired as exc:
            self._m_deadline_shed.inc()
            reply = wire.error_reply(wire.ERR_DEADLINE, str(exc), request)
        except wire.ProtocolError as exc:
            reply = wire.error_reply(wire.ERR_BAD_REQUEST, str(exc), request)
        except ShardingError as exc:
            reply = wire.error_reply(wire.ERR_BAD_REQUEST, str(exc), request)
        except SimulatedCrash as exc:
            reply = wire.error_reply(wire.ERR_FAULT, str(exc), request)
        except Exception as exc:  # never let a request kill the server
            reply = wire.error_reply(
                wire.ERR_SERVER, f"{type(exc).__name__}: {exc}", request
            )
        self._m_fast_reads.inc()
        self.registry.record_op(
            obs.OpRecord(
                op="service.lookup", wall_us=(loop.time() - arrival) * 1e6
            )
        )
        if not reply.get("ok"):
            self._m_errors.inc()
        elif self._is_replica:
            self._tag_watermark(reply)
        return reply

    async def _fast_insert(
        self, request, arrival, writer, write_lock, codec: str
    ) -> bool:
        """Enqueue an insert from the read loop, or False for slow path.

        Validation, deadline shedding, and the dedup window check all
        run inline (they are in-memory and sync); the apply itself still
        happens in the executor through the unchanged flush machinery.
        The only declined case is a duplicate racing its original
        batch -- joining a flight needs the full await machinery of
        ``_check_duplicate``.
        """
        loop = asyncio.get_running_loop()
        idem = None
        reply = None
        try:
            self._check_deadline(request, arrival, loop)
            facts = [self._fact(request)]
            idem = _idem_key(request)
            if self._draining:
                raise _Draining(
                    "server is draining; retry against the new instance"
                )
        except _DeadlineExpired as exc:
            self._m_deadline_shed.inc()
            reply = wire.error_reply(wire.ERR_DEADLINE, str(exc), request)
        except wire.ProtocolError as exc:
            reply = wire.error_reply(wire.ERR_BAD_REQUEST, str(exc), request)
        except _Draining as exc:
            reply = wire.error_reply(
                wire.ERR_SHUTTING_DOWN, str(exc), request,
                retry_after=self._retry_after(),
            )
        future = None
        if reply is None and idem is not None:
            status, stored = self._dedup.lookup(*idem)
            if status == dedup_mod.HIT:
                self._m_dedup_replays.inc()
                result = (
                    dict(stored) if isinstance(stored, dict) else {"applied": 0}
                )
                result["duplicate"] = True
                reply = wire.ok_reply(result, request)
            elif status == dedup_mod.STALE:
                self._m_dedup_replays.inc()
                self.registry.counter("service.dedup.evicted_replays").inc()
                reply = wire.ok_reply(
                    {"applied": 0, "duplicate": True, "evicted": True},
                    request,
                )
            elif idem in self._dedup_pending:
                return False  # joining an in-flight batch: slow path
            else:
                assert self._loop is not None
                future = self._loop.create_future()
                self._dedup_pending[idem] = future
        if reply is not None:
            # Early answer (shed, rejected, or dedup replay): mirror the
            # slow path's accounting before sending.
            if not reply.get("ok"):
                self._m_errors.inc()
            self._record_insert_at(arrival)
            await self._send(writer, write_lock, reply, request, codec=codec)
            return True
        ack = _InlineAck(writer, write_lock, request, codec, future, arrival)
        self._pending.append((facts, ack, None, idem))
        self._pending_facts += len(facts)
        self._m_fast_writes.inc()
        if self._pending_facts >= self.batch_max:
            if self._flush_handle is not None:
                self._flush_handle.cancel()
                self._flush_handle = None
            self.registry.counter("service.batch.size_flushes").inc()
            # Awaiting the flush here is the backpressure: the read
            # loop stops consuming frames while the apply runs.
            await self._flush_batch()
        elif self._flush_handle is None:
            self._flush_handle = self._loop.call_later(
                self.batch_delay, self._deadline_flush
            )
        return True

    def _record_inline_insert(self, ack: _InlineAck) -> None:
        self._record_insert_at(ack.arrival)

    def _record_insert_at(self, arrival: float) -> None:
        assert self._loop is not None
        self.registry.record_op(
            obs.OpRecord(
                op="service.insert",
                wall_us=(self._loop.time() - arrival) * 1e6,
            )
        )

    def _ack_frame(self, ack: _InlineAck, reply, acks: dict) -> None:
        """Encode one inline reply and group it by destination writer."""
        try:
            frame = wire.encode_frame(reply, ack.codec)
        except Exception as exc:
            self._m_errors.inc()
            frame = wire.encode_frame(
                wire.error_reply(
                    wire.ERR_SERVER,
                    f"reply not serializable: {type(exc).__name__}: {exc}",
                    ack.request,
                ),
                ack.codec,
            )
        entry = acks.get(id(ack.writer))
        if entry is None:
            acks[id(ack.writer)] = (ack.writer, ack.write_lock, [frame])
        else:
            entry[2].append(frame)

    def _flush_acks(self, acks: dict) -> None:
        """Write each connection's inline acks in one coalesced send."""
        assert self._loop is not None
        for writer, write_lock, frames in acks.values():
            task = self._loop.create_task(
                self._write_acks(writer, write_lock, b"".join(frames))
            )
            self._inflight.add(task)
            task.add_done_callback(lambda t: self._request_done(t, 0))

    async def _write_acks(self, writer, write_lock, payload: bytes) -> None:
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(payload)
            try:
                await writer.drain()
            except ConnectionError:
                pass

    def _retry_after(self) -> float:
        """Backoff hint for overload/drain rejections (seconds)."""
        return max(4 * self.batch_delay, 0.05)

    async def _send(
        self,
        writer,
        write_lock,
        reply: Dict[str, Any],
        request=None,
        codec: str = wire.CODEC_JSON,
    ) -> None:
        try:
            frame = wire.encode_frame(reply, codec)
        except Exception as exc:
            # An unserializable result must not silently drop the reply
            # (the client would see its request vanish): degrade to a
            # structured server_error on the same connection.
            if request is None:
                return
            self._m_errors.inc()
            frame = wire.encode_frame(
                wire.error_reply(
                    wire.ERR_SERVER,
                    f"reply not serializable: {type(exc).__name__}: {exc}",
                    request,
                ),
                codec,
            )
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(frame)
            try:
                await writer.drain()
            except ConnectionError:
                pass

    async def _serve_request(
        self, request, writer, write_lock, slots, arrival=None,
        codec: str = wire.CODEC_JSON,
    ) -> None:
        loop = asyncio.get_running_loop()
        started = loop.time()
        if arrival is None:
            arrival = started
        op = request.get("op")
        # The request's trace hop: a child of the client's span,
        # covering the whole server-side dispatch.  Spans inside the
        # executor threads nest under it via trace.wrap; the event loop
        # itself never touches thread-local context (tasks interleave).
        sctx: Optional[trace.TraceContext] = None
        if trace.TRACING:
            ctx_in = trace.TraceContext.from_wire(request.get("trace"))
            if ctx_in is not None:
                sctx = ctx_in.child()
        try:
            self._check_deadline(request, arrival, loop)
            reply = await self._dispatch(request, sctx)
        except _DeadlineExpired as exc:
            self._m_deadline_shed.inc()
            reply = wire.error_reply(wire.ERR_DEADLINE, str(exc), request)
        except _Draining as exc:
            reply = wire.error_reply(
                wire.ERR_SHUTTING_DOWN, str(exc), request,
                retry_after=self._retry_after(),
            )
        except wire.ProtocolError as exc:
            reply = wire.error_reply(wire.ERR_BAD_REQUEST, str(exc), request)
        except (WindowUnsupportedError,) as exc:
            reply = wire.error_reply(wire.ERR_UNSUPPORTED, str(exc), request)
        except ShardingError as exc:
            reply = wire.error_reply(wire.ERR_BAD_REQUEST, str(exc), request)
        except SimulatedCrash as exc:
            reply = wire.error_reply(wire.ERR_FAULT, str(exc), request)
        except LockTimeout as exc:
            reply = wire.error_reply(wire.ERR_TIMEOUT, str(exc), request)
        except _NotPrimary as exc:
            reply = wire.error_reply(
                wire.ERR_NOT_PRIMARY, str(exc), request,
                primary=self._primary_hint(),
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # never let a request kill the server
            reply = wire.error_reply(
                wire.ERR_SERVER,
                f"{type(exc).__name__}: {exc}",
                request,
                trace_id=sctx.trace_id if sctx is not None else None,
            )
        finally:
            slots.release()
        wall_us = (loop.time() - started) * 1e6
        name = op if isinstance(op, str) and op.isidentifier() else "invalid"
        self.registry.record_op(
            obs.OpRecord(op=f"service.{name}", wall_us=wall_us)
        )
        if not reply.get("ok"):
            self._m_errors.inc()
        elif self._is_replica and op in (
            "lookup", "rangeq", "window", "stats", "query_view", "view_stats",
        ):
            self._tag_watermark(reply)
        if sctx is not None:
            trace.emit_span(
                sctx,
                "server.request",
                wall_us,
                attrs={"op": name, "ok": bool(reply.get("ok"))},
            )
        await self._send(writer, write_lock, reply, request, codec=codec)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        request: Dict[str, Any],
        sctx: Optional[trace.TraceContext] = None,
    ) -> Dict[str, Any]:
        handler = self._handlers.get(request.get("op"))
        if handler is None:
            op = request.get("op")
            raise_op = repr(op) if op is not None else "missing 'op' field"
            return wire.error_reply(
                wire.ERR_UNKNOWN_OP, f"unknown op {raise_op}", request
            )
        return await handler(request, sctx)

    async def _op_ping(self, request, sctx) -> Dict[str, Any]:
        return wire.ok_reply("pong", request)

    async def _op_hello(self, request, sctx) -> Dict[str, Any]:
        """Codec negotiation: grant the first offered codec we speak.

        Nothing about the *connection* changes server-side -- replies
        always go out in the codec their request arrived in -- so the
        grant is simply a promise that binary frames will be understood.
        """
        granted = wire.negotiate(request.get("codecs"))
        return wire.ok_reply(
            {
                "codec": granted,
                "version": wire.BINARY_VERSION,
                "max_frame": wire.MAX_FRAME,
            },
            request,
        )

    async def _op_insert(self, request, sctx) -> Dict[str, Any]:
        facts = [self._fact(request)]
        return await self._write_op(facts, request, sctx)

    async def _op_batch_insert(self, request, sctx) -> Dict[str, Any]:
        raw = request.get("facts")
        if not isinstance(raw, list) or not raw:
            raise wire.ProtocolError("batch_insert needs a non-empty 'facts' list")
        facts = [self._fact_from_triple(item) for item in raw]
        return await self._write_op(facts, request, sctx)

    async def _op_lookup(self, request, sctx) -> Dict[str, Any]:
        t = _number(request.get("t"), "t")
        value = await self._run(self.sharded.lookup_final, t, ctx=sctx)
        return wire.ok_reply(value, request)

    async def _op_rangeq(self, request, sctx) -> Dict[str, Any]:
        start = _number(request.get("start"), "start")
        end = _number(request.get("end"), "end")
        if not start < end:
            raise wire.ProtocolError(f"empty range [{start}, {end})")
        table = await self._run(self._rangeq, Interval(start, end), ctx=sctx)
        return wire.ok_reply(table, request)

    async def _op_window(self, request, sctx) -> Dict[str, Any]:
        t = _number(request.get("t"), "t")
        w = _number(request.get("w"), "w")
        value = await self._run(self._window, t, w, ctx=sctx)
        return wire.ok_reply(value, request)

    async def _op_stats(self, request, sctx) -> Dict[str, Any]:
        return wire.ok_reply(await self._run(self._stats), request)

    # ------------------------------------------------------------------
    # Dynamic views (see repro.warehouse.dynamic and DESIGN.md 13)
    # ------------------------------------------------------------------
    async def _view_tick_loop(self) -> None:
        """Drive the catalog's refresh scheduler off the event loop.

        Each pass runs in the executor (refreshes take the catalog
        lock and descend SB-trees).  Per-view failures inside a tick
        are isolated by the catalog (the view is quarantined, siblings
        keep refreshing) and surfaced here with the view's name and
        traceback plus a per-view error counter; a failing pass as a
        whole is counted, never fatal -- the next tick retries and
        ``lag="downstream"`` reads still refresh on demand.
        """

        def on_error(name: str, exc: BaseException) -> None:
            self.registry.counter("service.views.refresh_errors").inc()
            self.registry.counter(f"service.views.{name}.refresh_errors").inc()
            logger.error(
                "view %r refresh failed (quarantined):\n%s",
                name,
                "".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                ),
            )

        try:
            while True:
                await asyncio.sleep(self.view_tick)
                try:
                    await self._run(lambda: self.views.tick(on_error=on_error))
                except Exception:
                    self.registry.counter("service.views.tick_errors").inc()
        except asyncio.CancelledError:
            pass

    async def _run_view(self, fn, *args, ctx=None, **kwargs):
        """Run a catalog operation in the executor, mapping the
        catalog's validation errors (unknown names, cycles, bad lags,
        non-maintainable aggregates) to ``bad_request`` -- they are
        client mistakes, not server faults."""
        try:
            if kwargs:
                return await self._run(lambda: fn(*args, **kwargs), ctx=ctx)
            return await self._run(fn, *args, ctx=ctx)
        except wire.ProtocolError:
            raise
        except (ViewDependencyError, ValueError) as exc:
            raise wire.ProtocolError(str(exc)) from None

    def _view_row(self, item) -> Tuple[Any, Interval, Dict[str, Any]]:
        """Parse one ``table_insert`` row: ``[value, start, end]`` plus
        an optional payload dict (or a bare scalar shorthand, stored as
        ``{"key": <scalar>}`` for the common one-key grouping)."""
        if not isinstance(item, (list, tuple)) or len(item) not in (3, 4):
            raise wire.ProtocolError(
                "rows must be [value, start, end] or [value, start, end, payload]"
            )
        value = item[0]
        start = _number(item[1], "start")
        end = _number(item[2], "end")
        if value is None:
            raise wire.ProtocolError("row needs a 'value'")
        if not start < end:
            raise wire.ProtocolError(f"empty row interval [{start}, {end})")
        payload: Dict[str, Any] = {}
        if len(item) == 4 and item[3] is not None:
            raw = item[3]
            if isinstance(raw, dict):
                if not all(isinstance(k, str) for k in raw):
                    raise wire.ProtocolError("payload keys must be strings")
                payload = dict(raw)
            else:
                payload = {"key": raw}
        return value, Interval(start, end), payload

    def _apply_table_rows(self, table: str, rows) -> int:
        views = self.views
        with views._lock:
            if not views.has_node(table):
                views.create_table(table)
            for value, interval, payload in rows:
                views.insert(table, value, interval, **payload)
        return len(rows)

    def _apply_view_event(self, event: Dict[str, Any]) -> None:
        """Apply one shipped catalog mutation to the local catalog.

        Tolerant by design: a resubscribe after a link fault can
        redeliver an event, so a create of an existing view and a drop
        of an unknown one are no-ops, and unknown kinds (from a newer
        primary) are skipped rather than fatal.
        """
        kind = event.get("kind")
        if kind == "table_insert":
            table = event.get("table")
            rows = [self._view_row(item) for item in event.get("rows") or ()]
            if isinstance(table, str) and table and rows:
                self._apply_table_rows(table, rows)
        elif kind == "create_view":
            name = event.get("name")
            if not isinstance(name, str) or not name:
                return
            with self.views._lock:
                if self.views.has_node(name):
                    return  # replayed create: already present
                self.views.create_view(
                    name,
                    list(event.get("over") or ()),
                    event.get("agg", "sum"),
                    key=event.get("key"),
                    lag=event.get("lag", "downstream"),
                    create_sources=True,
                )
        elif kind == "drop_view":
            name = event.get("view")
            if not isinstance(name, str) or not name:
                return
            with self.views._lock:
                if self.views.has_node(name):
                    self.views.drop_view(name)

    async def _op_table_insert(self, request, sctx) -> Dict[str, Any]:
        if self._is_replica:
            raise _NotPrimary(
                "this server is a read replica; send writes to the primary"
            )
        table = request.get("table")
        if not isinstance(table, str) or not table:
            raise wire.ProtocolError("table_insert needs a 'table' string")
        raw = request.get("rows")
        if not isinstance(raw, list) or not raw:
            raise wire.ProtocolError("table_insert needs a non-empty 'rows' list")
        rows = [self._view_row(item) for item in raw]
        applied = await self._run_view(
            self._apply_table_rows, table, rows, ctx=sctx
        )
        await self._ship_view_event(
            {
                "kind": "table_insert",
                "table": table,
                "rows": [
                    [value, iv.start, iv.end, payload]
                    for value, iv, payload in rows
                ],
            }
        )
        return wire.ok_reply({"applied": applied}, request)

    async def _op_create_view(self, request, sctx) -> Dict[str, Any]:
        if self._is_replica:
            raise _NotPrimary(
                "this server is a read replica; send writes to the primary"
            )
        name = request.get("name")
        if not isinstance(name, str) or not name:
            raise wire.ProtocolError("create_view needs a 'name' string")
        over = request.get("over")
        if isinstance(over, str):
            over = [over]
        if (
            not isinstance(over, list)
            or not over
            or not all(isinstance(s, str) and s for s in over)
        ):
            raise wire.ProtocolError(
                "create_view needs 'over': a source name or list of names"
            )
        key = request.get("key")
        if key is not None and not isinstance(key, str):
            raise wire.ProtocolError("field 'key' must be a payload field name")

        def create():
            from ..warehouse.dynamic import format_lag

            view = self.views.create_view(
                name,
                over,
                request.get("agg", "sum"),
                key=key,
                lag=request.get("lag", "downstream"),
                create_sources=True,
            )
            return {
                "name": view.name,
                "sources": view.sources,
                "agg": view.spec.kind.value,
                "key": view.key_field,
                "lag": format_lag(view.lag),
            }

        created = await self._run_view(create, ctx=sctx)
        await self._ship_view_event(
            {
                "kind": "create_view",
                "name": created["name"],
                "over": created["sources"],
                "agg": created["agg"],
                "key": created["key"],
                "lag": created["lag"],
            }
        )
        return wire.ok_reply(created, request)

    async def _op_query_view(self, request, sctx) -> Dict[str, Any]:
        t = _number(request.get("t"), "t")
        names = request.get("views")
        if names is not None:
            if (
                not isinstance(names, list)
                or not names
                or not all(isinstance(n, str) for n in names)
            ):
                raise wire.ProtocolError(
                    "field 'views' must be a non-empty list of view names"
                )
            pin = request.get("pin", True)
            report = await self._run_view(
                self.views.report, names, t, pin=bool(pin), ctx=sctx
            )
            return wire.ok_reply(report, request)
        name = request.get("view")
        if not isinstance(name, str) or not name:
            raise wire.ProtocolError("query_view needs 'view' (or 'views')")
        reading = await self._run_view(
            lambda: self.views.read(name, t, key=request.get("key")).to_json(),
            ctx=sctx,
        )
        return wire.ok_reply(reading, request)

    async def _op_refresh_view(self, request, sctx) -> Dict[str, Any]:
        if self._is_replica:
            raise _NotPrimary(
                "this server is a read replica; send writes to the primary"
            )
        name = request.get("view")
        if name is not None and not isinstance(name, str):
            raise wire.ProtocolError("field 'view' must be a view name")
        refreshed = await self._run_view(self.views.refresh, name, ctx=sctx)
        return wire.ok_reply(
            {"refreshed": refreshed, "events": sum(refreshed.values())},
            request,
        )

    async def _op_drop_view(self, request, sctx) -> Dict[str, Any]:
        if self._is_replica:
            raise _NotPrimary(
                "this server is a read replica; send writes to the primary"
            )
        name = request.get("view")
        if not isinstance(name, str) or not name:
            raise wire.ProtocolError("drop_view needs a 'view' string")
        await self._run_view(self.views.drop_view, name, ctx=sctx)
        await self._ship_view_event({"kind": "drop_view", "view": name})
        return wire.ok_reply({"dropped": name}, request)

    def _view_stats(self) -> Dict[str, Any]:
        stats = self.views.stats()
        record_view_gauges(self.registry, stats)
        return stats

    async def _op_view_stats(self, request, sctx) -> Dict[str, Any]:
        return wire.ok_reply(await self._run(self._view_stats), request)

    async def _op_repair_view(self, request, sctx) -> Dict[str, Any]:
        """Clear a quarantined view and retry its refresh.

        Deliberately node-local (allowed on replicas): quarantine is a
        per-catalog condition, so each node repairs its own copy.  A
        refresh that fails again re-quarantines and surfaces the error
        to the caller.
        """
        name = request.get("view")
        if not isinstance(name, str) or not name:
            raise wire.ProtocolError("repair_view needs a 'view' string")
        result = await self._run_view(self.views.repair, name, ctx=sctx)
        return wire.ok_reply(result, request)

    async def _ship_view_event(self, event: Dict[str, Any]) -> None:
        """Record one catalog mutation in the replication journal.

        View DDL and base-table inserts ride the same commit log as
        fact batches, appended under the flush lock, so a follower's
        backlog snapshot and the live stream see one gap-free sequence
        and a promoted replica holds every view the primary did.  Like
        :meth:`_ship_batch`, the encode is skipped until the first
        subscriber ever appears, and semi-sync mode holds the reply
        until every live follower has applied the event.
        """
        if self._is_replica or self._flush_lock is None:
            return
        assert self._loop is not None
        async with self._flush_lock:
            now = self._loop.time()
            if not self._had_subscriber:
                self._commit_log.skip(now)
                return
            blob = encode_records([{"view_event": event}])
            seq = self._commit_log.append(blob, now)
            self.registry.counter("service.repl.view_events_shipped").inc()
            if self._subscribers:
                msg = self._batch_msg(seq, blob)
                for sub in list(self._subscribers.values()):
                    self._send_subscriber(sub, msg)
        if self.repl_sync and (self._subscribers or self._repl_expected):
            await self._wait_replicated(seq)

    def _check_deadline(self, request, arrival, loop) -> None:
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is None:
            return
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise wire.ProtocolError("field 'deadline_ms' must be a number")
        waited_ms = (loop.time() - arrival) * 1e3
        if waited_ms >= deadline_ms:
            raise _DeadlineExpired(
                f"deadline of {deadline_ms}ms expired after "
                f"{waited_ms:.1f}ms on the server"
            )

    async def _write_op(
        self,
        facts: List[Tuple[Any, Interval]],
        request: Dict[str, Any],
        sctx: Optional[trace.TraceContext],
    ) -> Dict[str, Any]:
        """Apply a mutating request exactly once (per idempotency key)."""
        if self._is_replica:
            raise _NotPrimary(
                "this server is a read replica; send writes to the primary"
            )
        idem = _idem_key(request)
        if idem is not None:
            replay = await self._check_duplicate(idem)
            if replay is not None:
                return wire.ok_reply(replay, request)
        applied = await self._enqueue_write(facts, sctx, idem)
        return wire.ok_reply({"applied": applied}, request)

    async def _check_duplicate(
        self, idem: dedup_mod.IdemKey
    ) -> Optional[Dict[str, Any]]:
        """Resolve a duplicate delivery, or return None for a fresh key.

        A key whose original batch is still in flight *joins* that
        batch's future rather than enqueueing a second apply (the
        chaos proxy duplicates frames faster than a flush completes).
        """
        while True:
            status, stored = self._dedup.lookup(*idem)
            if status == dedup_mod.HIT:
                self._m_dedup_replays.inc()
                result = dict(stored) if isinstance(stored, dict) else {"applied": 0}
                result["duplicate"] = True
                return result
            if status == dedup_mod.STALE:
                # Applied, but the remembered reply has been evicted:
                # still a duplicate, acknowledged without re-applying.
                self._m_dedup_replays.inc()
                self.registry.counter("service.dedup.evicted_replays").inc()
                return {"applied": 0, "duplicate": True, "evicted": True}
            pending = self._dedup_pending.get(idem)
            if pending is None:
                return None
            self.registry.counter("service.dedup.joins").inc()
            try:
                await asyncio.shield(pending)
            except Exception:
                # The original apply failed (its own waiter carries the
                # error); this duplicate re-enters as a fresh write.
                return None
            # The flush records applied keys before resolving futures,
            # so the re-lookup now replays (or, if racing eviction,
            # answers stale).

    def _fact(self, request: Dict[str, Any]) -> Tuple[Any, Interval]:
        value = request.get("value")
        start = _number(request.get("start"), "start")
        end = _number(request.get("end"), "end")
        if value is None:
            raise wire.ProtocolError("insert needs a 'value' field")
        if not start < end:
            raise wire.ProtocolError(f"empty fact interval [{start}, {end})")
        return value, Interval(start, end)

    def _fact_from_triple(self, item: Any) -> Tuple[Any, Interval]:
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise wire.ProtocolError("facts must be [value, start, end] triples")
        value, start, end = item
        return self._fact({"value": value, "start": start, "end": end})

    def _rangeq(self, window: Interval) -> List[List[Any]]:
        table = (
            self.sharded.range_query(window)
            .coalesce(self.sharded.spec.eq)
            .finalized(self.sharded.spec)
        )
        return [[value, iv.start, iv.end] for value, iv in table]

    def _window(self, t, w) -> Any:
        return self.sharded.spec.finalize(self.sharded.window_lookup(t, w))

    def _stats(self) -> Dict[str, Any]:
        health = self.refresh_health()
        ops = {
            name: self.registry.op_summary(name)
            for name in self.registry.op_names()
            if name.startswith("service.")
        }
        snapshot = self.registry.to_dict()
        # Zero-valued counters are pre-bound hot-path handles, not
        # events that happened; the stats view shows only the latter.
        counters = {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith("service.")
            and not name.startswith("service.ops")
            and value
        }
        spans = {
            name[len("span."):-len(".wall_us")]: hist
            for name, hist in snapshot["histograms"].items()
            if name.startswith("span.") and name.endswith(".wall_us")
        }
        batch_size = snapshot["histograms"].get("service.batch.size")
        return {
            "kind": self.sharded.spec.kind.value,
            "shards": self.sharded.stats(),
            "health": health,
            "ops": ops,
            "counters": counters,
            "gauges": snapshot.get("gauges", {}),
            "spans": spans,
            "batch": {
                "max": self.batch_max,
                "delay_s": self.batch_delay,
                "pending": len(self._pending),
                "size": batch_size,
            },
            "resilience": {
                "durable": self._durable,
                "dedup": self._dedup.stats(),
                "inflight": len(self._inflight),
                "inflight_bytes": self._inflight_bytes,
                "limits": {
                    "max_inflight": self.max_inflight,
                    "max_inflight_bytes": self.max_inflight_bytes,
                },
            },
            "replication": self._replication_stats(),
            "views": self._view_stats(),
        }

    # ------------------------------------------------------------------
    # Group commit
    # ------------------------------------------------------------------
    async def _enqueue_write(
        self,
        facts: List[Tuple[Any, Interval]],
        sctx: Optional[trace.TraceContext] = None,
        idem: Optional[dedup_mod.IdemKey] = None,
    ) -> int:
        if self._draining:
            raise _Draining("server is draining; retry against the new instance")
        assert self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        self._pending.append((facts, future, sctx, idem))
        self._pending_facts += len(facts)
        if idem is not None:
            self._dedup_pending[idem] = future
        if self._pending_facts >= self.batch_max:
            if self._flush_handle is not None:
                self._flush_handle.cancel()
                self._flush_handle = None
            self.registry.counter("service.batch.size_flushes").inc()
            await self._flush_batch()
        elif self._flush_handle is None:
            self._flush_handle = self._loop.call_later(
                self.batch_delay, self._deadline_flush
            )
        await future
        return len(facts)

    def _deadline_flush(self) -> None:
        self._flush_handle = None
        if self._pending:
            self.registry.counter("service.batch.deadline_flushes").inc()
            assert self._loop is not None
            self._loop.create_task(self._flush_batch())

    async def _flush_batch(self) -> None:
        # Flushes are serialized: each one snapshots the dedup window
        # into its commit payload, and two interleaved snapshots could
        # otherwise persist each other's keys out of order.
        assert self._flush_lock is not None
        async with self._flush_lock:
            await self._flush_batch_locked()

    async def _flush_batch_locked(self) -> None:
        batch, self._pending = self._pending, []
        self._pending_facts = 0
        if not batch:
            return
        all_facts = [fact for facts, _, _, _ in batch for fact in facts]
        self.registry.counter("service.batch.flushes").inc()
        self.registry.histogram(
            "service.batch.size", bounds=(1, 2, 5, 10, 20, 50, 100, 200, 500)
        ).record(len(all_facts))
        # The batch's own idempotency keys are serialized into the
        # commit payload *before* the apply (dedup-before-ack): after a
        # crash, a key is remembered iff its batch committed.  They are
        # recorded in the in-memory window only after success.
        idem_entries = [
            (idem, {"applied": len(facts)})
            for facts, _, _, idem in batch
            if idem is not None
        ]
        # The commit's replication sequence number is fixed *before* the
        # apply so the durable watermark can ride inside the same commit
        # as the data and dedup pages (one atomic unit per store).
        commit_seq = None if self._is_replica else self._commit_log.head + 1
        meta = None
        if self._durable:
            meta = {}
            payload = self._dedup.encode_with(idem_entries)
            if payload is not None:
                meta[DEDUP_META_KEY] = payload
            if commit_seq is not None:
                meta[REPL_COMMIT_META_KEY] = str(commit_seq)
        # One flush serves several requests; its shard/tree spans are
        # recorded once (trace-agnostically) and replayed under every
        # sampled participant's trace after the apply.
        participants = [sctx for _, _, sctx, _ in batch if sctx is not None]
        collector = (
            trace.SpanCollector() if trace.TRACING and participants else None
        )
        assert self._loop is not None
        started = self._loop.time()
        try:
            await self._run(self._apply_batch, all_facts, meta, collector)
        except _CommitFailed as exc:
            # The batch is applied in memory but its durability commit
            # failed (disk fault): waiters get the error, yet the keys
            # must be remembered -- a retry would otherwise double-apply
            # against the still-running process.  The acked-means-
            # durable contract is downgraded for these keys until the
            # next successful commit persists them.  The batch still
            # ships to followers: its facts are in this primary's
            # memory and will be durable at the next successful commit,
            # so replicas must mirror them or diverge.
            self.registry.counter("service.batch.commit_failures").inc()
            await self._finish_replication(batch, commit_seq)
            self._record_batch(idem_entries, batch)
            self._replay_flush(collector, participants, batch, started)
            self._fail_batch(batch, exc.__cause__ or exc)
        except Exception as exc:
            self._replay_flush(collector, participants, batch, started)
            for _, _, _, idem in batch:
                if idem is not None:
                    self._dedup_pending.pop(idem, None)
            self._fail_batch(batch, exc)
        else:
            if self._durable:
                self.registry.counter("service.batch.commits").inc()
            await self._finish_replication(batch, commit_seq)
            self._record_batch(idem_entries, batch)
            self._replay_flush(collector, participants, batch, started)
            acks: dict = {}
            for facts, waiter, _, _ in batch:
                if isinstance(waiter, _InlineAck):
                    if waiter.future is not None and not waiter.future.done():
                        waiter.future.set_result(True)
                    self._record_inline_insert(waiter)
                    self._ack_frame(
                        waiter,
                        wire.ok_reply(
                            {"applied": len(facts)}, waiter.request
                        ),
                        acks,
                    )
                elif not waiter.done():
                    waiter.set_result(True)
            if acks:
                self._flush_acks(acks)

    def _apply_batch(self, facts, meta, collector) -> int:
        """Executor half of a flush: apply the batch, then commit it."""
        if collector is not None:
            with collector.recording():
                applied = self.sharded.batch_insert(facts)
        else:
            applied = self.sharded.batch_insert(facts)
        if self._durable:
            try:
                self.sharded.commit(meta)
            except Exception as exc:
                raise _CommitFailed(str(exc)) from exc
        return applied

    def _record_batch(self, idem_entries, batch) -> None:
        """Remember the batch's applied keys; unregister their futures."""
        for (client, seq), result in idem_entries:
            self._dedup.record(client, seq, result)
        for _, _, _, idem in batch:
            if idem is not None:
                self._dedup_pending.pop(idem, None)

    def _fail_batch(self, batch, exc: BaseException) -> None:
        acks: dict = {}
        for _, waiter, _, _ in batch:
            future = (
                waiter.future if isinstance(waiter, _InlineAck) else waiter
            )
            if future is not None and not future.done():
                future.set_exception(exc)
        # The exception now belongs to the waiters; if several share
        # it, asyncio would warn about unretrieved futures otherwise.
        # Inline acks additionally get their error reply written (their
        # future, when present, only exists for dedup joiners).
        for _, waiter, _, _ in batch:
            if isinstance(waiter, _InlineAck):
                if waiter.future is not None and waiter.future.done():
                    waiter.future.exception()
                self._m_errors.inc()
                self._record_inline_insert(waiter)
                self._ack_frame(
                    waiter, self._error_reply_for(exc, waiter.request), acks
                )
            elif waiter.done():
                waiter.exception()
        if acks:
            self._flush_acks(acks)

    def _error_reply_for(self, exc: BaseException, request) -> Dict[str, Any]:
        """Map a batch failure to the same reply the slow path sends."""
        if isinstance(exc, _Draining):
            return wire.error_reply(
                wire.ERR_SHUTTING_DOWN, str(exc), request,
                retry_after=self._retry_after(),
            )
        if isinstance(exc, (wire.ProtocolError, ShardingError)):
            return wire.error_reply(wire.ERR_BAD_REQUEST, str(exc), request)
        if isinstance(exc, WindowUnsupportedError):
            return wire.error_reply(wire.ERR_UNSUPPORTED, str(exc), request)
        if isinstance(exc, SimulatedCrash):
            return wire.error_reply(wire.ERR_FAULT, str(exc), request)
        if isinstance(exc, LockTimeout):
            return wire.error_reply(wire.ERR_TIMEOUT, str(exc), request)
        if isinstance(exc, _NotPrimary):
            return wire.error_reply(
                wire.ERR_NOT_PRIMARY, str(exc), request,
                primary=self._primary_hint(),
            )
        return wire.error_reply(
            wire.ERR_SERVER, f"{type(exc).__name__}: {exc}", request
        )

    def _replay_flush(self, collector, participants, batch, started) -> None:
        if collector is None:
            return
        assert self._loop is not None
        wall_us = (self._loop.time() - started) * 1e6
        all_facts = sum(len(facts) for facts, _, _, _ in batch)
        for index, sctx in enumerate(participants):
            flush_ctx = sctx.child()
            trace.emit_span(
                flush_ctx,
                "service.flush",
                wall_us,
                attrs={
                    "facts": all_facts,
                    "requests": len(batch),
                    "shared": index > 0,
                },
            )
            # Durations fold into the registry histograms once, not once
            # per participant sharing the flush.
            collector.replay(flush_ctx, fold=index == 0)

    # ------------------------------------------------------------------
    # Replication: shared plumbing
    # ------------------------------------------------------------------
    def _primary_hint(self) -> Optional[str]:
        """The redirect hint a replica attaches to write rejections."""
        if self._primary_addr is None:
            return None
        return f"{self._primary_addr[0]}:{self._primary_addr[1]}"

    def _tag_watermark(self, reply: Dict[str, Any]) -> None:
        """Stamp a replica read reply with its consistency position."""
        reply["watermark"] = self._applied_commit
        if self._last_stream_mono is None or self._loop is None:
            reply["staleness_s"] = -1.0  # never heard from the primary
        else:
            reply["staleness_s"] = max(
                0.0, self._loop.time() - self._last_stream_mono
            )

    def _replication_stats(self) -> Optional[Dict[str, Any]]:
        """The ``stats`` op's replication section (None when inert)."""
        if self._is_replica:
            staleness = -1.0
            if self._last_stream_mono is not None and self._loop is not None:
                staleness = max(0.0, self._loop.time() - self._last_stream_mono)
            return {
                "role": "replica",
                "primary": self._primary_hint(),
                "applied": self._applied_commit,
                "head": self._stream_head,
                "lag_commits": max(0, self._stream_head - self._applied_commit),
                "staleness_s": staleness,
                "connected": self._repl_connected,
                "last_error": self._repl_last_error,
            }
        if not self._had_subscriber and not self._promoted:
            return None  # standalone primary: no replication to report
        now = self._loop.time() if self._loop is not None else None
        replicas = []
        # list(): stats runs in the executor; the loop may be mutating.
        for sub in list(self._subscribers.values()):
            entry: Dict[str, Any] = {
                "name": sub.name,
                "acked": sub.acked,
                "lag_commits": max(0, self._commit_log.head - sub.acked),
                "connected": not sub.writer.is_closing(),
            }
            shipped = self._commit_log.broadcast_time(sub.acked + 1)
            if shipped is not None and now is not None:
                entry["lag_s"] = max(0.0, now - shipped)
            else:
                entry["lag_s"] = 0.0
            replicas.append(entry)
        return {
            "role": "primary",
            "commit": self._commit_log.head,
            "stream": self._stream_id,
            "sync": self.repl_sync,
            "promoted": self._promoted,
            "replicas": replicas,
        }

    def _refresh_repl_gauges(self) -> None:
        """Publish replication lag as registry gauges (for /metrics)."""
        stats = self._replication_stats()
        if stats is None:
            return
        gauge = self.registry.gauge
        if stats["role"] == "replica":
            gauge("service.repl.applied").set(float(stats["applied"]))
            gauge("service.repl.head").set(float(stats["head"]))
            gauge("service.repl.lag_commits").set(float(stats["lag_commits"]))
            gauge("service.repl.staleness_s").set(stats["staleness_s"])
            gauge("service.repl.connected").set(1.0 if stats["connected"] else 0.0)
            return
        gauge("service.repl.commit").set(float(stats["commit"]))
        gauge("service.repl.replicas").set(float(len(stats["replicas"])))
        for entry in stats["replicas"]:
            name = "".join(
                ch if ch.isalnum() else "_" for ch in entry["name"]
            )
            prefix = f"service.repl.replica.{name}"
            gauge(f"{prefix}.acked").set(float(entry["acked"]))
            gauge(f"{prefix}.lag_commits").set(float(entry["lag_commits"]))
            gauge(f"{prefix}.lag_s").set(float(entry["lag_s"]))

    # ------------------------------------------------------------------
    # Replication: primary side
    # ------------------------------------------------------------------
    async def _subscribe_journal(
        self, request, writer, write_lock, codec: str
    ) -> None:
        """Register a follower and replay its backlog.

        Registration, the backlog snapshot, and the handshake write all
        happen under the flush lock, so no commit can slip between the
        snapshot and the live stream -- the follower sees a gap-free
        sequence.  Stream frames are written directly (one buffered
        ``write`` per batch, no per-frame drain): the semi-sync ack wait
        in the flush path is what bounds the send buffer.
        """
        if self._is_replica:
            await self._send(
                writer, write_lock,
                wire.error_reply(
                    wire.ERR_NOT_PRIMARY,
                    "cannot subscribe to a replica; follow the primary",
                    request, primary=self._primary_hint(),
                ),
                request, codec=codec,
            )
            return
        replica = request.get("replica")
        from_commit = request.get("from_commit", 0)
        if not isinstance(replica, str) or not replica:
            await self._send(
                writer, write_lock,
                wire.error_reply(
                    wire.ERR_BAD_REQUEST,
                    "field 'replica' must be a non-empty string", request,
                ),
                request, codec=codec,
            )
            return
        if (
            isinstance(from_commit, bool)
            or not isinstance(from_commit, int)
            or from_commit < 0
        ):
            await self._send(
                writer, write_lock,
                wire.error_reply(
                    wire.ERR_BAD_REQUEST,
                    "field 'from_commit' must be a non-negative integer",
                    request,
                ),
                request, codec=codec,
            )
            return
        assert self._flush_lock is not None and self._loop is not None
        async with self._flush_lock:
            try:
                backlog = self._commit_log.since(from_commit)
            except ReplicationError as exc:
                await self._send(
                    writer, write_lock,
                    wire.error_reply(wire.ERR_UNSUPPORTED, str(exc), request),
                    request, codec=codec,
                )
                return
            sub = self._subscribers.get(replica)
            if sub is None:
                sub = _Subscriber(replica, writer, codec, from_commit)
                self._subscribers[replica] = sub
            else:
                # A reconnect keeps the acked watermark (it only moves
                # forward); the old connection is dead or stale.
                sub.writer = writer
                sub.codec = codec
                sub.acked = max(sub.acked, from_commit)
            self._had_subscriber = True
            self._repl_expected = True
            handshake = wire.ok_reply(
                {
                    "stream": self._stream_id,
                    "commit": self._commit_log.head,
                    "kind": self.sharded.spec.kind.value,
                    "boundaries": list(self.sharded.router.boundaries),
                    "heartbeat_s": self.repl_heartbeat,
                },
                request,
            )
            frames = [wire.encode_frame(handshake, codec)]
            for seq, blob, _ in backlog:
                frames.append(
                    wire.encode_frame(self._batch_msg(seq, blob), codec)
                )
            writer.write(b"".join(frames))
        self.registry.counter("service.repl.subscribes").inc()
        self._resolve_ack_waiters()
        self._refresh_repl_gauges()
        if self._heartbeat_task is None and self.repl_heartbeat > 0:
            self._heartbeat_task = self._loop.create_task(
                self._heartbeat_loop()
            )
        try:
            await writer.drain()
        except ConnectionError:
            pass

    def _batch_msg(self, seq: int, blob: str) -> Dict[str, Any]:
        return {
            "op": "journal_batch",
            "commit": seq,
            "records": blob,
            "stream": self._stream_id,
        }

    async def _heartbeat_loop(self) -> None:
        """Keep follower links warm: gap detection and ack refresh."""
        try:
            while True:
                await asyncio.sleep(self.repl_heartbeat)
                if not self._subscribers:
                    continue
                msg = {
                    "op": "journal_batch",
                    "commit": self._commit_log.head,
                    "heartbeat": True,
                    "stream": self._stream_id,
                }
                for sub in list(self._subscribers.values()):
                    self._send_subscriber(sub, msg)
        except asyncio.CancelledError:
            pass

    def _send_subscriber(self, sub: _Subscriber, msg: Dict[str, Any]) -> None:
        if sub.writer.is_closing():
            return
        try:
            sub.writer.write(wire.encode_frame(msg, sub.codec))
        except Exception:
            pass  # a dead link is detected by pruning, not here

    async def _finish_replication(self, batch, commit_seq) -> None:
        """Ship one flushed batch and (semi-sync) await follower acks."""
        if commit_seq is None:
            return
        seq = self._ship_batch(batch)
        if seq != commit_seq:  # pragma: no cover - flushes are serialized
            raise RuntimeError(
                f"commit sequence skew: shipped {seq}, persisted {commit_seq}"
            )
        # Wait while a follower is *expected*, not merely while one is
        # connected: during a follower's reconnect after a link fault
        # the subscriber dict can be empty, and acking unreplicated
        # writes in that window is exactly the data loss a failover
        # would then expose.
        if self.repl_sync and (self._subscribers or self._repl_expected):
            await self._wait_replicated(seq)

    def _ship_batch(self, batch) -> int:
        """Record one committed batch in the log; push it to followers.

        Until the first subscriber ever appears the encode is skipped
        entirely (``CommitLog.skip``) -- a standalone primary pays
        nothing for replication being possible.
        """
        assert self._loop is not None
        now = self._loop.time()
        if not self._had_subscriber:
            return self._commit_log.skip(now)
        records = []
        for facts, _, _, idem in batch:
            record: Dict[str, Any] = {
                "facts": [[value, iv.start, iv.end] for value, iv in facts]
            }
            if idem is not None:
                record["idem"] = [idem[0], idem[1], {"applied": len(facts)}]
            records.append(record)
        blob = encode_records(records)
        seq = self._commit_log.append(blob, now)
        self.registry.counter("service.repl.batches_shipped").inc()
        if self._subscribers:
            msg = self._batch_msg(seq, blob)
            for sub in list(self._subscribers.values()):
                self._send_subscriber(sub, msg)
        return seq

    def _acked_floor(self) -> float:
        if not self._subscribers:
            # -inf while a follower is expected back (hold the floor
            # through its reconnect); +inf once degraded or standalone.
            return float("-inf") if self._repl_expected else float("inf")
        return min(sub.acked for sub in self._subscribers.values())

    def _resolve_ack_waiters(self) -> None:
        floor = self._acked_floor()
        pending = []
        for seq, future in self._ack_waiters:
            if future.done():
                continue
            if seq <= floor:
                future.set_result(True)
            else:
                pending.append((seq, future))
        self._ack_waiters = pending

    def _prune_subscribers(self) -> None:
        """Drop followers whose connection is gone; release waiters."""
        for name, sub in list(self._subscribers.items()):
            if sub.writer.is_closing():
                del self._subscribers[name]
                self.registry.counter("service.repl.subscriber_drops").inc()
        self._resolve_ack_waiters()

    async def _wait_replicated(self, seq: int) -> None:
        """Semi-sync commit: hold the ack until every live follower has
        applied this batch, bounded by ``repl_ack_timeout``.  On timeout
        the primary degrades to async (counted) rather than stalling
        writers behind a dead or wedged follower forever."""
        if self._acked_floor() >= seq:
            return
        assert self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        self._ack_waiters.append((seq, future))
        try:
            await asyncio.wait_for(future, timeout=self.repl_ack_timeout)
        except asyncio.TimeoutError:
            self.registry.counter("service.repl.sync_timeouts").inc()
            self._prune_subscribers()
            if not self._subscribers:
                # Every follower is gone and none came back within the
                # ack timeout: degrade to async (release all waiters)
                # until one resubscribes.
                self._repl_expected = False
                self._resolve_ack_waiters()
        finally:
            self._ack_waiters = [
                (s, f) for s, f in self._ack_waiters if f is not future
            ]

    async def _op_journal_ack(self, request, sctx) -> Dict[str, Any]:
        replica = request.get("replica")
        commit = request.get("commit")
        if not isinstance(replica, str) or not replica:
            raise wire.ProtocolError("field 'replica' must be a non-empty string")
        if isinstance(commit, bool) or not isinstance(commit, int) or commit < 0:
            raise wire.ProtocolError("field 'commit' must be a non-negative integer")
        sub = self._subscribers.get(replica)
        if sub is not None:
            sub.acked = max(sub.acked, commit)
            if self._loop is not None:
                sub.last_ack = self._loop.time()
            self._resolve_ack_waiters()
            self._refresh_repl_gauges()
        return wire.ok_reply({}, request)

    # ------------------------------------------------------------------
    # Replication: follower side
    # ------------------------------------------------------------------
    async def _follow_loop(self) -> None:
        """Maintain the subscription to the primary until sealed."""
        assert self._repl_stop is not None
        backoff = 0.05
        while not self._repl_stop.is_set():
            try:
                await self._follow_once()
                backoff = 0.05
            except _StreamReset as exc:
                self.registry.counter("service.repl.resubscribes").inc()
                self._repl_last_error = str(exc)
                backoff = 0.05
            except _StreamRejected as exc:
                # The primary said no (diverged, wrong layout, itself a
                # replica).  Retried slowly: a later promotion over
                # there may make the subscription valid again.
                self.registry.counter("service.repl.rejected").inc()
                self._repl_last_error = str(exc)
                backoff = max(backoff, 1.0)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self.registry.counter("service.repl.disconnects").inc()
                self._repl_last_error = f"{type(exc).__name__}: {exc}"
            if self._repl_stop.is_set():
                break
            try:
                await asyncio.wait_for(
                    self._repl_stop.wait(), timeout=backoff
                )
            except asyncio.TimeoutError:
                pass
            backoff = min(backoff * 2, 1.0)

    async def _follow_once(self) -> None:
        assert self._primary_addr is not None
        host, port = self._primary_addr
        reader, writer = await asyncio.open_connection(host, port)
        self._follow_writer = writer
        try:
            subscribe = {
                "op": "subscribe_journal",
                "from_commit": self._applied_commit,
                "replica": self.replica_name,
            }
            writer.write(wire.encode_frame(subscribe, wire.CODEC_JSON))
            await writer.drain()
            self._repl_connected = True
            self._refresh_repl_gauges()
            await self._consume_stream(reader, writer)
        finally:
            self._repl_connected = False
            self._follow_writer = None
            self._gap_since = None
            try:
                writer.close()
            except Exception:
                pass

    async def _consume_stream(self, reader, writer) -> None:
        """Pump one subscription connection until it dies or is sealed.

        A link that goes quiet for ``_repl_idle`` (several heartbeat
        periods) is torn down and re-established -- the cure for every
        dropped-frame case the chaos proxy can produce, because a fresh
        ``subscribe_journal`` from the applied watermark re-fetches
        whatever was lost.
        """
        assert self._repl_stop is not None
        while not self._repl_stop.is_set():
            try:
                header = await asyncio.wait_for(
                    reader.readexactly(4), timeout=self._repl_idle
                )
                length = wire.decode_length(header)
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=self._repl_idle
                )
            except asyncio.TimeoutError:
                raise _StreamReset("replication stream idle") from None
            except (asyncio.IncompleteReadError, ConnectionError):
                if self._repl_stop.is_set():
                    return
                raise _StreamReset("replication stream closed") from None
            message = wire.decode_body(body)
            if message.get("op") == "journal_batch":
                await self._handle_journal_batch(message, writer)
            elif "ok" in message:
                if message.get("ok"):
                    result = message.get("result")
                    if isinstance(result, dict) and "stream" in result:
                        self._adopt_handshake(result)
                    # else: an ack reply to our journal_ack -- ignored.
                else:
                    error = message.get("error") or {}
                    err_type = error.get("type")
                    detail = f"{err_type}: {error.get('message')}"
                    if err_type in (
                        wire.ERR_NOT_PRIMARY,
                        wire.ERR_UNSUPPORTED,
                        wire.ERR_BAD_REQUEST,
                    ):
                        raise _StreamRejected(detail)
                    raise _StreamReset(detail)
            # Anything else on this connection is not for us; skip it.

    def _adopt_handshake(self, result: Dict[str, Any]) -> None:
        kind = result.get("kind")
        if kind is not None and kind != self.sharded.spec.kind.value:
            raise _StreamRejected(
                f"primary serves kind {kind!r}, this replica holds "
                f"{self.sharded.spec.kind.value!r}"
            )
        boundaries = result.get("boundaries")
        if boundaries is not None and list(boundaries) != list(
            self.sharded.router.boundaries
        ):
            raise _StreamRejected(
                "primary shard boundaries differ from this replica's"
            )
        head = result.get("commit")
        if isinstance(head, bool) or not isinstance(head, int):
            head = self._applied_commit
        if head < self._applied_commit:
            raise _StreamRejected(
                f"primary head {head} is behind this replica's applied "
                f"commit {self._applied_commit} (diverged history; "
                f"re-seed one side)"
            )
        self._stream_id = result.get("stream") or self._stream_id
        self._stream_head = max(self._stream_head, head)
        assert self._loop is not None
        self._last_stream_mono = self._loop.time()
        self._refresh_repl_gauges()

    async def _handle_journal_batch(self, message, writer) -> None:
        commit = message.get("commit")
        if isinstance(commit, bool) or not isinstance(commit, int):
            raise _StreamReset(f"journal_batch with bad commit {commit!r}")
        assert self._loop is not None
        now = self._loop.time()
        self._last_stream_mono = now
        if message.get("heartbeat"):
            self._stream_head = max(self._stream_head, commit)
            if self._stream_head > self._applied_commit:
                # The primary is ahead but no batch frames are arriving:
                # a dropped frame with nothing behind it to expose the
                # gap.  Heartbeats carrying a stuck watermark for longer
                # than the idle window force a resubscribe.
                if self._gap_since is None:
                    self._gap_since = now
                elif now - self._gap_since > self._repl_idle:
                    raise _StreamReset(
                        f"stream stalled at commit {self._applied_commit} "
                        f"with head {self._stream_head}"
                    )
            else:
                self._gap_since = None
            self._send_ack(writer)
            self._refresh_repl_gauges()
            return
        if commit <= self._applied_commit:
            # A duplicate delivery (chaos proxy, resubscribe overlap):
            # already applied, just re-acknowledge.
            self._send_ack(writer)
            return
        if commit != self._applied_commit + 1:
            raise _StreamReset(
                f"stream gap: expected commit {self._applied_commit + 1}, "
                f"got {commit}"
            )
        try:
            records = decode_records(message.get("records"))
        except ReplicationError as exc:
            self.registry.counter("service.repl.corrupt_batches").inc()
            raise _StreamReset(str(exc)) from None
        await self._apply_replica_records(records, commit)
        self._gap_since = None
        self._send_ack(writer)
        self._refresh_repl_gauges()

    async def _apply_replica_records(self, records, commit: int) -> None:
        """Apply one shipped batch with the primary's exact discipline.

        The idempotency keys are serialized into the commit payload
        *before* the apply and recorded in memory after it -- the same
        dedup-before-ack ordering the primary uses -- so after a
        promotion the dedup window is exactly as authoritative as it
        was on the primary at this commit.
        """
        facts = []
        idem_entries = []
        for record in records:
            event = record.get("view_event")
            if event is not None:
                # Catalog mutations ship as their own single-record
                # batches; apply tolerantly (a resubscribe can replay
                # them) and never let one poison the stream.
                try:
                    await self._run(self._apply_view_event, event)
                    self.registry.counter(
                        "service.repl.view_events_applied"
                    ).inc()
                except Exception:
                    self.registry.counter(
                        "service.repl.view_event_failures"
                    ).inc()
                continue
            for triple in record.get("facts", ()):
                value, start, end = triple
                facts.append((value, Interval(start, end)))
            idem = record.get("idem")
            if idem is not None:
                (client, seq, result) = idem
                idem_entries.append(((client, int(seq)), result))
        meta = None
        if self._durable:
            meta = {
                DEDUP_META_KEY: self._dedup.encode_with(idem_entries),
                REPL_COMMIT_META_KEY: str(commit),
            }
        try:
            await self._run(self._apply_batch, facts, meta, None)
        except _CommitFailed:
            # Applied in memory, commit failed: mirror the primary's
            # degraded-durability handling (the next successful commit
            # persists everything up to its watermark).
            self.registry.counter("service.repl.commit_failures").inc()
        for (client, seq), result in idem_entries:
            self._dedup.record(client, seq, result)
        self._applied_commit = commit
        self._stream_head = max(self._stream_head, commit)
        self.registry.counter("service.repl.batches_applied").inc()
        if facts:
            self.registry.counter("service.repl.facts_applied").inc(len(facts))

    def _send_ack(self, writer) -> None:
        """Fire-and-forget cumulative ack on the subscription link."""
        if writer.is_closing():
            return
        ack = {
            "op": "journal_ack",
            "commit": self._applied_commit,
            "replica": self.replica_name,
        }
        try:
            writer.write(wire.encode_frame(ack, wire.CODEC_JSON))
        except Exception:
            pass

    async def _op_promote(self, request, sctx) -> Dict[str, Any]:
        """Seal the stream and turn this replica into a primary.

        The follow loop is *awaited out*, never cancelled mid-apply: a
        batch either fully applied (and is covered by the watermark) or
        never started, so promotion cannot tear a commit.  The promoted
        server starts a fresh commit log based at its applied watermark
        -- its first write becomes commit ``applied + 1`` -- and keeps
        the dedup window the stream delivered, so pre-failover
        idempotency keys still answer ``duplicate: true``.
        """
        assert self._promote_lock is not None
        async with self._promote_lock:
            if not self._is_replica:
                return wire.ok_reply(
                    {
                        "promoted": False,
                        "role": "primary",
                        "commit": self._commit_log.head,
                    },
                    request,
                )
            self._repl_sealed = True
            assert self._repl_stop is not None
            self._repl_stop.set()
            if self._follow_writer is not None:
                try:
                    self._follow_writer.close()
                except Exception:
                    pass
            if self._follow_task is not None:
                try:
                    await asyncio.wait_for(
                        asyncio.shield(self._follow_task),
                        timeout=self.drain_timeout,
                    )
                except asyncio.TimeoutError:
                    self._follow_task.cancel()
                self._follow_task = None
            self._commit_log = CommitLog(
                base=self._applied_commit, cap_bytes=self.repl_log_cap
            )
            self._stream_id = uuid.uuid4().hex
            self._is_replica = False
            self._promoted = True
            self._inline_writes = self._inline_reads
            self.registry.counter("service.repl.promotions").inc()
            self._refresh_repl_gauges()
            return wire.ok_reply(
                {
                    "promoted": True,
                    "role": "primary",
                    "commit": self._applied_commit,
                },
                request,
            )

    # ------------------------------------------------------------------
    async def _run(self, fn, *args, ctx: Optional[trace.TraceContext] = None):
        """Run a blocking tree operation in the service thread pool.

        ``ctx``, when given, is activated as the executor thread's trace
        context for the duration of the call, so spans the operation
        opens become children of the request's server span.
        """
        assert self._loop is not None
        if ctx is not None:
            return await self._loop.run_in_executor(
                self._executor, trace.wrap(ctx, fn, *args)
            )
        return await self._loop.run_in_executor(self._executor, fn, *args)


class ServerHandle:
    """A server running on a background thread (tests, quickcheck, examples).

    ``ServerHandle.start(sharded)`` spins up an event loop thread, binds
    an ephemeral port, and returns once the server accepts connections;
    ``stop()`` drains gracefully and joins the thread.
    """

    def __init__(self, server: TemporalAggregateServer, thread, loop) -> None:
        self.server = server
        self._thread = thread
        self._loop = loop
        self._stopped = threading.Event()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @classmethod
    def start(cls, sharded: ShardedTree, **kwargs) -> "ServerHandle":
        ready = threading.Event()
        box: Dict[str, Any] = {}

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            server = TemporalAggregateServer(sharded, **kwargs)
            stop_event = asyncio.Event()

            async def main() -> None:
                try:
                    await server.start()
                finally:
                    box["server"] = server
                    box["loop"] = loop
                    box["stop_event"] = stop_event
                    ready.set()
                await stop_event.wait()
                await server.stop()

            try:
                loop.run_until_complete(main())
            except Exception as exc:  # surface startup failures to caller
                box.setdefault("error", exc)
                ready.set()
            finally:
                loop.close()

        thread = threading.Thread(target=run, name="repro-service", daemon=True)
        thread.start()
        ready.wait(timeout=10)
        if "error" in box:
            raise box["error"]
        if "server" not in box:
            raise RuntimeError("service thread failed to start")
        handle = cls(box["server"], thread, box["loop"])
        handle._stop_event = box["stop_event"]
        return handle

    def stop(self, timeout: float = 10.0) -> None:
        """Request a graceful drain and wait for the thread to exit."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
