"""The asyncio TCP front end over a :class:`~repro.sharding.ShardedTree`.

Stdlib-only.  One event loop owns all connections; tree operations run
in a small thread pool so shard read locks actually overlap and a slow
(or fault-injected) shard apply delays only the requests waiting on it,
never the loop.  The moving parts:

* **Group commit.**  ``insert``/``batch_insert`` requests do not touch
  the tree directly: their facts join a pending batch, and a flush is
  triggered when the batch reaches ``batch_max`` facts or the oldest
  waiter has aged ``batch_delay`` seconds.  One flush groups every
  fact's pieces per shard and applies them with *one* write-lock
  acquisition per touched shard (:meth:`ShardedTree.batch_insert`), so
  k concurrent writers cost one lock round per shard, not one per
  fact.  Writers are acknowledged only after their whole batch applied.
* **Backpressure.**  Each connection holds a semaphore of
  ``queue_limit`` in-flight requests; when it is exhausted the reader
  coroutine stops reading frames, which propagates to the client
  through TCP flow control -- a bounded per-connection queue with no
  explicit queue object.
* **Structured errors.**  Every failure the server can attribute to a
  request -- unknown op, bad arguments, unsupported window kind, an
  injected fault, a shard lock timeout -- produces an ``{"ok": false,
  "error": {...}}`` reply on the same connection.  Only unframeable
  garbage closes the connection (after a best-effort error frame).
* **Graceful drain.**  ``stop()`` closes the listener, flushes the
  pending write batch, waits for in-flight requests to reply, and only
  then closes connections.
* **Observability.**  Per-op counters and latency histograms land in a
  :class:`~repro.obs.MetricsRegistry` under ``service.<op>.*`` (reusing
  the ``op.*`` record machinery), plus ``service.batch.size`` and flush
  counters; the ``stats`` op serves them to clients.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from .. import obs
from ..concurrent import LockTimeout
from ..core.intervals import Interval
from ..faults import SimulatedCrash
from ..obs import trace
from ..obs.health import record_health, sharded_health
from ..sharding import ShardedTree, ShardingError, WindowUnsupportedError
from . import protocol as wire

__all__ = ["TemporalAggregateServer", "ServerHandle"]


def _number(value: Any, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise wire.ProtocolError(f"field {field!r} must be a number")
    return value


class TemporalAggregateServer:
    """Serve one sharded temporal-aggregate index over TCP."""

    def __init__(
        self,
        sharded: ShardedTree,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_max: int = 64,
        batch_delay: float = 0.002,
        queue_limit: int = 32,
        drain_timeout: float = 5.0,
        health_interval: float = 0.0,
        registry: Optional[obs.MetricsRegistry] = None,
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be at least 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        self.sharded = sharded
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.batch_delay = batch_delay
        self.queue_limit = queue_limit
        self.drain_timeout = drain_timeout
        self.health_interval = health_interval
        self.registry = registry if registry is not None else obs.MetricsRegistry()
        self._executor = executor or ThreadPoolExecutor(
            max_workers=max(4, sharded.num_shards + 2),
            thread_name_prefix="repro-service",
        )
        self._owns_executor = executor is None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._inflight: set = set()
        self._connections: set = set()
        # Group-commit state (only touched from the event loop).  Each
        # entry carries the waiter's trace context (or None) so a flush
        # can replay its spans under every sampled participant.
        self._pending: List[
            Tuple[List[Tuple[Any, Interval]], asyncio.Future, Optional[trace.TraceContext]]
        ] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._health_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the real port."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.health_interval > 0:
            self._health_task = self._loop.create_task(self._health_loop())

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Graceful drain: stop accepting, flush writes, answer in-flight."""
        self._draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        await self._flush_batch()
        if self._inflight:
            await asyncio.wait(
                list(self._inflight), timeout=self.drain_timeout
            )
        for task in list(self._inflight):
            task.cancel()
        for writer in list(self._connections):
            writer.close()
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    async def _health_loop(self) -> None:
        """Periodically publish tree-health gauges to the registry."""
        try:
            while True:
                await asyncio.sleep(self.health_interval)
                try:
                    await self._run(self.refresh_health)
                except Exception:
                    self.registry.counter("service.health.poll_errors").inc()
        except asyncio.CancelledError:
            pass

    def refresh_health(self) -> Dict[str, Any]:
        """Snapshot shard health and record it as registry gauges.

        Blocking (takes each shard's read lock): call from the executor
        or another non-loop thread (the ``/metrics`` endpoint does).
        """
        health = sharded_health(self.sharded)
        record_health(self.registry, health)
        return health

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        slots = asyncio.Semaphore(self.queue_limit)
        write_lock = asyncio.Lock()
        self.registry.counter("service.connections.opened").inc()
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    length = wire.decode_length(header)
                    body = await reader.readexactly(length)
                    request = wire.decode_body(body)
                except wire.ProtocolError as exc:
                    # Unframeable input: answer once, then hang up (the
                    # stream offset can no longer be trusted).
                    await self._send(
                        writer, write_lock,
                        wire.error_reply(wire.ERR_BAD_REQUEST, str(exc)),
                    )
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                await slots.acquire()  # backpressure: stop reading when full
                task = asyncio.ensure_future(
                    self._serve_request(request, writer, write_lock, slots)
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
        finally:
            self._connections.discard(writer)
            self.registry.counter("service.connections.closed").inc()
            try:
                writer.close()
            except Exception:
                pass

    async def _send(
        self, writer, write_lock, reply: Dict[str, Any], request=None
    ) -> None:
        try:
            frame = wire.encode_frame(reply)
        except Exception as exc:
            # An unserializable result must not silently drop the reply
            # (the client would see its request vanish): degrade to a
            # structured server_error on the same connection.
            if request is None:
                return
            self.registry.counter("service.errors").inc()
            frame = wire.encode_frame(
                wire.error_reply(
                    wire.ERR_SERVER,
                    f"reply not serializable: {type(exc).__name__}: {exc}",
                    request,
                )
            )
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(frame)
            try:
                await writer.drain()
            except ConnectionError:
                pass

    async def _serve_request(self, request, writer, write_lock, slots) -> None:
        loop = asyncio.get_running_loop()
        started = loop.time()
        op = request.get("op")
        # The request's trace hop: a child of the client's span,
        # covering the whole server-side dispatch.  Spans inside the
        # executor threads nest under it via trace.wrap; the event loop
        # itself never touches thread-local context (tasks interleave).
        sctx: Optional[trace.TraceContext] = None
        if trace.TRACING:
            ctx_in = trace.TraceContext.from_wire(request.get("trace"))
            if ctx_in is not None:
                sctx = ctx_in.child()
        try:
            reply = await self._dispatch(request, sctx)
        except wire.ProtocolError as exc:
            reply = wire.error_reply(wire.ERR_BAD_REQUEST, str(exc), request)
        except (WindowUnsupportedError,) as exc:
            reply = wire.error_reply(wire.ERR_UNSUPPORTED, str(exc), request)
        except ShardingError as exc:
            reply = wire.error_reply(wire.ERR_BAD_REQUEST, str(exc), request)
        except SimulatedCrash as exc:
            reply = wire.error_reply(wire.ERR_FAULT, str(exc), request)
        except LockTimeout as exc:
            reply = wire.error_reply(wire.ERR_TIMEOUT, str(exc), request)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # never let a request kill the server
            reply = wire.error_reply(
                wire.ERR_SERVER,
                f"{type(exc).__name__}: {exc}",
                request,
                trace_id=sctx.trace_id if sctx is not None else None,
            )
        finally:
            slots.release()
        wall_us = (loop.time() - started) * 1e6
        name = op if isinstance(op, str) and op.isidentifier() else "invalid"
        self.registry.record_op(
            obs.OpRecord(op=f"service.{name}", wall_us=wall_us)
        )
        if not reply.get("ok"):
            self.registry.counter("service.errors").inc()
        if sctx is not None:
            trace.emit_span(
                sctx,
                "server.request",
                wall_us,
                attrs={"op": name, "ok": bool(reply.get("ok"))},
            )
        await self._send(writer, write_lock, reply, request)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        request: Dict[str, Any],
        sctx: Optional[trace.TraceContext] = None,
    ) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return wire.ok_reply("pong", request)
        if op == "insert":
            facts = [self._fact(request)]
            applied = await self._enqueue_write(facts, sctx)
            return wire.ok_reply({"applied": applied}, request)
        if op == "batch_insert":
            raw = request.get("facts")
            if not isinstance(raw, list) or not raw:
                raise wire.ProtocolError("batch_insert needs a non-empty 'facts' list")
            facts = [self._fact_from_triple(item) for item in raw]
            applied = await self._enqueue_write(facts, sctx)
            return wire.ok_reply({"applied": applied}, request)
        if op == "lookup":
            t = _number(request.get("t"), "t")
            value = await self._run(self.sharded.lookup_final, t, ctx=sctx)
            return wire.ok_reply(value, request)
        if op == "rangeq":
            start = _number(request.get("start"), "start")
            end = _number(request.get("end"), "end")
            if not start < end:
                raise wire.ProtocolError(f"empty range [{start}, {end})")
            table = await self._run(self._rangeq, Interval(start, end), ctx=sctx)
            return wire.ok_reply(table, request)
        if op == "window":
            t = _number(request.get("t"), "t")
            w = _number(request.get("w"), "w")
            value = await self._run(self._window, t, w, ctx=sctx)
            return wire.ok_reply(value, request)
        if op == "stats":
            return wire.ok_reply(await self._run(self._stats), request)
        raise_op = repr(op) if op is not None else "missing 'op' field"
        return wire.error_reply(
            wire.ERR_UNKNOWN_OP, f"unknown op {raise_op}", request
        )

    def _fact(self, request: Dict[str, Any]) -> Tuple[Any, Interval]:
        value = request.get("value")
        start = _number(request.get("start"), "start")
        end = _number(request.get("end"), "end")
        if value is None:
            raise wire.ProtocolError("insert needs a 'value' field")
        if not start < end:
            raise wire.ProtocolError(f"empty fact interval [{start}, {end})")
        return value, Interval(start, end)

    def _fact_from_triple(self, item: Any) -> Tuple[Any, Interval]:
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise wire.ProtocolError("facts must be [value, start, end] triples")
        value, start, end = item
        return self._fact({"value": value, "start": start, "end": end})

    def _rangeq(self, window: Interval) -> List[List[Any]]:
        table = (
            self.sharded.range_query(window)
            .coalesce(self.sharded.spec.eq)
            .finalized(self.sharded.spec)
        )
        return [[value, iv.start, iv.end] for value, iv in table]

    def _window(self, t, w) -> Any:
        return self.sharded.spec.finalize(self.sharded.window_lookup(t, w))

    def _stats(self) -> Dict[str, Any]:
        health = self.refresh_health()
        ops = {
            name: self.registry.op_summary(name)
            for name in self.registry.op_names()
            if name.startswith("service.")
        }
        snapshot = self.registry.to_dict()
        counters = {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith("service.") and not name.startswith("service.ops")
        }
        spans = {
            name[len("span."):-len(".wall_us")]: hist
            for name, hist in snapshot["histograms"].items()
            if name.startswith("span.") and name.endswith(".wall_us")
        }
        batch_size = snapshot["histograms"].get("service.batch.size")
        return {
            "kind": self.sharded.spec.kind.value,
            "shards": self.sharded.stats(),
            "health": health,
            "ops": ops,
            "counters": counters,
            "gauges": snapshot.get("gauges", {}),
            "spans": spans,
            "batch": {
                "max": self.batch_max,
                "delay_s": self.batch_delay,
                "pending": len(self._pending),
                "size": batch_size,
            },
        }

    # ------------------------------------------------------------------
    # Group commit
    # ------------------------------------------------------------------
    async def _enqueue_write(
        self,
        facts: List[Tuple[Any, Interval]],
        sctx: Optional[trace.TraceContext] = None,
    ) -> int:
        if self._draining:
            raise ShardingError("server is draining; write rejected")
        assert self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        self._pending.append((facts, future, sctx))
        pending_facts = sum(len(f) for f, _, _ in self._pending)
        if pending_facts >= self.batch_max:
            if self._flush_handle is not None:
                self._flush_handle.cancel()
                self._flush_handle = None
            self.registry.counter("service.batch.size_flushes").inc()
            await self._flush_batch()
        elif self._flush_handle is None:
            self._flush_handle = self._loop.call_later(
                self.batch_delay, self._deadline_flush
            )
        await future
        return len(facts)

    def _deadline_flush(self) -> None:
        self._flush_handle = None
        if self._pending:
            self.registry.counter("service.batch.deadline_flushes").inc()
            assert self._loop is not None
            self._loop.create_task(self._flush_batch())

    async def _flush_batch(self) -> None:
        batch, self._pending = self._pending, []
        if not batch:
            return
        all_facts = [fact for facts, _, _ in batch for fact in facts]
        self.registry.counter("service.batch.flushes").inc()
        self.registry.histogram(
            "service.batch.size", bounds=(1, 2, 5, 10, 20, 50, 100, 200, 500)
        ).record(len(all_facts))
        # One flush serves several requests; its shard/tree spans are
        # recorded once (trace-agnostically) and replayed under every
        # sampled participant's trace after the apply.
        participants = [sctx for _, _, sctx in batch if sctx is not None]
        collector = (
            trace.SpanCollector() if trace.TRACING and participants else None
        )
        assert self._loop is not None
        started = self._loop.time()
        try:
            if collector is not None:
                await self._run(self._apply_recorded, all_facts, collector)
            else:
                await self._run(self.sharded.batch_insert, all_facts)
        except Exception as exc:
            self._replay_flush(collector, participants, batch, started)
            for _, future, _ in batch:
                if not future.done():
                    future.set_exception(exc)
            # The exception now belongs to the waiters; if several share
            # it, asyncio would warn about unretrieved futures otherwise.
            for _, future, _ in batch:
                if future.done():
                    future.exception()
        else:
            self._replay_flush(collector, participants, batch, started)
            for _, future, _ in batch:
                if not future.done():
                    future.set_result(True)

    def _apply_recorded(self, facts, collector) -> int:
        with collector.recording():
            return self.sharded.batch_insert(facts)

    def _replay_flush(self, collector, participants, batch, started) -> None:
        if collector is None:
            return
        assert self._loop is not None
        wall_us = (self._loop.time() - started) * 1e6
        all_facts = sum(len(facts) for facts, _, _ in batch)
        for index, sctx in enumerate(participants):
            flush_ctx = sctx.child()
            trace.emit_span(
                flush_ctx,
                "service.flush",
                wall_us,
                attrs={
                    "facts": all_facts,
                    "requests": len(batch),
                    "shared": index > 0,
                },
            )
            # Durations fold into the registry histograms once, not once
            # per participant sharing the flush.
            collector.replay(flush_ctx, fold=index == 0)

    # ------------------------------------------------------------------
    async def _run(self, fn, *args, ctx: Optional[trace.TraceContext] = None):
        """Run a blocking tree operation in the service thread pool.

        ``ctx``, when given, is activated as the executor thread's trace
        context for the duration of the call, so spans the operation
        opens become children of the request's server span.
        """
        assert self._loop is not None
        if ctx is not None:
            return await self._loop.run_in_executor(
                self._executor, trace.wrap(ctx, fn, *args)
            )
        return await self._loop.run_in_executor(self._executor, fn, *args)


class ServerHandle:
    """A server running on a background thread (tests, quickcheck, examples).

    ``ServerHandle.start(sharded)`` spins up an event loop thread, binds
    an ephemeral port, and returns once the server accepts connections;
    ``stop()`` drains gracefully and joins the thread.
    """

    def __init__(self, server: TemporalAggregateServer, thread, loop) -> None:
        self.server = server
        self._thread = thread
        self._loop = loop
        self._stopped = threading.Event()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @classmethod
    def start(cls, sharded: ShardedTree, **kwargs) -> "ServerHandle":
        ready = threading.Event()
        box: Dict[str, Any] = {}

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            server = TemporalAggregateServer(sharded, **kwargs)
            stop_event = asyncio.Event()

            async def main() -> None:
                try:
                    await server.start()
                finally:
                    box["server"] = server
                    box["loop"] = loop
                    box["stop_event"] = stop_event
                    ready.set()
                await stop_event.wait()
                await server.stop()

            try:
                loop.run_until_complete(main())
            except Exception as exc:  # surface startup failures to caller
                box.setdefault("error", exc)
                ready.set()
            finally:
                loop.close()

        thread = threading.Thread(target=run, name="repro-service", daemon=True)
        thread.start()
        ready.wait(timeout=10)
        if "error" in box:
            raise box["error"]
        if "server" not in box:
            raise RuntimeError("service thread failed to start")
        handle = cls(box["server"], thread, box["loop"])
        handle._stop_event = box["stop_event"]
        return handle

    def stop(self, timeout: float = 10.0) -> None:
        """Request a graceful drain and wait for the thread to exit."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
