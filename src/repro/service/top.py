"""``repro top`` -- a live terminal dashboard over a running service.

Polls the ``stats`` service op on an interval and renders, in place:

* **throughput** -- per-op request rates, differenced between polls
  (the ``stats`` op reports monotonic counts, so one snapshot pair
  gives exact rates with no server-side support);
* **latency** -- per-op p50/p95/p99 from the service histograms (bucket
  interpolation happens server-side in ``Histogram.to_dict``);
* **span breakdown** -- where traced requests spend their time, from
  the ``span.<name>.wall_us`` histograms (only present while tracing
  runs with a registry);
* **views** -- per-view staleness against the declared ``lag`` target,
  pending source events, row counts and refresh totals from the dynamic
  materialized-view catalog (panel appears once a view exists);
* **health** -- the :func:`repro.obs.health.sharded_health` report the
  ``stats`` op refreshes on every call: fact/piece counts, piece skew,
  compaction debt, and one line per shard (height, nodes, fill,
  buffer hit rate).

Rendering is pure (``render_top(stats, prev, dt) -> str``) so tests
drive it with canned snapshots; :func:`run_top` owns the poll loop and
terminal repaint (ANSI home-and-clear when stdout is a TTY).
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional

from .client import ServiceClient

__all__ = ["render_top", "run_top"]


def _rate(curr: int, prev: int, dt: Optional[float]) -> Optional[float]:
    if dt is None or dt <= 0:
        return None
    return max(0, curr - prev) / dt


def _fmt_us(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}s"
    if value >= 1e3:
        return f"{value / 1e3:.2f}ms"
    return f"{value:.0f}us"


def _op_rows(
    stats: Dict[str, Any],
    prev: Optional[Dict[str, Any]],
    dt: Optional[float],
) -> List[str]:
    rows = []
    ops = stats.get("ops", {})
    prev_ops = (prev or {}).get("ops", {})
    for name in sorted(ops):
        summary = ops[name]
        short = name[len("service."):] if name.startswith("service.") else name
        count = summary.get("count", 0)
        rate = _rate(count, prev_ops.get(name, {}).get("count", 0), dt)
        shown_rate = f"{rate:8.1f}/s" if rate is not None else f"{'-':>10}"
        wall = summary.get("wall_us") or {}
        rows.append(
            f"  {short:<14} {count:>8} {shown_rate}"
            f"  p50 {_fmt_us(wall.get('p50')):>8}"
            f"  p95 {_fmt_us(wall.get('p95')):>8}"
            f"  p99 {_fmt_us(wall.get('p99')):>8}"
        )
    return rows


def _span_rows(stats: Dict[str, Any]) -> List[str]:
    spans = stats.get("spans") or {}
    rows = []
    for name in sorted(spans, key=lambda n: -spans[n].get("mean", 0)):
        hist = spans[name]
        rows.append(
            f"  {name:<18} {hist.get('count', 0):>8}"
            f"  mean {_fmt_us(hist.get('mean')):>8}"
            f"  p95 {_fmt_us(hist.get('p95')):>8}"
        )
    return rows


def _replication_rows(stats: Dict[str, Any]) -> List[str]:
    """The replication panel: lag per replica, or this replica's lag.

    Returns no rows for a standalone primary (the server reports no
    replication section until a follower has ever subscribed).
    """
    repl = stats.get("replication")
    if not repl:
        return []
    if repl.get("role") == "replica":
        staleness = repl.get("staleness_s", -1.0)
        shown = (
            f"{staleness:.2f}s" if staleness is not None and staleness >= 0
            else "never"
        )
        return [
            f"  replica of {repl.get('primary', '?')}"
            f"  applied {repl.get('applied', 0)}"
            f"  head {repl.get('head', 0)}"
            f"  lag {repl.get('lag_commits', 0)} commits"
            f"  staleness {shown}"
            f"  {'connected' if repl.get('connected') else 'DISCONNECTED'}"
        ]
    rows = [
        f"  primary at commit {repl.get('commit', 0)}"
        f"  mode {'semi-sync' if repl.get('sync') else 'async'}"
        + ("  (promoted)" if repl.get("promoted") else "")
    ]
    replicas = repl.get("replicas") or []
    if not replicas:
        rows.append("  (no replicas subscribed)")
    for entry in replicas:
        rows.append(
            f"  {entry.get('name', '?'):<22}"
            f" acked {entry.get('acked', 0):>8}"
            f"  lag {entry.get('lag_commits', 0):>4} commits"
            f" / {entry.get('lag_s', 0.0):6.2f}s"
            f"  {'up' if entry.get('connected') else 'DOWN'}"
        )
    return rows


def _view_rows(stats: Dict[str, Any]) -> List[str]:
    """The materialized-view staleness panel: one line per dynamic view.

    Returns no rows while the catalog is empty (most deployments), so
    the panel only appears once someone has created a view.  Staleness
    is the age of the oldest base-table event not yet reflected in the
    view -- the quantity each view's ``lag`` target bounds.
    """
    views = (stats.get("views") or {}).get("views") or {}
    rows = []
    for name in sorted(views):
        entry = views[name]
        staleness = entry.get("staleness_s")
        shown = f"{staleness:7.2f}s" if staleness is not None else f"{'fresh':>8}"
        line = (
            f"  {name:<14} lag {str(entry.get('lag', '?')):<10}"
            f" stale {shown}"
            f"  pending {entry.get('pending', 0):>5}"
            f"  rows {entry.get('rows', 0):>6}"
            f"  refreshes {entry.get('refreshes', 0):>5}"
        )
        if entry.get("quarantined"):
            # Reads still serve the last-good state (degraded); the
            # operator unblocks refresh with `repro view repair`.
            line += "  QUARANTINED"
        rows.append(line)
    return rows


def _health_rows(stats: Dict[str, Any]) -> List[str]:
    health = stats.get("health") or {}
    if not health:
        return ["  (no health data)"]
    rows = [
        f"  facts {health.get('facts', 0)}"
        f"  pieces {health.get('pieces', 0)}"
        f"  piece-skew {health.get('piece_skew', 0.0):.2f}"
        f"  compaction-debt {health.get('compaction_debt', 0.0):.2f}"
    ]
    for shard in health.get("shards", ()):
        line = (
            f"  shard {shard['index']:<2} height {shard.get('height', 0)}"
            f"  nodes {shard.get('nodes', 0):>5}"
            f"  leaf-fill {shard.get('leaf_fill', 0.0):5.0%}"
        )
        if "buffer_hit_rate" in shard:
            line += f"  buf-hit {shard['buffer_hit_rate']:5.0%}"
        if "journal_bytes" in shard:
            line += f"  journal {shard['journal_bytes']}B"
        rows.append(line)
    return rows


def render_top(
    stats: Dict[str, Any],
    prev: Optional[Dict[str, Any]] = None,
    dt: Optional[float] = None,
) -> str:
    """One full dashboard frame from a ``stats`` reply (pure function).

    ``prev``/``dt`` are the previous poll's reply and the seconds
    between the polls; rates show ``-`` on the first frame.
    """
    counters = stats.get("counters", {})
    header = (
        f"repro top -- kind={stats.get('kind', '?')}"
        f" shards={stats.get('shards', {}).get('num_shards', '?')}"
        f" facts={stats.get('shards', {}).get('facts', '?')}"
        f" conns={counters.get('service.connections.opened', 0)}"
        f" errors={counters.get('service.errors', 0)}"
        f" flushes={counters.get('service.batch.flushes', 0)}"
    )
    sections = [header, "", "ops:"]
    sections.extend(_op_rows(stats, prev, dt) or ["  (no requests yet)"])
    span_rows = _span_rows(stats)
    if span_rows:
        sections.append("")
        sections.append("span breakdown (traced requests):")
        sections.extend(span_rows)
    repl_rows = _replication_rows(stats)
    if repl_rows:
        sections.append("")
        sections.append("replication:")
        sections.extend(repl_rows)
    view_rows = _view_rows(stats)
    if view_rows:
        sections.append("")
        sections.append("views (staleness vs lag target):")
        sections.extend(view_rows)
    sections.append("")
    sections.append("shard health:")
    sections.extend(_health_rows(stats))
    return "\n".join(sections)


def run_top(
    host: str,
    port: int,
    *,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    out=None,
    timeout: float = 5.0,
) -> int:
    """Poll a server and repaint the dashboard until interrupted.

    ``iterations`` bounds the number of frames (None = run until ^C);
    returns 0 on a clean exit, 2 if the first poll cannot connect.
    """
    out = out if out is not None else sys.stdout
    clear = getattr(out, "isatty", lambda: False)()
    prev: Optional[Dict[str, Any]] = None
    prev_at: Optional[float] = None
    frame = 0
    try:
        with ServiceClient(host, port, timeout=timeout) as client:
            while iterations is None or frame < iterations:
                try:
                    stats = client.stats()
                except ConnectionError as exc:
                    if prev is None:
                        print(f"error: cannot poll {host}:{port}: {exc}",
                              file=sys.stderr)
                        return 2
                    raise
                now = time.monotonic()
                dt = now - prev_at if prev_at is not None else None
                text = render_top(stats, prev, dt)
                if clear:
                    out.write("\x1b[2J\x1b[H")
                out.write(text + "\n")
                out.flush()
                prev, prev_at = stats, now
                frame += 1
                if iterations is not None and frame >= iterations:
                    break
                time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
