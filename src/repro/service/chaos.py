"""A deterministic, frame-aware network chaos proxy.

The resilience harness (:mod:`repro.rescheck`) does not mock the
network -- it runs real clients against the real server *through* this
proxy, which speaks the service's length-prefixed framing just well
enough to inject faults at frame granularity:

* **drop** -- swallow a frame whole (a lost request or lost reply; the
  client times out and retries).
* **delay** -- hold a frame for a random interval before forwarding
  (reordering across connections, latency spikes).
* **duplicate** -- forward a frame twice (a duplicated request must be
  deduplicated by the server's idempotency window; a duplicated reply
  must be discarded by the client's reply-id matching).
* **truncate** -- forward a prefix of a frame, then kill the
  connection (a mid-frame cut; the receiver sees EOF inside a frame).
* **kill** -- drop the connection outright, both directions (a reset
  between request and reply: the write may or may not have applied,
  which is exactly the ambiguity idempotent retry resolves).

The proxy only parses the 4-byte length prefix, never the frame body,
so it is codec-agnostic: binary and JSON frames (and connections that
interleave both) get identical fault coverage.

Faults are decided per frame by per-connection-per-direction RNGs
derived from one root seed (:func:`repro.faults.derive_rng`), so a
chaos run is reproducible: same seed, same workload, same faults.
Every injected fault is counted in :attr:`ChaosProxy.injected`.

    plan = ChaosPlan(drop=0.02, duplicate=0.05, truncate=0.01)
    with ChaosProxy(server_host, server_port, plan=plan, seed=7) as proxy:
        client = ServiceClient(proxy.host, proxy.port, ...)
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..faults import derive_rng

__all__ = ["ChaosPlan", "ChaosProxy"]

_LEN = struct.Struct(">I")


@dataclass(frozen=True)
class ChaosPlan:
    """Per-frame fault probabilities (independently evaluated)."""

    drop: float = 0.0
    delay: float = 0.0
    #: Uniform delay bounds in seconds when a delay fault fires.
    delay_range: Tuple[float, float] = (0.001, 0.02)
    duplicate: float = 0.0
    truncate: float = 0.0
    kill: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "duplicate", "truncate", "kill"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability {p} outside [0, 1]")
        lo, hi = self.delay_range
        if lo < 0 or hi < lo:
            raise ValueError(f"bad delay_range {self.delay_range}")

    @property
    def active(self) -> bool:
        return any(
            getattr(self, name) > 0
            for name in ("drop", "delay", "duplicate", "truncate", "kill")
        )


class _Conn:
    """One proxied connection: two frame pumps plus shared teardown."""

    def __init__(self, proxy: "ChaosProxy", index: int, downstream) -> None:
        self.proxy = proxy
        self.index = index
        self.downstream = downstream
        self.upstream: Optional[socket.socket] = None
        self._dead = threading.Event()

    def start(self) -> None:
        try:
            self.upstream = socket.create_connection(
                (self.proxy.upstream_host, self.proxy.upstream_port),
                timeout=5.0,
            )
            self.upstream.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            self.kill()
            return
        for direction, src, dst in (
            ("c2s", self.downstream, self.upstream),
            ("s2c", self.upstream, self.downstream),
        ):
            rng = derive_rng(self.proxy.seed, "conn", self.index, direction)
            thread = threading.Thread(
                target=self._pump,
                args=(src, dst, rng),
                name=f"chaos-{self.index}-{direction}",
                daemon=True,
            )
            thread.start()

    def kill(self) -> None:
        self._dead.set()
        for sock in (self.downstream, self.upstream):
            if sock is None:
                continue
            try:
                sock.close()
            except OSError:
                pass

    def _pump(self, src, dst, rng) -> None:
        plan = self.proxy.plan
        try:
            while not self._dead.is_set():
                frame = self._read_frame(src)
                if frame is None:
                    break
                if plan.kill and rng.random() < plan.kill:
                    self.proxy.count("kill")
                    break
                if plan.drop and rng.random() < plan.drop:
                    self.proxy.count("drop")
                    continue
                if plan.delay and rng.random() < plan.delay:
                    self.proxy.count("delay")
                    lo, hi = plan.delay_range
                    time.sleep(lo + (hi - lo) * rng.random())
                if plan.truncate and rng.random() < plan.truncate:
                    self.proxy.count("truncate")
                    cut = rng.randrange(1, max(2, len(frame)))
                    dst.sendall(frame[:cut])
                    break
                dst.sendall(frame)
                if plan.duplicate and rng.random() < plan.duplicate:
                    self.proxy.count("duplicate")
                    dst.sendall(frame)
        except OSError:
            pass
        finally:
            # A frame pump never half-closes: once either direction
            # ends (EOF, fault, error), the whole connection dies --
            # mirroring how a real middlebox failure looks to both ends.
            self.kill()

    @staticmethod
    def _read_frame(src) -> Optional[bytes]:
        header = _recv_exactly(src, _LEN.size)
        if header is None:
            return None
        (length,) = _LEN.unpack(header)
        body = _recv_exactly(src, length)
        if body is None:
            return None
        return header + body


def _recv_exactly(sock, n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""


class ChaosProxy:
    """A TCP proxy injecting frame-level faults between client and server."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        plan: ChaosPlan,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan
        self.seed = seed
        self.host = host
        self.port = port
        self.injected: Dict[str, int] = {}
        self.connections = 0
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: list = []
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in list(self._conns):
            conn.kill()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                break
            downstream.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                index = self.connections
                self.connections += 1
            conn = _Conn(self, index, downstream)
            self._conns.append(conn)
            conn.start()

    def retarget(self, upstream_host: str, upstream_port: int) -> None:
        """Re-point *new* connections at a different upstream.

        Existing proxied connections keep their original upstream until
        they die (they will, when the old server goes away); the
        failover harness retargets the proxy at the promoted primary so
        the client under test keeps one stable address across the
        failover, exactly like a VIP or load-balancer would provide.
        """
        with self._lock:
            self.upstream_host = upstream_host
            self.upstream_port = upstream_port

    # ------------------------------------------------------------------
    def count(self, kind: str) -> None:
        with self._lock:
            self.injected[kind] = self.injected.get(kind, 0) + 1

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ChaosProxy :{self.port} -> "
            f"{self.upstream_host}:{self.upstream_port} "
            f"injected={self.injected}>"
        )
