"""The wire protocol of the temporal-aggregate service.

Stdlib-only framing: every message is a 4-byte big-endian length prefix
followed by a UTF-8 JSON object.  Python's ``json`` module serializes
the package's infinite endpoints as ``Infinity``/``-Infinity`` and
parses them back, so unbounded query windows round-trip without a
special case (both ends of this protocol are this package).

Requests::

    {"op": "ping"}
    {"op": "insert",       "value": 2, "start": 10, "end": 40}
    {"op": "batch_insert", "facts": [[2, 10, 40], [3, 10, 30]]}
    {"op": "lookup",       "t": 19}
    {"op": "rangeq",       "start": 14, "end": 28}
    {"op": "window",       "t": 30, "w": 20}
    {"op": "stats"}

An optional ``"id"`` field is echoed verbatim in the reply, so clients
may pipeline requests over one connection.  An optional ``"trace"``
field -- ``{"id": "<trace_id>", "span": "<span_id>"}``, the wire form
of :class:`repro.obs.trace.TraceContext` -- propagates the client's
trace into the server; servers ignore it when tracing is off and
treat a malformed value as absent.

Three further optional request fields carry the resilience contract:

* ``"client"`` (non-empty string) and ``"seq"`` (positive integer) form
  an *idempotency key* on mutating requests.  The server applies each
  ``(client, seq)`` pair at most once and replays the original reply
  for duplicates, with ``"duplicate": true`` added to the result -- a
  client may therefore blindly retry a write whose reply was lost.
  Sequence numbers must be monotonically increasing per client; keys
  older than the server's dedup window are answered as duplicates with
  ``"applied": 0`` (their original reply has been evicted).
* ``"deadline_ms"`` (non-negative number) is the request's remaining
  time budget in milliseconds, measured from the moment the frame is
  read off the socket.  A server sheds the request with
  ``ERR_DEADLINE`` if it expires before dispatch (e.g. while queued
  behind admission control); a reply to an expired request would be
  wasted work the client has already given up on.

Overload rejections (``ERR_OVERLOADED``) and graceful-drain rejections
(``ERR_SHUTTING_DOWN``) may carry ``"retry_after"`` (seconds) inside
the error object -- a hint for the client's backoff.

Replies::

    {"ok": true,  "result": ...}
    {"ok": false, "error": {"type": "<code>", "message": "..."}}

When a request fails with an unhandled server-side exception the error
``type`` is ``server_error``; with tracing on, the error object also
carries the request's ``trace_id`` so the failure can be joined with
its span records.

``lookup``/``window`` results are finalized scalar values (AVG as a
float quotient, MIN/MAX ``NULL`` as JSON null); ``rangeq`` results are
``[[value, start, end], ...]`` rows of the coalesced, finalized step
function over the requested window.  Error ``type`` is one of the
``ERR_*`` codes below; a server must reply with a structured error --
never drop the connection -- for every request it could frame.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Optional

__all__ = [
    "MAX_FRAME",
    "ProtocolError",
    "FrameTooLarge",
    "encode_frame",
    "decode_body",
    "recv_frame_blocking",
    "error_reply",
    "ok_reply",
    "ERR_BAD_REQUEST",
    "ERR_UNKNOWN_OP",
    "ERR_UNSUPPORTED",
    "ERR_FAULT",
    "ERR_TIMEOUT",
    "ERR_DEADLINE",
    "ERR_OVERLOADED",
    "ERR_SHUTTING_DOWN",
    "ERR_INTERNAL",
    "ERR_SERVER",
]

#: Upper bound on one frame's JSON body; a length prefix beyond this is
#: treated as a framing error (garbage or a hostile peer), not an
#: allocation request.
MAX_FRAME = 8 * 1024 * 1024

_LEN = struct.Struct(">I")

ERR_BAD_REQUEST = "bad_request"
ERR_UNKNOWN_OP = "unknown_op"
ERR_UNSUPPORTED = "unsupported"
ERR_FAULT = "fault_injected"
ERR_TIMEOUT = "timeout"
ERR_DEADLINE = "deadline_exceeded"
ERR_OVERLOADED = "overloaded"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_INTERNAL = "internal"
ERR_SERVER = "server_error"


class ProtocolError(ValueError):
    """A malformed frame or JSON body."""


class FrameTooLarge(ProtocolError):
    """A length prefix exceeding :data:`MAX_FRAME`."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one message to its length-prefixed wire form."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameTooLarge(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(body)) + body


def decode_length(header: bytes) -> int:
    """Parse and bound-check a 4-byte length prefix."""
    (length,) = _LEN.unpack(header)
    # The wire format is unsigned, but callers holding an already-parsed
    # int (tests, proxies) go through the same bound check.
    if length < 0:
        raise ProtocolError(f"negative frame length {length}")
    if length > MAX_FRAME:
        raise FrameTooLarge(f"frame of {length} bytes exceeds {MAX_FRAME}")
    return length


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse a frame body into a message dict."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message


def recv_frame_blocking(sock) -> Optional[Dict[str, Any]]:
    """Read one frame from a blocking socket; None on clean EOF."""
    header = _recv_exactly(sock, _LEN.size)
    if header is None:
        return None
    length = decode_length(header)
    body = _recv_exactly(sock, length)
    return decode_body(body if body is not None else b"")


def _recv_exactly(sock, n: int) -> Optional[bytes]:
    if n == 0:
        return b""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None  # clean EOF on a frame boundary
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def ok_reply(result: Any, request: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build a success reply, echoing the request id if present."""
    reply: Dict[str, Any] = {"ok": True, "result": result}
    if request is not None and "id" in request:
        reply["id"] = request["id"]
    return reply


def error_reply(
    err_type: str,
    message: str,
    request: Optional[Dict[str, Any]] = None,
    *,
    trace_id: Optional[str] = None,
    retry_after: Optional[float] = None,
) -> Dict[str, Any]:
    """Build a structured error reply, echoing the request id if present.

    ``trace_id``, when given, lands inside the error object so a client
    (or an operator grepping the trace file) can join the failure with
    its span records.  ``retry_after`` (seconds) is the backoff hint
    overload and drain rejections carry.
    """
    error: Dict[str, Any] = {"type": err_type, "message": message}
    if trace_id is not None:
        error["trace_id"] = trace_id
    if retry_after is not None:
        error["retry_after"] = retry_after
    reply: Dict[str, Any] = {"ok": False, "error": error}
    if request is not None and "id" in request:
        reply["id"] = request["id"]
    return reply
