"""The wire protocol of the temporal-aggregate service.

Stdlib-only framing: every message is a 4-byte big-endian length prefix
followed by a body in one of two codecs, distinguished by the body's
first byte:

* **JSON** (``codec="json"``, the legacy format and debugging fallback):
  a UTF-8 JSON object.  Python's ``json`` module serializes the
  package's infinite endpoints as ``Infinity``/``-Infinity`` and parses
  them back, so unbounded query windows round-trip without a special
  case (both ends of this protocol are this package).
* **Binary** (``codec="binary"``, protocol version 1): a struct-packed
  typed payload beginning with the magic byte ``0xB1`` -- a byte no
  JSON object body can start with.  Hot operations (``insert``,
  ``batch_insert``, ``lookup``, ``rangeq``, ``window``, ``ping``) and
  their replies have fixed typed layouts; anything else (``stats``
  results, future ops, requests with unusual fields) travels as a
  JSON object wrapped inside a binary envelope, so the binary codec
  carries *every* message the JSON codec can.

Both codecs decode to the **same message dicts**, so server dispatch,
idempotency, deadlines, tracing, and error replies are codec-agnostic;
:func:`decode_body` auto-detects the codec per frame and a server
replies in the codec the request arrived in.

**Version negotiation.**  A connection starts in JSON.  A client that
wants the binary codec sends (as JSON, which every server speaks)::

    {"op": "hello", "id": 1, "codecs": ["binary", "json"]}

and the server answers ``{"ok": true, "result": {"codec": "binary",
"version": 1, "max_frame": ...}}`` with the first offered codec it
supports (or ``"json"`` when none is recognized).  From the client's
next frame on, both directions use the negotiated codec.  Old clients
never send ``hello`` and keep talking JSON; old servers answer it with
``unknown_op``, which a client treats as "JSON only".

Requests::

    {"op": "ping"}
    {"op": "hello",        "codecs": ["binary", "json"]}
    {"op": "insert",       "value": 2, "start": 10, "end": 40}
    {"op": "batch_insert", "facts": [[2, 10, 40], [3, 10, 30]]}
    {"op": "lookup",       "t": 19}
    {"op": "rangeq",       "start": 14, "end": 28}
    {"op": "window",       "t": 30, "w": 20}
    {"op": "stats"}
    {"op": "subscribe_journal", "from_commit": 0, "replica": "r1"}
    {"op": "journal_ack",  "commit": 7, "replica": "r1"}
    {"op": "promote"}
    {"op": "table_insert", "table": "obs", "rows": [[2, 10, 40, {"k": "a"}]]}
    {"op": "create_view",  "name": "by_k", "over": ["obs"], "agg": "sum",
                           "key": "k", "lag": "5s"}
    {"op": "query_view",   "view": "by_k", "t": 19, "key": "a"}
    {"op": "query_view",   "views": ["by_k", "tot"], "t": 19, "pin": true}
    {"op": "refresh_view", "view": "by_k"}
    {"op": "drop_view",    "view": "by_k"}
    {"op": "view_stats"}
    {"op": "repair_view",  "view": "by_k"}

The ``table_insert``/``create_view``/``query_view``/``refresh_view``/
``drop_view``/``view_stats``/``repair_view`` family is the dynamic
materialized-view surface (see ``repro.warehouse.dynamic`` and
DESIGN.md sections 13-14):
named base tables ingest rows (``[value, start, end]`` plus an optional
payload dict, or a bare scalar shorthand for ``{"key": <scalar>}``),
views declare sources/aggregate/grouping-key/freshness-lag over them,
and ``query_view`` answers ``{"value": ..., "watermark": ...,
"staleness_s": ...}`` -- the value, the source sequence number(s) it
reflects, and how far it trails the base data.  The multi-view form
with ``"pin"`` refreshes the views' shared ancestor closure first and
reads them all at one consistent set of base watermarks.  Single-view
``query_view`` requests and their scalar readings have typed binary
layouts; the rest of the family travels JSON-wrapped.  On a primary
with followers, ``table_insert``/``create_view``/``drop_view`` also
ship down the journal stream as ``{"view_event": {"kind": ...}}``
records, so replicas maintain their own catalog copies and serve
``query_view`` locally (stamped with ``watermark``/``staleness_s``
like any replica read); ``repair_view`` is node-local -- it clears a
quarantined view on whichever node receives it.

The last three are the replication surface (see
``repro.service.replication`` and DESIGN.md section 12): a follower
subscribes to the primary's committed-batch stream, the primary pushes
``{"op": "journal_batch", "commit": N, "records": "<base64>"}``
messages down the same connection, and the follower acknowledges each
applied commit.  Replica read replies carry two extra top-level fields,
``"watermark"`` (the replica's applied commit sequence) and
``"staleness_s"`` (seconds since it last heard from the primary; -1.0
when unknown), so a client can enforce a max-staleness bound.  A write
sent to a replica fails with ``ERR_NOT_PRIMARY`` whose error object
may carry a ``"primary": "host:port"`` redirect hint.

An optional ``"id"`` field is echoed verbatim in the reply, so clients
may pipeline requests over one connection and match replies out of
order.  An optional ``"trace"`` field -- ``{"id": "<trace_id>",
"span": "<span_id>"}``, the wire form of
:class:`repro.obs.trace.TraceContext` -- propagates the client's trace
into the server; servers ignore it when tracing is off and treat a
malformed value as absent.

Three further optional request fields carry the resilience contract:

* ``"client"`` (non-empty string) and ``"seq"`` (positive integer) form
  an *idempotency key* on mutating requests.  The server applies each
  ``(client, seq)`` pair at most once and replays the original reply
  for duplicates, with ``"duplicate": true`` added to the result -- a
  client may therefore blindly retry a write whose reply was lost.
  Sequence numbers must be monotonically increasing per client; keys
  older than the server's dedup window are answered as duplicates with
  ``"applied": 0`` (their original reply has been evicted).
* ``"deadline_ms"`` (non-negative number) is the request's remaining
  time budget in milliseconds, measured from the moment the frame is
  read off the socket.  A server sheds the request with
  ``ERR_DEADLINE`` if it expires before dispatch (e.g. while queued
  behind admission control); a reply to an expired request would be
  wasted work the client has already given up on.  A client retrying a
  request re-stamps this field with the *remaining* budget on every
  attempt (backoff sleeps included) and stops retrying at zero.

Overload rejections (``ERR_OVERLOADED``) and graceful-drain rejections
(``ERR_SHUTTING_DOWN``) may carry ``"retry_after"`` (seconds) inside
the error object -- a hint for the client's backoff.

Replies::

    {"ok": true,  "result": ...}
    {"ok": false, "error": {"type": "<code>", "message": "..."}}

When a request fails with an unhandled server-side exception the error
``type`` is ``server_error``; with tracing on, the error object also
carries the request's ``trace_id`` so the failure can be joined with
its span records.

``lookup``/``window`` results are finalized scalar values (AVG as a
float quotient, MIN/MAX ``NULL`` as JSON null); ``rangeq`` results are
``[[value, start, end], ...]`` rows of the coalesced, finalized step
function over the requested window.  Error ``type`` is one of the
``ERR_*`` codes below; a server must reply with a structured error --
never drop the connection -- for every request it could frame.

Binary frame layout (version 1)
-------------------------------

After the 4-byte length prefix, a binary body is::

    u8   magic = 0xB1
    u8   message type
    u8   envelope flags      bit 0: idempotency key (client + seq)
                             bit 1: deadline_ms
                             bit 2: trace context
                             bit 3: request/reply id
                             bit 4: replica watermark (replies)
    [scalar id]              if flag bit 3
    [u16 len + client utf-8, u64 seq]            if flag bit 0
    [f64 deadline_ms]                            if flag bit 1
    [u16 len + trace id, u16 len + span id]      if flag bit 2
    [u64 watermark, f64 staleness_s]             if flag bit 4
    <typed payload per message type>

Scalars are 1-byte-tagged: NULL, I64 (``>q``), F64 (``>d``, NaN/inf
allowed), STR (u32 length + UTF-8), TRUE, FALSE.  Whole-valued f64
*times* are restored to ``int`` on decode (mirroring
``storage/codec.py``) so binary and JSON decodes of the same logical
message compare equal.  All integers are big-endian (network order);
the frame length prefix is shared by both codecs, which keeps
frame-aware middleboxes (the chaos proxy) codec-agnostic.
"""

from __future__ import annotations

import json
import math
import struct
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "MAX_FRAME",
    "CODEC_JSON",
    "CODEC_BINARY",
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "SUPPORTED_CODECS",
    "ProtocolError",
    "FrameTooLarge",
    "ConnectionClosedMidFrame",
    "encode_frame",
    "encode_body",
    "decode_body",
    "codec_of",
    "negotiate",
    "recv_frame_blocking",
    "error_reply",
    "ok_reply",
    "ERR_BAD_REQUEST",
    "ERR_UNKNOWN_OP",
    "ERR_UNSUPPORTED",
    "ERR_FAULT",
    "ERR_TIMEOUT",
    "ERR_DEADLINE",
    "ERR_OVERLOADED",
    "ERR_SHUTTING_DOWN",
    "ERR_NOT_PRIMARY",
    "ERR_INTERNAL",
    "ERR_SERVER",
]

#: Upper bound on one frame's body; a length prefix beyond this is
#: treated as a framing error (garbage or a hostile peer), not an
#: allocation request.
MAX_FRAME = 8 * 1024 * 1024

CODEC_JSON = "json"
CODEC_BINARY = "binary"
#: Codecs this build speaks, in preference order (``negotiate`` picks
#: the first offered codec found here).
SUPPORTED_CODECS = (CODEC_BINARY, CODEC_JSON)

#: First body byte of every binary-codec message.  0xB1 can never begin
#: a JSON object body (those start with ``{`` or whitespace).
BINARY_MAGIC = 0xB1
BINARY_VERSION = 1

_LEN = struct.Struct(">I")
_HDR = struct.Struct(">BB")  # magic, message type
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

# Envelope flag bits.
_FLAG_IDEM = 1
_FLAG_DEADLINE = 2
_FLAG_TRACE = 4
_FLAG_ID = 8
_FLAG_WATERMARK = 16

# Message types: requests.
_T_PING = 0x01
_T_INSERT = 0x02
_T_BATCH_INSERT = 0x03
_T_LOOKUP = 0x04
_T_RANGEQ = 0x05
_T_WINDOW = 0x06
_T_STATS = 0x07
_T_QUERY_VIEW = 0x08
#: Escape hatch: the payload is a JSON request object (odd fields,
#: future ops); the binary envelope is just framing.
_T_REQ_JSON = 0x1F

# Message types: replies.
_T_OK_SCALAR = 0x21
_T_OK_ROWS = 0x22
_T_OK_APPLIED = 0x23
_T_ERR = 0x24
#: A view reading: scalar value + u64 watermark + f64 staleness.
_T_OK_VIEW = 0x25
_T_REPLY_JSON = 0x3F

_REQ_TYPE_FOR_OP = {
    "ping": _T_PING,
    "insert": _T_INSERT,
    "batch_insert": _T_BATCH_INSERT,
    "lookup": _T_LOOKUP,
    "rangeq": _T_RANGEQ,
    "window": _T_WINDOW,
    "stats": _T_STATS,
    "query_view": _T_QUERY_VIEW,
}
_OP_FOR_REQ_TYPE = {t: op for op, t in _REQ_TYPE_FOR_OP.items()}

#: Per-op payload fields (what the typed layouts carry); a request with
#: any other non-envelope field falls back to the JSON-wrapped form so
#: nothing is ever silently dropped.  ``query_view`` here is the
#: single-view form (``key`` always present, ``None`` for ungrouped
#: reads); the multi-view ``views``/``pin`` form JSON-wraps.
_REQ_FIELDS = {
    "ping": frozenset(),
    "stats": frozenset(),
    "insert": frozenset(("value", "start", "end")),
    "batch_insert": frozenset(("facts",)),
    "lookup": frozenset(("t",)),
    "rangeq": frozenset(("start", "end")),
    "window": frozenset(("t", "w")),
    "query_view": frozenset(("view", "t", "key")),
}
_ENVELOPE_FIELDS = frozenset(
    ("op", "id", "client", "seq", "deadline_ms", "trace")
)

# Scalar tags.
_TAG_NULL = 0
_TAG_I64 = 1
_TAG_F64 = 2
_TAG_STR = 3
_TAG_TRUE = 4
_TAG_FALSE = 5

ERR_BAD_REQUEST = "bad_request"
ERR_UNKNOWN_OP = "unknown_op"
ERR_UNSUPPORTED = "unsupported"
ERR_FAULT = "fault_injected"
ERR_TIMEOUT = "timeout"
ERR_DEADLINE = "deadline_exceeded"
ERR_OVERLOADED = "overloaded"
ERR_SHUTTING_DOWN = "shutting_down"
#: A write (or journal subscription) sent to a replica.  The error
#: object may carry ``"primary"`` -- a ``"host:port"`` redirect hint.
ERR_NOT_PRIMARY = "not_primary"
ERR_INTERNAL = "internal"
ERR_SERVER = "server_error"


class ProtocolError(ValueError):
    """A malformed frame or message body (either codec)."""


class FrameTooLarge(ProtocolError):
    """A length prefix (or encoded body) exceeding :data:`MAX_FRAME`."""


class ConnectionClosedMidFrame(ConnectionError):
    """The peer vanished inside a frame: a transport failure, not a
    protocol violation -- retryable, unlike :class:`ProtocolError`."""


def negotiate(offered: Any) -> str:
    """Pick the codec for one connection from a client's offer list.

    Returns the first entry of *offered* this build supports; unknown
    entries are skipped (a newer client may offer codecs we do not
    have).  An empty, exhausted, or malformed offer resolves to JSON --
    the codec every peer speaks.
    """
    if isinstance(offered, (list, tuple)):
        for name in offered:
            if name in SUPPORTED_CODECS:
                return name
    return CODEC_JSON


def codec_of(body: bytes) -> str:
    """The codec of a raw frame body (without decoding it)."""
    if body[:1] == bytes((BINARY_MAGIC,)):
        return CODEC_BINARY
    return CODEC_JSON


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_body(message: Dict[str, Any], codec: str = CODEC_JSON) -> bytes:
    """Serialize one message dict into a frame body in *codec*."""
    if codec == CODEC_BINARY:
        return _encode_binary(message)
    return json.dumps(message, separators=(",", ":")).encode("utf-8")


def encode_frame(message: Dict[str, Any], codec: str = CODEC_JSON) -> bytes:
    """Serialize one message to its length-prefixed wire form."""
    body = encode_body(message, codec)
    if len(body) > MAX_FRAME:
        raise FrameTooLarge(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(body)) + body


def decode_length(header: bytes) -> int:
    """Parse and bound-check a 4-byte length prefix."""
    (length,) = _LEN.unpack(header)
    # The wire format is unsigned, but callers holding an already-parsed
    # int (tests, proxies) go through the same bound check.
    if length < 0:
        raise ProtocolError(f"negative frame length {length}")
    if length > MAX_FRAME:
        raise FrameTooLarge(f"frame of {length} bytes exceeds {MAX_FRAME}")
    return length


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse a frame body into a message dict (codec auto-detected)."""
    if body[:1] == b"\xb1":
        return _decode_binary(body)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message


def recv_frame_blocking(sock) -> Optional[Dict[str, Any]]:
    """Read one frame from a blocking socket; None on clean EOF.

    EOF *inside* a frame -- after the header, or partway through the
    body -- raises :class:`ConnectionClosedMidFrame` (the connection
    died; retryable), never a :class:`ProtocolError` (the peer sent
    garbage; not retryable).
    """
    header = _recv_exactly(sock, _LEN.size)
    if header is None:
        return None
    length = decode_length(header)
    body = _recv_exactly(sock, length)
    if body is None:
        # The peer sent a complete header, then vanished: a transport
        # failure, not a malformed body.
        raise ConnectionClosedMidFrame(
            f"connection closed before the {length}-byte frame body"
        )
    return decode_body(body)


def _recv_exactly(sock, n: int) -> Optional[bytes]:
    if n == 0:
        return b""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None  # clean EOF on a chunk boundary
            raise ConnectionClosedMidFrame("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Reply constructors (codec-agnostic dicts)
# ----------------------------------------------------------------------
def ok_reply(result: Any, request: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build a success reply, echoing the request id if present."""
    reply: Dict[str, Any] = {"ok": True, "result": result}
    if request is not None and "id" in request:
        reply["id"] = request["id"]
    return reply


def error_reply(
    err_type: str,
    message: str,
    request: Optional[Dict[str, Any]] = None,
    *,
    trace_id: Optional[str] = None,
    retry_after: Optional[float] = None,
    primary: Optional[str] = None,
) -> Dict[str, Any]:
    """Build a structured error reply, echoing the request id if present.

    ``trace_id``, when given, lands inside the error object so a client
    (or an operator grepping the trace file) can join the failure with
    its span records.  ``retry_after`` (seconds) is the backoff hint
    overload and drain rejections carry.  ``primary`` is the
    ``"host:port"`` redirect hint a replica attaches to
    :data:`ERR_NOT_PRIMARY` rejections.
    """
    error: Dict[str, Any] = {"type": err_type, "message": message}
    if trace_id is not None:
        error["trace_id"] = trace_id
    if retry_after is not None:
        error["retry_after"] = retry_after
    if primary is not None:
        error["primary"] = primary
    reply: Dict[str, Any] = {"ok": False, "error": error}
    if request is not None and "id" in request:
        reply["id"] = request["id"]
    return reply


# ----------------------------------------------------------------------
# Binary codec: encoding
# ----------------------------------------------------------------------
class _Unpackable(Exception):
    """Internal: this message has no typed layout; use the JSON wrap."""


def _pack_scalar(value: Any, parts: List[bytes]) -> None:
    """Append one tagged scalar; raise _Unpackable for anything else."""
    if value is None:
        parts.append(b"\x00")
    elif value is True:
        parts.append(b"\x04")
    elif value is False:
        parts.append(b"\x05")
    elif isinstance(value, int):
        if -(2**63) <= value < 2**63:
            parts.append(b"\x01" + _I64.pack(value))
        else:  # an int outside i64: JSON carries it exactly
            raise _Unpackable
    elif isinstance(value, float):
        parts.append(b"\x02" + _F64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        if len(raw) >= 2**32:
            raise _Unpackable
        parts.append(b"\x03" + _U32.pack(len(raw)) + raw)
    else:
        raise _Unpackable


def _pack_str16(value: Any, parts: List[bytes]) -> None:
    if not isinstance(value, str):
        raise _Unpackable
    raw = value.encode("utf-8")
    if len(raw) >= 2**16:
        raise _Unpackable
    parts.append(_U16.pack(len(raw)))
    parts.append(raw)


def _pack_time(value: Any, parts: List[bytes]) -> None:
    """A raw f64 time/number field (no tag; ints restored on decode)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _Unpackable
    parts.append(_F64.pack(float(value)))


def _encode_binary(message: Dict[str, Any]) -> bytes:
    """Encode one message dict into a binary body.

    Messages without a typed layout are wrapped as JSON inside a binary
    envelope, so this never refuses anything the JSON codec accepts.
    """
    try:
        if "op" in message:
            return _encode_binary_request(message)
        if "ok" in message:
            return _encode_binary_reply(message)
    except _Unpackable:
        pass
    wrapped = _T_REQ_JSON if "op" in message else _T_REPLY_JSON
    return _HDR.pack(BINARY_MAGIC, wrapped) + json.dumps(
        message, separators=(",", ":")
    ).encode("utf-8")


def _encode_envelope(message: Dict[str, Any], parts: List[bytes]) -> None:
    """Append the flags byte and optional envelope fields."""
    flags = 0
    tail: List[bytes] = []
    if "id" in message:
        flags |= _FLAG_ID
        _pack_scalar(message["id"], tail)
    if "client" in message or "seq" in message:
        client = message.get("client")
        seq = message.get("seq")
        if (
            not isinstance(client, str)
            or isinstance(seq, bool)
            or not isinstance(seq, int)
            or not 0 <= seq < 2**64
        ):
            raise _Unpackable  # let the server-side validation see it as-is
        flags |= _FLAG_IDEM
        _pack_str16(client, tail)
        tail.append(_U64.pack(seq))
    if "deadline_ms" in message:
        deadline = message["deadline_ms"]
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
            raise _Unpackable
        flags |= _FLAG_DEADLINE
        tail.append(_F64.pack(float(deadline)))
    if "trace" in message:
        trace = message["trace"]
        if (
            not isinstance(trace, dict)
            or set(trace) != {"id", "span"}
        ):
            raise _Unpackable
        flags |= _FLAG_TRACE
        _pack_str16(trace["id"], tail)
        _pack_str16(trace["span"], tail)
    if "watermark" in message or "staleness_s" in message:
        watermark = message.get("watermark")
        staleness = message.get("staleness_s")
        if (
            isinstance(watermark, bool)
            or not isinstance(watermark, int)
            or not 0 <= watermark < 2**64
            or isinstance(staleness, bool)
            or not isinstance(staleness, (int, float))
        ):
            raise _Unpackable  # odd shapes travel as JSON, verbatim
        flags |= _FLAG_WATERMARK
        tail.append(_U64.pack(watermark))
        tail.append(_F64.pack(float(staleness)))
    parts.append(bytes((flags,)))
    parts.extend(tail)


def _encode_binary_request(message: Dict[str, Any]) -> bytes:
    op = message.get("op")
    fields = _REQ_FIELDS.get(op)
    if fields is None:
        raise _Unpackable  # unknown op: carry it as JSON, verbatim
    if not set(message) <= (_ENVELOPE_FIELDS | fields):
        raise _Unpackable  # extra fields must not be dropped
    for name in fields:
        if name not in message:
            raise _Unpackable  # missing field: let the server report it
    parts: List[bytes] = [_HDR.pack(BINARY_MAGIC, _REQ_TYPE_FOR_OP[op])]
    _encode_envelope(message, parts)
    if op == "insert":
        _pack_scalar(message["value"], parts)
        _pack_time(message["start"], parts)
        _pack_time(message["end"], parts)
    elif op == "batch_insert":
        facts = message["facts"]
        if not isinstance(facts, list) or len(facts) >= 2**32:
            raise _Unpackable
        parts.append(_U32.pack(len(facts)))
        for item in facts:
            if not isinstance(item, (list, tuple)) or len(item) != 3:
                raise _Unpackable
            value, start, end = item
            _pack_scalar(value, parts)
            _pack_time(start, parts)
            _pack_time(end, parts)
    elif op == "lookup":
        _pack_time(message["t"], parts)
    elif op == "rangeq":
        _pack_time(message["start"], parts)
        _pack_time(message["end"], parts)
    elif op == "window":
        _pack_time(message["t"], parts)
        _pack_time(message["w"], parts)
    elif op == "query_view":
        _pack_str16(message["view"], parts)
        _pack_time(message["t"], parts)
        _pack_scalar(message["key"], parts)
    # ping / stats: no payload
    return b"".join(parts)


def _encode_binary_reply(message: Dict[str, Any]) -> bytes:
    if message.get("ok"):
        if set(message) - {"ok", "result", "id", "watermark", "staleness_s"}:
            raise _Unpackable
        result = message.get("result")
        parts: List[bytes] = []
        if isinstance(result, dict) and set(result) == {
            "value", "watermark", "staleness_s"
        }:
            # A single-source view reading; dict watermarks (multi-source
            # views) and grouped all-keys values JSON-wrap instead.
            watermark = result["watermark"]
            staleness = result["staleness_s"]
            if (
                isinstance(watermark, bool)
                or not isinstance(watermark, int)
                or not 0 <= watermark < 2**64
                or isinstance(staleness, bool)
                or not isinstance(staleness, (int, float))
            ):
                raise _Unpackable
            parts.append(_HDR.pack(BINARY_MAGIC, _T_OK_VIEW))
            _encode_envelope(message, parts)
            _pack_scalar(result["value"], parts)
            parts.append(_U64.pack(watermark))
            parts.append(_F64.pack(float(staleness)))
        elif isinstance(result, dict):
            if (
                not set(result) <= {"applied", "duplicate", "evicted"}
                or isinstance(result.get("applied"), bool)
                or not isinstance(result.get("applied"), int)
                or not 0 <= result["applied"] < 2**32
            ):
                raise _Unpackable
            parts.append(_HDR.pack(BINARY_MAGIC, _T_OK_APPLIED))
            _encode_envelope(message, parts)
            parts.append(_U32.pack(result["applied"]))
            rflags = (1 if result.get("duplicate") is True else 0) | (
                2 if result.get("evicted") is True else 0
            )
            # Flag fields must be exactly True or absent to round-trip.
            if ("duplicate" in result) != bool(rflags & 1):
                raise _Unpackable
            if ("evicted" in result) != bool(rflags & 2):
                raise _Unpackable
            parts.append(bytes((rflags,)))
        elif isinstance(result, list):
            if len(result) >= 2**32:
                raise _Unpackable
            parts.append(_HDR.pack(BINARY_MAGIC, _T_OK_ROWS))
            _encode_envelope(message, parts)
            parts.append(_U32.pack(len(result)))
            for row in result:
                if not isinstance(row, (list, tuple)) or len(row) != 3:
                    raise _Unpackable
                value, start, end = row
                _pack_scalar(value, parts)
                _pack_time(start, parts)
                _pack_time(end, parts)
        else:
            parts.append(_HDR.pack(BINARY_MAGIC, _T_OK_SCALAR))
            _encode_envelope(message, parts)
            _pack_scalar(result, parts)
        return b"".join(parts)
    # Error reply.
    if set(message) - {"ok", "error", "id"}:
        raise _Unpackable
    error = message.get("error")
    if not isinstance(error, dict) or not set(error) <= {
        "type", "message", "trace_id", "retry_after", "primary"
    }:
        raise _Unpackable
    parts = [_HDR.pack(BINARY_MAGIC, _T_ERR)]
    _encode_envelope(message, parts)
    _pack_str16(error.get("type"), parts)
    _pack_str16(error.get("message"), parts)
    eflags = 0
    tail: List[bytes] = []
    if "trace_id" in error:
        eflags |= 1
        _pack_str16(error["trace_id"], tail)
    if "retry_after" in error:
        retry_after = error["retry_after"]
        if isinstance(retry_after, bool) or not isinstance(
            retry_after, (int, float)
        ):
            raise _Unpackable
        eflags |= 2
        tail.append(_F64.pack(float(retry_after)))
    if "primary" in error:
        eflags |= 4
        _pack_str16(error["primary"], tail)
    parts.append(bytes((eflags,)))
    parts.extend(tail)
    return b"".join(parts)


# ----------------------------------------------------------------------
# Binary codec: decoding
# ----------------------------------------------------------------------
def _restore_num(x: float) -> Any:
    """Give whole-valued finite doubles back their int identity."""
    if math.isfinite(x) and x == int(x):
        return int(x)
    return x


class _Reader:
    """Bounds-checked cursor over a binary body."""

    __slots__ = ("buf", "off")

    def __init__(self, buf: bytes, off: int) -> None:
        self.buf = buf
        self.off = off

    def _take(self, fmt: struct.Struct) -> Any:
        try:
            (value,) = fmt.unpack_from(self.buf, self.off)
        except struct.error:
            raise ProtocolError("truncated binary frame") from None
        self.off += fmt.size
        return value

    def u8(self) -> int:
        if self.off >= len(self.buf):
            raise ProtocolError("truncated binary frame")
        value = self.buf[self.off]
        self.off += 1
        return value

    def u16(self) -> int:
        return self._take(_U16)

    def u32(self) -> int:
        return self._take(_U32)

    def u64(self) -> int:
        return self._take(_U64)

    def f64(self) -> float:
        return self._take(_F64)

    def time(self) -> Any:
        return _restore_num(self._take(_F64))

    def raw(self, n: int) -> bytes:
        if self.off + n > len(self.buf):
            raise ProtocolError("truncated binary frame")
        chunk = self.buf[self.off:self.off + n]
        self.off += n
        return chunk

    def str16(self) -> str:
        n = self.u16()
        try:
            return self.raw(n).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"bad utf-8 in binary frame: {exc}") from None

    def scalar(self) -> Any:
        tag = self.u8()
        if tag == _TAG_NULL:
            return None
        if tag == _TAG_I64:
            return self._take(_I64)
        if tag == _TAG_F64:
            return self._take(_F64)
        if tag == _TAG_STR:
            n = self.u32()
            try:
                return self.raw(n).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ProtocolError(
                    f"bad utf-8 in binary frame: {exc}"
                ) from None
        if tag == _TAG_TRUE:
            return True
        if tag == _TAG_FALSE:
            return False
        raise ProtocolError(f"unknown scalar tag {tag}")

    def expect_end(self) -> None:
        if self.off != len(self.buf):
            raise ProtocolError(
                f"{len(self.buf) - self.off} trailing bytes in binary frame"
            )


def _decode_envelope(reader: _Reader, message: Dict[str, Any]) -> None:
    flags = reader.u8()
    if flags & ~(
        _FLAG_IDEM | _FLAG_DEADLINE | _FLAG_TRACE | _FLAG_ID | _FLAG_WATERMARK
    ):
        raise ProtocolError(f"unknown envelope flags 0x{flags:02x}")
    if flags & _FLAG_ID:
        message["id"] = reader.scalar()
    if flags & _FLAG_IDEM:
        message["client"] = reader.str16()
        message["seq"] = reader.u64()
    if flags & _FLAG_DEADLINE:
        message["deadline_ms"] = _restore_num(reader.f64())
    if flags & _FLAG_TRACE:
        message["trace"] = {"id": reader.str16(), "span": reader.str16()}
    if flags & _FLAG_WATERMARK:
        message["watermark"] = reader.u64()
        message["staleness_s"] = reader.f64()


def _decode_binary(body: bytes) -> Dict[str, Any]:
    if len(body) < _HDR.size:
        raise ProtocolError("binary frame shorter than its header")
    mtype = body[1]
    if mtype in (_T_REQ_JSON, _T_REPLY_JSON):
        try:
            message = json.loads(body[_HDR.size:].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"undecodable wrapped body: {exc}") from None
        if not isinstance(message, dict):
            raise ProtocolError("wrapped body must be a JSON object")
        return message
    reader = _Reader(body, _HDR.size)
    op = _OP_FOR_REQ_TYPE.get(mtype)
    if op is not None:
        message: Dict[str, Any] = {"op": op}
        _decode_envelope(reader, message)
        if op == "insert":
            message["value"] = reader.scalar()
            message["start"] = reader.time()
            message["end"] = reader.time()
        elif op == "batch_insert":
            n = reader.u32()
            facts: List[List[Any]] = []
            for _ in range(n):
                value = reader.scalar()
                facts.append([value, reader.time(), reader.time()])
            message["facts"] = facts
        elif op == "lookup":
            message["t"] = reader.time()
        elif op == "rangeq":
            message["start"] = reader.time()
            message["end"] = reader.time()
        elif op == "window":
            message["t"] = reader.time()
            message["w"] = reader.time()
        elif op == "query_view":
            message["view"] = reader.str16()
            message["t"] = reader.time()
            message["key"] = reader.scalar()
        reader.expect_end()
        return message
    if mtype == _T_OK_SCALAR:
        message = {"ok": True}
        _decode_envelope(reader, message)
        message["result"] = reader.scalar()
        reader.expect_end()
        return message
    if mtype == _T_OK_ROWS:
        message = {"ok": True}
        _decode_envelope(reader, message)
        n = reader.u32()
        rows: List[List[Any]] = []
        for _ in range(n):
            value = reader.scalar()
            rows.append([value, reader.time(), reader.time()])
        message["result"] = rows
        reader.expect_end()
        return message
    if mtype == _T_OK_APPLIED:
        message = {"ok": True}
        _decode_envelope(reader, message)
        result: Dict[str, Any] = {"applied": reader.u32()}
        rflags = reader.u8()
        if rflags & ~3:
            raise ProtocolError(f"unknown applied flags 0x{rflags:02x}")
        if rflags & 1:
            result["duplicate"] = True
        if rflags & 2:
            result["evicted"] = True
        message["result"] = result
        reader.expect_end()
        return message
    if mtype == _T_OK_VIEW:
        message = {"ok": True}
        _decode_envelope(reader, message)
        value = reader.scalar()
        message["result"] = {
            "value": value,
            "watermark": reader.u64(),
            "staleness_s": reader.f64(),
        }
        reader.expect_end()
        return message
    if mtype == _T_ERR:
        message = {"ok": False}
        _decode_envelope(reader, message)
        error: Dict[str, Any] = {
            "type": reader.str16(),
            "message": reader.str16(),
        }
        eflags = reader.u8()
        if eflags & ~7:
            raise ProtocolError(f"unknown error flags 0x{eflags:02x}")
        if eflags & 1:
            error["trace_id"] = reader.str16()
        if eflags & 2:
            error["retry_after"] = _restore_num(reader.f64())
        if eflags & 4:
            error["primary"] = reader.str16()
        message["error"] = error
        reader.expect_end()
        return message
    raise ProtocolError(f"unknown binary message type 0x{mtype:02x}")
