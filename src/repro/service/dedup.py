"""Per-client idempotency windows for exactly-once service writes.

Every mutating request may carry an idempotency key ``(client, seq)``
(see :mod:`repro.service.protocol`).  The server records the reply of
each applied key in a :class:`DedupWindow`; a duplicate delivery -- a
blind client retry, a proxy-duplicated frame, a replay after reconnect
-- is answered from the window instead of re-applied, which is what
makes retrying a write whose reply was lost safe for SUM/COUNT/AVG
(the paper's invertible kinds, where a double apply silently corrupts
the aggregate).

The window is bounded two ways: at most ``per_client`` remembered
replies per client (older seqs fall below the client's *floor* and are
answered as evicted duplicates), and at most ``max_clients`` tracked
clients (least-recently-active clients are forgotten entirely).  Both
bounds are safe for the blocking :class:`~repro.service.ServiceClient`,
which keeps one write in flight and only retries its newest seq.

Persistence rides the storage layer's own transaction: the server
serializes the window (:meth:`DedupWindow.encode_with`) into the page
file's header metadata inside the same group-commit that applies the
batch, so the dedup state and the tree data are journaled and rolled
back *atomically* -- after a crash, a key is remembered if and only if
its write is durable.  The serialized form keeps only the newest
``persist_per_client`` entries per client (the header page is one page);
everything older is represented by the floor.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["DedupWindow", "IdemKey"]

IdemKey = Tuple[str, int]

#: Dedup-window lookup outcomes.
MISS = "miss"  #: never seen -- apply it
HIT = "hit"  #: applied, reply remembered -- replay it
STALE = "stale"  #: applied, reply evicted -- acknowledge as duplicate


class _ClientWindow:
    """One client's remembered replies plus its eviction floor."""

    __slots__ = ("entries", "floor")

    def __init__(self) -> None:
        self.entries: "OrderedDict[int, Any]" = OrderedDict()
        self.floor = 0  # highest seq ever evicted from ``entries``

    def trim(self, per_client: int) -> None:
        while len(self.entries) > per_client:
            seq, _ = self.entries.popitem(last=False)
            if seq > self.floor:
                self.floor = seq


class DedupWindow:
    """A bounded map of applied idempotency keys to their replies."""

    def __init__(
        self,
        *,
        per_client: int = 128,
        max_clients: int = 1024,
        persist_per_client: int = 8,
    ) -> None:
        if per_client < 1 or max_clients < 1 or persist_per_client < 1:
            raise ValueError("dedup window bounds must be positive")
        self.per_client = per_client
        self.max_clients = max_clients
        self.persist_per_client = min(persist_per_client, per_client)
        self._clients: "OrderedDict[str, _ClientWindow]" = OrderedDict()

    # ------------------------------------------------------------------
    def lookup(self, client: str, seq: int) -> Tuple[str, Optional[Any]]:
        """Classify a key: ``(MISS|HIT|STALE, remembered_reply_or_None)``."""
        window = self._clients.get(client)
        if window is None:
            return MISS, None
        self._clients.move_to_end(client)
        if seq in window.entries:
            return HIT, window.entries[seq]
        if seq <= window.floor:
            return STALE, None
        return MISS, None

    def record(self, client: str, seq: int, result: Any) -> None:
        """Remember an applied key's reply (evicting per the bounds)."""
        window = self._clients.get(client)
        if window is None:
            window = self._clients[client] = _ClientWindow()
            while len(self._clients) > self.max_clients:
                self._clients.popitem(last=False)
        else:
            self._clients.move_to_end(client)
        window.entries[seq] = result
        window.trim(self.per_client)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_clients(self) -> int:
        return len(self._clients)

    @property
    def num_entries(self) -> int:
        return sum(len(w.entries) for w in self._clients.values())

    def stats(self) -> Dict[str, int]:
        return {"clients": self.num_clients, "entries": self.num_entries}

    # ------------------------------------------------------------------
    # Persistence (rides the pager's journaled header metadata)
    # ------------------------------------------------------------------
    def encode_with(
        self, extra: Iterable[Tuple[IdemKey, Any]] = ()
    ) -> str:
        """Serialize the window plus not-yet-recorded *extra* entries.

        The flush path calls this *before* the batch applies, so the
        payload written inside the commit already covers the batch's own
        keys; they are recorded in memory only after the commit
        succeeds.  Only the newest ``persist_per_client`` entries per
        client are kept verbatim; older ones collapse into the floor.
        """
        merged: Dict[str, Dict[int, Any]] = {}
        floors: Dict[str, int] = {}
        for client, window in self._clients.items():
            merged[client] = dict(window.entries)
            floors[client] = window.floor
        for (client, seq), result in extra:
            merged.setdefault(client, {})[seq] = result
            floors.setdefault(client, 0)
        clients: Dict[str, Any] = {}
        for client, entries in merged.items():
            ordered = sorted(entries.items())
            floor = floors[client]
            if len(ordered) > self.persist_per_client:
                dropped = ordered[: -self.persist_per_client]
                ordered = ordered[-self.persist_per_client:]
                floor = max(floor, dropped[-1][0])
            clients[client] = {
                "floor": floor,
                "entries": [[seq, result] for seq, result in ordered],
            }
        return json.dumps({"v": 1, "clients": clients}, separators=(",", ":"))

    def load(self, payloads: Iterable[Optional[str]]) -> int:
        """Merge persisted payloads (one per shard store) into the window.

        Multiple payloads are merged by keeping every entry and the
        maximum floor per client -- for the single-store case (the
        configuration the resilience harness proves) the merge is exact.
        Malformed payloads are skipped: dedup state is a cache of
        replies, and losing it degrades to at-least-once for evicted
        keys, never to corruption.  Returns the number of entries
        loaded.
        """
        loaded = 0
        for payload in payloads:
            if not payload:
                continue
            try:
                decoded = json.loads(payload)
                clients = decoded["clients"]
            except (ValueError, TypeError, KeyError):
                continue
            if not isinstance(clients, dict):
                continue
            for client, state in clients.items():
                try:
                    floor = int(state.get("floor", 0))
                    entries: List[Any] = list(state.get("entries", []))
                except (TypeError, AttributeError, ValueError):
                    continue
                window = self._clients.get(client)
                if window is None:
                    window = self._clients[client] = _ClientWindow()
                window.floor = max(window.floor, floor)
                for item in entries:
                    if not isinstance(item, list) or len(item) != 2:
                        continue
                    seq, result = item
                    if not isinstance(seq, int) or seq in window.entries:
                        continue
                    window.entries[seq] = result
                    loaded += 1
                window.entries = OrderedDict(sorted(window.entries.items()))
                window.trim(self.per_client)
            while len(self._clients) > self.max_clients:
                self._clients.popitem(last=False)
        return loaded

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DedupWindow clients={self.num_clients} "
            f"entries={self.num_entries}>"
        )
