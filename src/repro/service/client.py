"""A small blocking client for the temporal-aggregate service.

Stdlib sockets, one request in flight per call (request/response), with
per-call timeouts and bounded reconnect-and-retry.  Retries fire only
on *transport* failures (connect refused, timeout, connection reset);
a structured server error is raised once as :class:`ServiceError` and
never retried.  Note the usual caveat: retrying a write whose reply was
lost can apply it twice -- the service's write path is at-least-once
under client retries, which is fine for the benchmark/test workloads
this client serves (each fact is independently generated).

    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", 7071) as svc:
        svc.insert(2, 10, 40)
        svc.lookup(19)                  # -> 2
        svc.rangeq(0, 50)               # -> [(2, Interval(10, 40)), ...]
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.intervals import Interval
from ..obs import trace
from . import protocol as wire

__all__ = ["ServiceClient", "ServiceError", "TransportError"]


class ServiceError(RuntimeError):
    """A structured error reply from the server.

    ``trace_id`` is populated from the error object when the server ran
    the failed request under a trace (``server_error`` replies carry
    it), else None.
    """

    def __init__(
        self, err_type: str, message: str, trace_id: Optional[str] = None
    ) -> None:
        super().__init__(f"[{err_type}] {message}")
        self.type = err_type
        self.message = message
        self.trace_id = trace_id


class TransportError(ConnectionError):
    """Could not complete a request after the configured retries."""


class ServiceClient:
    """Blocking request/response client with timeouts and retries."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7071,
        *,
        timeout: float = 5.0,
        retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self._sock: Optional[socket.socket] = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def _request(self, op: str, **fields: Any) -> Any:
        self._next_id += 1
        message = {"op": op, "id": self._next_id, **fields}
        # The trace root: one client.request span covers the whole call,
        # retries included; the context rides in the frame so the server
        # hangs its spans below ours.  Unsampled requests carry nothing.
        ctx = trace.new_trace()
        if ctx is not None:
            message["trace"] = ctx.to_wire()
        frame = wire.encode_frame(message)
        started = time.perf_counter()
        attempts = 0
        ok = False
        try:
            last_exc: Optional[Exception] = None
            for attempt in range(self.retries + 1):
                attempts = attempt + 1
                if attempt:
                    time.sleep(self.retry_backoff * attempt)
                try:
                    sock = self._connect()
                    sock.sendall(frame)
                    reply = wire.recv_frame_blocking(sock)
                except (OSError, wire.ProtocolError) as exc:
                    self.close()
                    last_exc = exc
                    continue
                if reply is None:  # server hung up cleanly; retry
                    self.close()
                    last_exc = ConnectionError("server closed the connection")
                    continue
                if reply.get("ok"):
                    ok = True
                    return reply.get("result")
                error = reply.get("error") or {}
                raise ServiceError(
                    error.get("type", "unknown"),
                    error.get("message", ""),
                    error.get("trace_id"),
                )
            raise TransportError(
                f"request {op!r} failed after {self.retries + 1} attempts:"
                f" {last_exc}"
            )
        finally:
            if ctx is not None:
                trace.emit_span(
                    ctx,
                    "client.request",
                    (time.perf_counter() - started) * 1e6,
                    attrs={"op": op, "attempts": attempts, "ok": ok},
                )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return self._request("ping") == "pong"

    def insert(self, value: Any, start, end) -> int:
        """Insert one fact; returns once its group commit applied."""
        return self._request("insert", value=value, start=start, end=end)[
            "applied"
        ]

    def batch_insert(self, facts: Iterable[Sequence[Any]]) -> int:
        """Insert ``[value, start, end]`` triples in one request."""
        triples = [list(fact)[:3] for fact in facts]
        return self._request("batch_insert", facts=triples)["applied"]

    def lookup(self, t) -> Any:
        """Finalized aggregate value at instant *t*."""
        return self._request("lookup", t=t)

    def rangeq(self, start, end) -> List[Tuple[Any, Interval]]:
        """Finalized, coalesced step function over ``[start, end)``."""
        rows = self._request("rangeq", start=start, end=end)
        return [(value, Interval(s, e)) for value, s, e in rows]

    def window(self, t, w) -> Any:
        """Cumulative MIN/MAX over the closed window ``[t - w, t]``."""
        return self._request("window", t=t, w=w)

    def stats(self) -> Dict[str, Any]:
        return self._request("stats")

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
