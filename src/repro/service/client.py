"""A pipelined blocking client for the temporal-aggregate service.

Stdlib sockets.  One connection carries **many in-flight requests**: a
background reader thread matches reply frames to waiting callers by
request id, so replies may arrive out of order (and stale or duplicated
replies -- a chaos proxy can manufacture both -- are simply discarded
when no caller is waiting on their id).  The synchronous methods
(:meth:`ServiceClient.insert`, :meth:`~ServiceClient.lookup`, ...) send
one request and wait for its reply; :meth:`ServiceClient.submit` sends
without waiting and returns a :class:`ReplyFuture`, which is how a
caller keeps a deep pipeline of requests in flight.

**Codecs.**  By default (``codec="auto"``) a fresh connection sends a
JSON ``hello`` offering the binary codec; servers that speak it switch
the connection to struct-packed binary frames, old servers answer
``unknown_op`` and the connection stays JSON.  ``codec="binary"``
demands binary (raising :class:`ServiceError` if the server cannot);
``codec="json"`` skips negotiation entirely -- the legacy wire format,
useful against old servers and for debugging with a packet capture.

**Exactly-once writes.**  Every mutating request carries an idempotency
key ``(client, seq)`` (see :mod:`repro.service.protocol`): the server
applies each key at most once and replays the original reply for
duplicates, so retrying a write whose reply was lost is *safe* -- it
can never double-apply a fact, even through a chaos proxy that drops,
duplicates, or truncates frames.  Callers that retry a logical write
across ``_request`` failures themselves (the resilience loadgen does)
must pass the same ``seq`` to every attempt; :meth:`ServiceClient.next_seq`
hands out fresh ones.

**Retries.**  Transport failures (connect refused, timeout, reset,
mid-frame EOF) and the server's explicitly retryable rejections
(``overloaded``, ``shutting_down``) are retried with capped exponential
backoff and deterministic-seedable jitter, honoring the server's
``retry_after`` hint and a per-call *retry budget* -- the total time a
call may spend sleeping between attempts is bounded no matter how many
retries are configured.  Any other structured server error is raised
once as :class:`ServiceError` and never retried.  A request carrying a
``deadline_ms`` budget re-stamps the *remaining* budget on every
attempt (elapsed time and backoff sleeps subtracted) and stops
retrying once it reaches zero -- a retry cannot spend the caller's
budget several times over.

**Circuit breaker.**  After ``circuit_threshold`` consecutive failed
attempts the client stops hammering the server: calls fail fast with
:class:`CircuitOpenError` until ``circuit_cooldown`` elapses, then
exactly one trial request half-opens the circuit (success closes it,
failure re-opens it); concurrent callers keep failing fast while the
trial is in flight.

**Replicas.**  Constructed with ``replicas=["host:port", ...]``, reads
(``lookup``, ``rangeq``, ``window``) round-robin across the replica
set and fall back to the primary when a replica fails or reports
staleness beyond ``max_staleness_s``; every replica-served reply
records the replica's applied-commit watermark on ``last_watermark`` /
``last_staleness_s``.  Writes always go to the primary; a
``not_primary`` rejection (stale routing after a failover) makes the
client adopt the server's redirect hint -- or probe the replica set
for the newly promoted primary -- and retry transparently.

    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", 7071) as svc:
        svc.insert(2, 10, 40)
        svc.lookup(19)                  # -> 2
        svc.rangeq(0, 50)               # -> [(2, Interval(10, 40)), ...]

        futures = [svc.submit("lookup", t=t) for t in range(32)]
        values = [f.result() for f in futures]   # 32 requests, 1 round trip
"""

from __future__ import annotations

import socket
import threading
import time
import uuid
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.intervals import Interval
from ..faults import derive_rng
from ..obs import trace
from . import protocol as wire

__all__ = [
    "ServiceClient",
    "ReplyFuture",
    "ServiceError",
    "TransportError",
    "CircuitOpenError",
]

#: Server rejections that are safe and sensible to retry: the request
#: was not applied (overload shedding happens before the write queue;
#: drain rejections happen before enqueue), and with idempotency keys a
#: lost-reply retry is deduplicated server-side anyway.
RETRYABLE_ERRORS = frozenset({wire.ERR_OVERLOADED, wire.ERR_SHUTTING_DOWN})


class ServiceError(RuntimeError):
    """A structured error reply from the server.

    ``trace_id`` is populated from the error object when the server ran
    the failed request under a trace (``server_error`` replies carry
    it); ``retry_after`` from overload/drain rejections.
    """

    def __init__(
        self,
        err_type: str,
        message: str,
        trace_id: Optional[str] = None,
        retry_after: Optional[float] = None,
        primary: Optional[str] = None,
    ) -> None:
        super().__init__(f"[{err_type}] {message}")
        self.type = err_type
        self.message = message
        self.trace_id = trace_id
        self.retry_after = retry_after
        #: ``"host:port"`` redirect hint from a replica's write rejection.
        self.primary = primary


class TransportError(ConnectionError):
    """Could not complete a request within the retry/budget bounds."""


class CircuitOpenError(TransportError):
    """Failing fast: the client's circuit breaker is open."""


class _Pending:
    """One in-flight request's reply slot (event-based future)."""

    __slots__ = ("_event", "_reply", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reply: Optional[Dict[str, Any]] = None
        self._error: Optional[BaseException] = None

    def complete(self, reply: Dict[str, Any]) -> None:
        self._reply = reply
        self._event.set()

    def fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()

    def wait(self, timeout: Optional[float]) -> Dict[str, Any]:
        if not self._event.wait(timeout):
            raise socket.timeout(f"no reply within {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._reply is not None
        return self._reply


class _Connection:
    """One socket with a background reader matching replies by id.

    The reader thread owns the receive side; senders share the socket
    under ``_send_lock``.  When the connection dies -- EOF, reset, a
    protocol violation from the peer, or :meth:`close` -- it *shatters*:
    every pending request fails with the same error and the connection
    refuses new registrations, so no caller blocks on a reply that can
    never arrive.
    """

    def __init__(self, host: str, port: int, connect_timeout: float) -> None:
        sock = socket.create_connection((host, port), timeout=connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # The reader blocks in recv indefinitely; per-request timeouts
        # live on the waiting side (``_Pending.wait``), not the socket.
        sock.settimeout(None)
        self.sock = sock
        #: Wire codec for frames sent on this connection; replies are
        #: decoded by auto-detection, so flipping this after a ``hello``
        #: is the entire client side of codec negotiation.
        self.codec = wire.CODEC_JSON
        self._send_lock = threading.Lock()
        self._outbox = bytearray()
        self._lock = threading.Lock()
        self._pending: Dict[Any, _Pending] = {}
        self._dead: Optional[BaseException] = None
        self._reader = threading.Thread(
            target=self._read_loop, name="svc-client-reader", daemon=True
        )
        self._reader.start()

    @property
    def alive(self) -> bool:
        return self._dead is None

    def register(self, request_id: Any) -> _Pending:
        pending = _Pending()
        with self._lock:
            if self._dead is not None:
                raise ConnectionError(
                    f"connection already failed: {self._dead}"
                ) from self._dead
            self._pending[request_id] = pending
        return pending

    def forget(self, request_id: Any) -> None:
        with self._lock:
            self._pending.pop(request_id, None)

    def send(self, frame: bytes, flush: bool = True) -> None:
        """Queue one frame; ``flush=False`` corks it for a later burst.

        Corking lets a pipelined caller pay one ``sendall`` system call
        per burst instead of one per request; :meth:`flush` (or the
        next flushing send) pushes the whole outbox at once.
        """
        with self._send_lock:
            self._outbox += frame
            if flush or len(self._outbox) >= 256 * 1024:
                out, self._outbox = self._outbox, bytearray()
                self.sock.sendall(out)

    def flush(self) -> None:
        with self._send_lock:
            if self._outbox:
                out, self._outbox = self._outbox, bytearray()
                self.sock.sendall(out)

    def _read_loop(self) -> None:
        """Reader thread: chunked recv, frame parse, reply matching.

        Reads large chunks into a local buffer instead of two ``recv``
        calls per frame -- under pipelining a whole burst of replies
        often arrives in one segment and costs one system call.
        """
        buf = bytearray()
        recv = self.sock.recv
        try:
            while True:
                chunk = recv(256 * 1024)
                if not chunk:
                    if buf:
                        raise wire.ConnectionClosedMidFrame(
                            "connection closed mid-frame"
                        )
                    raise ConnectionError("server closed the connection")
                buf += chunk
                offset = 0
                buffered = len(buf)
                while buffered - offset >= 4:
                    length = int.from_bytes(buf[offset:offset + 4], "big")
                    if length > wire.MAX_FRAME:
                        raise wire.FrameTooLarge(
                            f"frame of {length} bytes exceeds {wire.MAX_FRAME}"
                        )
                    if buffered - offset - 4 < length:
                        break
                    body = bytes(buf[offset + 4:offset + 4 + length])
                    offset += 4 + length
                    self._dispatch_reply(wire.decode_body(body))
                if offset:
                    del buf[:offset]
        except BaseException as exc:  # noqa: BLE001 -- reaped via shatter
            self._shatter(exc)

    def _dispatch_reply(self, reply: Dict[str, Any]) -> None:
        waiter: Optional[_Pending] = None
        if "id" in reply:
            with self._lock:
                waiter = self._pending.pop(reply["id"], None)
        if waiter is not None:
            waiter.complete(reply)
        # No waiter: a stale or duplicated reply (a chaos proxy can
        # duplicate request frames) -- discard it; matching by id
        # keeps the pipeline synchronized regardless.

    def _shatter(self, exc: BaseException) -> None:
        with self._lock:
            if self._dead is None:
                self._dead = exc
            pending = list(self._pending.values())
            self._pending.clear()
        for waiter in pending:
            waiter.fail(exc)
        try:
            self.sock.close()
        except OSError:
            pass

    def close(self) -> None:
        self._shatter(ConnectionError("client closed the connection"))


class ReplyFuture:
    """Handle to one pipelined request submitted with
    :meth:`ServiceClient.submit`; :meth:`result` blocks for its reply."""

    def __init__(
        self,
        client: "ServiceClient",
        pending: _Pending,
        op: str,
        ctx,
        started: float,
    ) -> None:
        self._client = client
        self._pending = pending
        self._op = op
        self._ctx = ctx
        self._started = started
        self._done = False

    def result(self, timeout: Optional[float] = None) -> Any:
        """The request's result, or the error it failed with.

        Raises :class:`ServiceError` for structured server errors and
        :class:`TransportError` (or the underlying ``OSError``) when
        the connection died before the reply arrived.  No retries: a
        pipelined caller resubmits itself if it wants another attempt
        (writes carry idempotency keys, so resubmission is safe).
        """
        if self._done:
            raise RuntimeError("result() already consumed")
        self._done = True
        ok = False
        try:
            try:
                reply = self._pending.wait(
                    self._client.timeout if timeout is None else timeout
                )
            except socket.timeout:
                # This reply can still arrive and be matched to a new
                # request's id; kill the connection rather than risk it.
                self._client.close()
                self._client._note_failure()
                raise
            except (OSError, wire.ProtocolError):
                self._client._note_failure()
                raise
            if reply.get("ok"):
                ok = True
                self._client._note_success()
                if "watermark" in reply:
                    self._client.last_watermark = reply["watermark"]
                    self._client.last_staleness_s = reply.get("staleness_s")
                return reply.get("result")
            error = reply.get("error") or {}
            err_type = error.get("type", "unknown")
            exc = ServiceError(
                err_type,
                error.get("message", ""),
                error.get("trace_id"),
                error.get("retry_after"),
                error.get("primary"),
            )
            if err_type in RETRYABLE_ERRORS:
                self._client._note_failure()
            else:
                self._client._note_success()  # a definitive answer
            raise exc
        finally:
            if self._ctx is not None:
                trace.emit_span(
                    self._ctx,
                    "client.request",
                    (time.perf_counter() - self._started) * 1e6,
                    attrs={"op": self._op, "attempts": 1, "ok": ok},
                )


class ServiceClient:
    """Blocking pipelined client with timeouts and safe retries."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7071,
        *,
        timeout: float = 5.0,
        retries: int = 2,
        retry_backoff: float = 0.05,
        retry_backoff_max: float = 2.0,
        retry_budget: float = 5.0,
        circuit_threshold: int = 8,
        circuit_cooldown: float = 0.5,
        client_id: Optional[str] = None,
        jitter_seed: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        codec: str = "auto",
        replicas: Optional[Sequence[str]] = None,
        max_staleness_s: Optional[float] = None,
    ) -> None:
        if codec not in ("auto", wire.CODEC_BINARY, wire.CODEC_JSON):
            raise ValueError(f"unknown codec {codec!r}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self.retry_budget = retry_budget
        self.circuit_threshold = circuit_threshold
        self.circuit_cooldown = circuit_cooldown
        #: Idempotency identity: unique per client instance by default.
        self.client_id = client_id or uuid.uuid4().hex[:16]
        #: Deadline budget stamped on every request (ms), or None.
        self.deadline_ms = deadline_ms
        #: Requested codec mode: "auto", "binary" (strict), or "json".
        self.codec = codec
        self._rng = (
            derive_rng(jitter_seed, "client", self.client_id)
            if jitter_seed is not None
            else derive_rng(uuid.uuid4().hex)
        )
        self._conn: Optional[_Connection] = None
        self._id_lock = threading.Lock()
        self._next_id = 0
        self._seq = 0
        self._failures = 0  # consecutive failed attempts
        self._open_until: Optional[float] = None
        self._circuit_lock = threading.Lock()
        self._half_open = False  # a half-open trial request is in flight
        #: Consistency position of the last read served by a replica:
        #: its applied-commit watermark and reported staleness (None
        #: until a watermark-tagged reply arrives).
        self.last_watermark: Optional[int] = None
        self.last_staleness_s: Optional[float] = None
        #: Read fan-out targets ("host:port" strings) and the staleness
        #: bound a replica read must satisfy to be accepted.
        self.max_staleness_s = max_staleness_s
        self._replica_addrs: List[Tuple[str, int]] = []
        for target in replicas or ():
            rhost, _, rport = str(target).rpartition(":")
            try:
                self._replica_addrs.append((rhost, int(rport)))
            except ValueError:
                raise ValueError(
                    f"replica target must be 'host:port', got {target!r}"
                ) from None
        self._replica_clients: List["ServiceClient"] = []
        self._read_rr = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _alloc_id(self) -> int:
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    def _connect(self) -> _Connection:
        conn = self._conn
        if conn is not None and conn.alive:
            return conn
        conn = _Connection(self.host, self.port, self.timeout)
        try:
            if self.codec != wire.CODEC_JSON:
                self._negotiate(conn)
        except BaseException:
            conn.close()
            raise
        self._conn = conn
        return conn

    def _negotiate(self, conn: _Connection) -> None:
        """Send ``hello`` (always JSON) and adopt the server's codec.

        In ``"auto"`` mode a server that rejects ``hello`` -- an old
        build answering ``unknown_op`` or ``bad_request`` -- leaves the
        connection on JSON.  In strict ``"binary"`` mode anything short
        of a binary grant is a :class:`ServiceError`.
        """
        request_id = self._alloc_id()
        message = {
            "op": "hello",
            "id": request_id,
            "codecs": [wire.CODEC_BINARY, wire.CODEC_JSON],
        }
        pending = conn.register(request_id)
        conn.send(wire.encode_frame(message, wire.CODEC_JSON))
        reply = pending.wait(self.timeout)
        if reply.get("ok"):
            granted = (reply.get("result") or {}).get("codec")
            if granted in wire.SUPPORTED_CODECS:
                conn.codec = granted
        elif self.codec == wire.CODEC_BINARY:
            error = reply.get("error") or {}
            raise ServiceError(
                error.get("type", "unknown"),
                f"server rejected codec negotiation: "
                f"{error.get('message', '')}",
            )
        if self.codec == wire.CODEC_BINARY and conn.codec != wire.CODEC_BINARY:
            raise ServiceError(
                wire.ERR_UNSUPPORTED,
                f"server granted codec {conn.codec!r}, binary required",
            )

    @property
    def negotiated_codec(self) -> Optional[str]:
        """The live connection's wire codec, or None when disconnected."""
        conn = self._conn
        return conn.codec if conn is not None and conn.alive else None

    def close(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def close_all(self) -> None:
        """Close the primary connection and every replica sub-client."""
        self.close()
        subs, self._replica_clients = self._replica_clients, []
        for sub in subs:
            sub.close()

    # ------------------------------------------------------------------
    # Retry machinery
    # ------------------------------------------------------------------
    def backoff_delay(
        self,
        attempt: int,
        hint: Optional[float] = None,
        remaining_ms: Optional[float] = None,
    ) -> float:
        """Sleep before retry *attempt* (1-based): capped exponential,
        jittered to [0.5x, 1.0x], floored at the server's ``retry_after``
        hint when one was given.

        The hint wins even when it exceeds ``retry_backoff_max`` -- the
        server knows how long its drain or overload will last, and
        sleeping less just buys another rejection.  What *does* cap the
        hint is ``remaining_ms``, the caller's unspent ``deadline_ms``
        budget: sleeping past the deadline would turn a retryable
        rejection into a guaranteed deadline failure.
        """
        delay = min(
            self.retry_backoff * (2 ** (attempt - 1)), self.retry_backoff_max
        )
        delay *= 0.5 + 0.5 * self._rng.random()
        if hint is not None:
            delay = max(delay, float(hint))
        if remaining_ms is not None:
            delay = min(delay, max(0.0, float(remaining_ms)) / 1e3)
        return delay

    def _check_circuit(self) -> None:
        with self._circuit_lock:
            if self._open_until is None:
                return
            now = time.monotonic()
            if now < self._open_until:
                raise CircuitOpenError(
                    f"circuit open for {self._open_until - now:.2f}s more "
                    f"after {self._failures} consecutive failures"
                )
            # Half-open: admit exactly ONE trial; concurrent submitters
            # keep failing fast until that trial resolves (success
            # closes the circuit, failure re-opens it).  Without the
            # flag, every caller racing the cooldown expiry would be
            # admitted at once -- a thundering herd straight into a
            # server that was overloaded moments ago.
            if self._half_open:
                raise CircuitOpenError(
                    "circuit half-open: a trial request is already in flight"
                )
            self._half_open = True
            self._failures = max(self.circuit_threshold - 1, 0)

    def _note_failure(self) -> None:
        with self._circuit_lock:
            self._half_open = False
            self._failures += 1
            if self._failures >= self.circuit_threshold:
                self._open_until = time.monotonic() + self.circuit_cooldown

    def _note_success(self) -> None:
        with self._circuit_lock:
            self._half_open = False
            self._failures = 0
            self._open_until = None

    @property
    def circuit_open(self) -> bool:
        return (
            self._open_until is not None
            and time.monotonic() < self._open_until
        )

    # ------------------------------------------------------------------
    # Request paths
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Push any corked (``flush=False``) submissions to the socket."""
        conn = self._conn
        if conn is not None and conn.alive:
            try:
                conn.flush()
            except OSError:
                self.close()
                self._note_failure()
                raise

    def submit(self, op: str, flush: bool = True, **fields: Any) -> ReplyFuture:
        """Send one request without waiting; returns a :class:`ReplyFuture`.

        This is the pipelining path: submit many, then collect results.
        With ``flush=False`` the frame is corked in the connection's
        outbox -- call :meth:`flush` after the burst so the whole batch
        leaves in one system call (and do call it: a corked request
        gets no reply until something flushes).  A transport failure
        while sending raises immediately; failures after that surface
        from :meth:`ReplyFuture.result`.  No retry loop -- resubmit on
        failure if desired (safe for writes, which carry idempotency
        keys).
        """
        self._check_circuit()
        message = dict(fields)
        message["op"] = op
        if self.deadline_ms is not None and "deadline_ms" not in message:
            message["deadline_ms"] = self.deadline_ms
        ctx = trace.new_trace()
        if ctx is not None:
            message["trace"] = ctx.to_wire()
        started = time.perf_counter()
        try:
            conn = self._connect()
            request_id = self._alloc_id()
            message["id"] = request_id
            frame = wire.encode_frame(message, conn.codec)
            pending = conn.register(request_id)
            try:
                conn.send(frame, flush)
            except BaseException:
                conn.forget(request_id)
                raise
        except (OSError, wire.ProtocolError):
            self.close()
            self._note_failure()
            raise
        return ReplyFuture(self, pending, op, ctx, started)

    def _request(self, op: str, **fields: Any) -> Any:
        self._check_circuit()
        #: Total deadline budget for the call, retries included; each
        #: attempt is stamped with what *remains* of it.  A non-numeric
        #: budget is passed through verbatim so the server's own
        #: validation rejects it.
        budget = fields.pop("deadline_ms", self.deadline_ms)
        if isinstance(budget, bool) or not isinstance(budget, (int, float)):
            if budget is not None:
                fields["deadline_ms"] = budget
            budget = None
        # The trace root: one client.request span covers the whole call,
        # retries included; the context rides in the frame so the server
        # hangs its spans below ours.  Unsampled requests carry nothing.
        ctx = trace.new_trace()
        started = time.perf_counter()
        attempts = 0
        ok = False
        slept = 0.0
        hint: Optional[float] = None

        def remaining_ms() -> float:
            return float(budget) - (time.perf_counter() - started) * 1e3

        try:
            last_exc: Optional[Exception] = None
            for attempt in range(self.retries + 1):
                attempts = attempt + 1
                if attempt:
                    if budget is not None and remaining_ms() <= 0:
                        # The caller's budget is gone: a retry would
                        # only be shed server-side.  Stop here.
                        break
                    delay = self.backoff_delay(
                        attempt,
                        hint,
                        remaining_ms() if budget is not None else None,
                    )
                    if slept + delay > self.retry_budget:
                        last_exc = last_exc or TransportError("retry budget spent")
                        break
                    slept += delay
                    time.sleep(delay)
                    if budget is not None and remaining_ms() <= 0:
                        break  # the backoff sleep spent the rest of it
                hint = None
                message = {"op": op, **fields}
                if budget is not None:
                    # Attempt 0 carries the full budget (a 0 budget is
                    # still *sent*, so the server sheds it -- that is
                    # the deadline contract's observable behavior).
                    message["deadline_ms"] = max(0.0, remaining_ms())
                if ctx is not None:
                    message["trace"] = ctx.to_wire()
                try:
                    conn = self._connect()
                    message["id"] = self._alloc_id()
                    frame = wire.encode_frame(message, conn.codec)
                    pending = conn.register(message["id"])
                    conn.send(frame)
                    reply = pending.wait(self.timeout)
                except (OSError, wire.ProtocolError) as exc:
                    self.close()
                    last_exc = exc
                    self._note_failure()
                    if self._replica_addrs and attempt < self.retries:
                        # The primary may be gone for good (SIGKILL plus
                        # failover): ask the replicas whether one of
                        # them has been promoted before retrying.
                        self._resolve_primary()
                    continue
                if reply.get("ok"):
                    ok = True
                    self._note_success()
                    if "watermark" in reply:
                        self.last_watermark = reply["watermark"]
                        self.last_staleness_s = reply.get("staleness_s")
                    return reply.get("result")
                error = reply.get("error") or {}
                err_type = error.get("type", "unknown")
                exc = ServiceError(
                    err_type,
                    error.get("message", ""),
                    error.get("trace_id"),
                    error.get("retry_after"),
                    error.get("primary"),
                )
                if err_type == wire.ERR_NOT_PRIMARY:
                    # We wrote to a replica -- stale routing after a
                    # promotion.  Adopt the redirect hint (or probe the
                    # replica set for the new primary) and retry there.
                    self._note_success()  # the server answered; only the role was wrong
                    if attempt < self.retries and self._adopt_primary(
                        exc.primary
                    ):
                        last_exc = exc
                        continue
                    raise exc
                if err_type in RETRYABLE_ERRORS:
                    last_exc = exc
                    hint = exc.retry_after
                    self._note_failure()
                    continue
                # A definitive structured answer: the transport works.
                self._note_success()
                raise exc
            if isinstance(last_exc, ServiceError):
                # Out of retries on a retryable rejection: surface the
                # server's own answer, not a transport wrapper.
                raise last_exc
            raise TransportError(
                f"request {op!r} failed after {attempts} attempts"
                f" ({slept:.2f}s of backoff): {last_exc}"
            )
        finally:
            if ctx is not None:
                trace.emit_span(
                    ctx,
                    "client.request",
                    (time.perf_counter() - started) * 1e6,
                    attrs={"op": op, "attempts": attempts, "ok": ok},
                )

    # ------------------------------------------------------------------
    # Replica-aware routing
    # ------------------------------------------------------------------
    def _replica_client(self, index: int) -> "ServiceClient":
        """The lazily-built sub-client for replica *index*.

        Sub-clients never retry (``retries=0``): the routing layer above
        them already fails over to the next replica or the primary, and
        stacked retry loops would multiply worst-case latency.
        """
        while len(self._replica_clients) <= index:
            rhost, rport = self._replica_addrs[len(self._replica_clients)]
            self._replica_clients.append(
                ServiceClient(
                    rhost,
                    rport,
                    timeout=self.timeout,
                    retries=0,
                    codec=self.codec,
                    client_id=f"{self.client_id}:r{len(self._replica_clients)}",
                )
            )
        return self._replica_clients[index]

    def _adopt_primary(self, hint: Optional[str]) -> bool:
        """Re-point writes at *hint* (``"host:port"``), or probe for one."""
        if hint:
            phost, _, pport = str(hint).rpartition(":")
            try:
                addr = (phost, int(pport))
            except ValueError:
                addr = None
            if addr is not None:
                if addr != (self.host, self.port):
                    self.close()
                    self.host, self.port = addr
                return True
        return self._resolve_primary()

    def _resolve_primary(self) -> bool:
        """Probe the replica set for whichever node now claims primaryhood.

        After a failover the old primary address is dead and no server
        is left to send a redirect hint, so the client asks each known
        replica's ``stats`` for its replication role and adopts the one
        answering ``"primary"``.
        """
        for index in range(len(self._replica_addrs)):
            sub = self._replica_client(index)
            try:
                stats = sub._request("stats")
            except Exception:
                continue
            repl = (stats or {}).get("replication") or {}
            if repl.get("role") == "primary":
                addr = self._replica_addrs[index]
                if addr != (self.host, self.port):
                    self.close()
                    self.host, self.port = addr
                return True
        return False

    def _read_request(self, op: str, **fields: Any) -> Any:
        """Serve one read from the replica set, primary as last resort.

        Round-robins across configured replicas.  A replica that fails,
        or whose reply reports staleness outside ``max_staleness_s``
        (including the -1 "disconnected from primary" sentinel), is
        skipped; when every replica is unusable the read falls back to
        the primary, which is never stale.
        """
        if not self._replica_addrs:
            return self._request(op, **fields)
        count = len(self._replica_addrs)
        start_index = self._read_rr
        self._read_rr = (self._read_rr + 1) % count
        for offset in range(count):
            sub = self._replica_client((start_index + offset) % count)
            try:
                result = sub._request(op, **fields)
            except (TransportError, OSError, ServiceError):
                continue
            self.last_watermark = sub.last_watermark
            self.last_staleness_s = sub.last_staleness_s
            if (
                self.max_staleness_s is not None
                and sub.last_staleness_s is not None
                and not 0 <= sub.last_staleness_s <= self.max_staleness_s
            ):
                continue
            return result
        return self._request(op, **fields)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return self._request("ping") == "pong"

    def next_seq(self) -> int:
        """Allocate the idempotency sequence number for one logical write.

        Callers managing their own retry loops allocate the seq *once*
        and pass it to every attempt of that write.
        """
        self._seq += 1
        return self._seq

    def insert(self, value: Any, start, end, *, seq: Optional[int] = None) -> int:
        """Insert one fact exactly once; returns once its commit applied."""
        return self.insert_result(value, start, end, seq=seq)["applied"]

    def insert_result(
        self, value: Any, start, end, *, seq: Optional[int] = None
    ) -> Dict[str, Any]:
        """Like :meth:`insert`, returning the full result dict.

        The resilience harness reads the ``duplicate`` flag off it to
        count how many acks were served by the server's dedup window.
        """
        return self._request(
            "insert",
            value=value,
            start=start,
            end=end,
            client=self.client_id,
            seq=self.next_seq() if seq is None else seq,
        )

    def submit_insert(
        self,
        value: Any,
        start,
        end,
        *,
        seq: Optional[int] = None,
        flush: bool = True,
    ) -> ReplyFuture:
        """Pipelined :meth:`insert_result`: idempotent, non-blocking."""
        return self.submit(
            "insert",
            flush=flush,
            value=value,
            start=start,
            end=end,
            client=self.client_id,
            seq=self.next_seq() if seq is None else seq,
        )

    def batch_insert(
        self, facts: Iterable[Sequence[Any]], *, seq: Optional[int] = None
    ) -> int:
        """Insert ``[value, start, end]`` triples in one idempotent request."""
        triples = [list(fact)[:3] for fact in facts]
        result = self._request(
            "batch_insert",
            facts=triples,
            client=self.client_id,
            seq=self.next_seq() if seq is None else seq,
        )
        return result["applied"]

    def lookup(self, t) -> Any:
        """Finalized aggregate value at instant *t*."""
        return self._read_request("lookup", t=t)

    def rangeq(self, start, end) -> List[Tuple[Any, Interval]]:
        """Finalized, coalesced step function over ``[start, end)``."""
        rows = self._read_request("rangeq", start=start, end=end)
        return [(value, Interval(s, e)) for value, s, e in rows]

    def window(self, t, w) -> Any:
        """Cumulative MIN/MAX over the closed window ``[t - w, t]``."""
        return self._read_request("window", t=t, w=w)

    def stats(self) -> Dict[str, Any]:
        return self._request("stats")

    # ------------------------------------------------------------------
    # Dynamic views (the create_view/query_view family).  View DDL and
    # base-table inserts go to the primary via _request; the primary
    # ships them down the journal stream, so every replica maintains
    # its own catalog copy and view *reads* route through the replica
    # set like any other read (staleness-gated, primary as fallback).
    # ------------------------------------------------------------------
    def table_insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Ingest rows into a named view base table (auto-created).

        Each row is ``[value, start, end]``, optionally followed by a
        payload dict -- or a bare scalar, shorthand for
        ``{"key": <scalar>}``, the field grouped views key on.
        """
        result = self._request("table_insert", table=table,
                               rows=[list(row) for row in rows])
        return result["applied"]

    def create_view(
        self,
        name: str,
        over,
        agg: str = "sum",
        *,
        key: Optional[str] = None,
        lag: Any = "downstream",
    ) -> Dict[str, Any]:
        """Declare a dynamic view over base tables and/or other views.

        ``lag`` is the freshness target: seconds, a string like ``"5s"``
        or ``"1h"``, or ``"downstream"`` (refresh only when a dependent
        -- or a read -- needs it).  Unknown sources are auto-created as
        base tables.
        """
        return self._request(
            "create_view", name=name, over=over, agg=agg, key=key, lag=lag
        )

    def query_view(self, view: str, t, *, key: Any = None) -> Dict[str, Any]:
        """Read one view at instant *t*.

        Returns ``{"value": ..., "watermark": ..., "staleness_s": ...}``
        -- the reading plus the source watermark(s) it reflects and how
        far it trails the base data.  For a grouped view pass ``key``
        for one group; without it the value is a per-group dict.

        Served from the replica set when one is configured (replicas
        maintain their own catalogs off the journal stream), falling
        back to the primary when every replica is down or too stale.
        """
        return self._read_request("query_view", view=view, t=t, key=key)

    def query_views(
        self, views: Sequence[str], t, *, pin: bool = True
    ) -> Dict[str, Any]:
        """Read several views at *t* in one consistent snapshot.

        With ``pin`` (the default) the server refreshes the views'
        shared ancestor closure first and every reading reflects the
        same base watermarks (returned as ``"base_watermarks"``).
        """
        return self._request("query_view", views=list(views), t=t, pin=pin)

    def refresh_view(self, view: Optional[str] = None) -> Dict[str, Any]:
        """Force a refresh of one view (with its ancestors) or of all."""
        return self._request("refresh_view", view=view)

    def drop_view(self, view: str) -> Dict[str, Any]:
        """Drop a view (refused while other views still consume it)."""
        return self._request("drop_view", view=view)

    def view_stats(self) -> Dict[str, Any]:
        """The catalog's per-view freshness and cost counters."""
        return self._request("view_stats")

    def repair_view(self, view: str) -> Dict[str, Any]:
        """Clear a quarantined view and retry its refresh (node-local)."""
        return self._request("repair_view", view=view)

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close_all()
