"""A small blocking client for the temporal-aggregate service.

Stdlib sockets, one request in flight per call (request/response), with
per-call timeouts and bounded reconnect-and-retry.

**Exactly-once writes.**  Every mutating request carries an idempotency
key ``(client, seq)`` (see :mod:`repro.service.protocol`): the server
applies each key at most once and replays the original reply for
duplicates, so retrying a write whose reply was lost is *safe* -- it
can never double-apply a fact, even through a chaos proxy that drops,
duplicates, or truncates frames.  Callers that retry a logical write
across ``_request`` failures themselves (the resilience loadgen does)
must pass the same ``seq`` to every attempt; :meth:`ServiceClient.next_seq`
hands out fresh ones.

**Retries.**  Transport failures (connect refused, timeout, reset,
mid-frame EOF) and the server's explicitly retryable rejections
(``overloaded``, ``shutting_down``) are retried with capped exponential
backoff and deterministic-seedable jitter, honoring the server's
``retry_after`` hint and a per-call *retry budget* -- the total time a
call may spend sleeping between attempts is bounded no matter how many
retries are configured.  Any other structured server error is raised
once as :class:`ServiceError` and never retried.

**Circuit breaker.**  After ``circuit_threshold`` consecutive failed
attempts the client stops hammering the server: calls fail fast with
:class:`CircuitOpenError` until ``circuit_cooldown`` elapses, then one
trial request half-opens the circuit (success closes it, failure
re-opens it).

    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", 7071) as svc:
        svc.insert(2, 10, 40)
        svc.lookup(19)                  # -> 2
        svc.rangeq(0, 50)               # -> [(2, Interval(10, 40)), ...]
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.intervals import Interval
from ..faults import derive_rng
from ..obs import trace
from . import protocol as wire

__all__ = [
    "ServiceClient",
    "ServiceError",
    "TransportError",
    "CircuitOpenError",
]

#: Server rejections that are safe and sensible to retry: the request
#: was not applied (overload shedding happens before the write queue;
#: drain rejections happen before enqueue), and with idempotency keys a
#: lost-reply retry is deduplicated server-side anyway.
RETRYABLE_ERRORS = frozenset({wire.ERR_OVERLOADED, wire.ERR_SHUTTING_DOWN})


class ServiceError(RuntimeError):
    """A structured error reply from the server.

    ``trace_id`` is populated from the error object when the server ran
    the failed request under a trace (``server_error`` replies carry
    it); ``retry_after`` from overload/drain rejections.
    """

    def __init__(
        self,
        err_type: str,
        message: str,
        trace_id: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"[{err_type}] {message}")
        self.type = err_type
        self.message = message
        self.trace_id = trace_id
        self.retry_after = retry_after


class TransportError(ConnectionError):
    """Could not complete a request within the retry/budget bounds."""


class CircuitOpenError(TransportError):
    """Failing fast: the client's circuit breaker is open."""


class ServiceClient:
    """Blocking request/response client with timeouts and safe retries."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7071,
        *,
        timeout: float = 5.0,
        retries: int = 2,
        retry_backoff: float = 0.05,
        retry_backoff_max: float = 2.0,
        retry_budget: float = 5.0,
        circuit_threshold: int = 8,
        circuit_cooldown: float = 0.5,
        client_id: Optional[str] = None,
        jitter_seed: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self.retry_budget = retry_budget
        self.circuit_threshold = circuit_threshold
        self.circuit_cooldown = circuit_cooldown
        #: Idempotency identity: unique per client instance by default.
        self.client_id = client_id or uuid.uuid4().hex[:16]
        #: Deadline stamped on every request (ms), or None.
        self.deadline_ms = deadline_ms
        self._rng = (
            derive_rng(jitter_seed, "client", self.client_id)
            if jitter_seed is not None
            else derive_rng(uuid.uuid4().hex)
        )
        self._sock: Optional[socket.socket] = None
        self._next_id = 0
        self._seq = 0
        self._failures = 0  # consecutive failed attempts
        self._open_until: Optional[float] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    # ------------------------------------------------------------------
    # Retry machinery
    # ------------------------------------------------------------------
    def backoff_delay(self, attempt: int, hint: Optional[float] = None) -> float:
        """Sleep before retry *attempt* (1-based): capped exponential,
        jittered to [0.5x, 1.0x], floored at the server's ``retry_after``
        hint when one was given."""
        delay = min(
            self.retry_backoff * (2 ** (attempt - 1)), self.retry_backoff_max
        )
        delay *= 0.5 + 0.5 * self._rng.random()
        if hint is not None:
            delay = max(delay, float(hint))
        return delay

    def _check_circuit(self) -> None:
        if self._open_until is None:
            return
        now = time.monotonic()
        if now < self._open_until:
            raise CircuitOpenError(
                f"circuit open for {self._open_until - now:.2f}s more "
                f"after {self._failures} consecutive failures"
            )
        # Half-open: admit one trial; a single failure re-opens.
        self._open_until = None
        self._failures = max(self.circuit_threshold - 1, 0)

    def _note_failure(self) -> None:
        self._failures += 1
        if self._failures >= self.circuit_threshold:
            self._open_until = time.monotonic() + self.circuit_cooldown

    def _note_success(self) -> None:
        self._failures = 0
        self._open_until = None

    @property
    def circuit_open(self) -> bool:
        return (
            self._open_until is not None
            and time.monotonic() < self._open_until
        )

    def _recv_reply(
        self, sock, expect_id: Any, *, max_skip: int = 8
    ) -> Optional[Dict[str, Any]]:
        """Read frames until the reply matching *expect_id* arrives.

        A chaos proxy may duplicate a request frame, producing an extra
        reply; without id matching that stale reply would be taken as
        the answer to the *next* request and desynchronize the stream.
        """
        for _ in range(max_skip + 1):
            reply = wire.recv_frame_blocking(sock)
            if reply is None:
                return None
            if reply.get("id") == expect_id:
                return reply
        raise wire.ProtocolError(
            f"no reply with id {expect_id!r} within {max_skip + 1} frames"
        )

    def _request(self, op: str, **fields: Any) -> Any:
        self._check_circuit()
        self._next_id += 1
        message = {"op": op, "id": self._next_id, **fields}
        if self.deadline_ms is not None and "deadline_ms" not in message:
            message["deadline_ms"] = self.deadline_ms
        # The trace root: one client.request span covers the whole call,
        # retries included; the context rides in the frame so the server
        # hangs its spans below ours.  Unsampled requests carry nothing.
        ctx = trace.new_trace()
        if ctx is not None:
            message["trace"] = ctx.to_wire()
        frame = wire.encode_frame(message)
        started = time.perf_counter()
        attempts = 0
        ok = False
        slept = 0.0
        hint: Optional[float] = None
        try:
            last_exc: Optional[Exception] = None
            for attempt in range(self.retries + 1):
                attempts = attempt + 1
                if attempt:
                    delay = self.backoff_delay(attempt, hint)
                    if slept + delay > self.retry_budget:
                        last_exc = last_exc or TransportError("retry budget spent")
                        break
                    slept += delay
                    time.sleep(delay)
                hint = None
                try:
                    sock = self._connect()
                    sock.sendall(frame)
                    reply = self._recv_reply(sock, message["id"])
                except (OSError, wire.ProtocolError) as exc:
                    self.close()
                    last_exc = exc
                    self._note_failure()
                    continue
                if reply is None:  # server hung up cleanly; retry
                    self.close()
                    last_exc = ConnectionError("server closed the connection")
                    self._note_failure()
                    continue
                if reply.get("ok"):
                    ok = True
                    self._note_success()
                    return reply.get("result")
                error = reply.get("error") or {}
                err_type = error.get("type", "unknown")
                exc = ServiceError(
                    err_type,
                    error.get("message", ""),
                    error.get("trace_id"),
                    error.get("retry_after"),
                )
                if err_type in RETRYABLE_ERRORS:
                    last_exc = exc
                    hint = exc.retry_after
                    self._note_failure()
                    continue
                # A definitive structured answer: the transport works.
                self._note_success()
                raise exc
            if isinstance(last_exc, ServiceError):
                # Out of retries on a retryable rejection: surface the
                # server's own answer, not a transport wrapper.
                raise last_exc
            raise TransportError(
                f"request {op!r} failed after {attempts} attempts"
                f" ({slept:.2f}s of backoff): {last_exc}"
            )
        finally:
            if ctx is not None:
                trace.emit_span(
                    ctx,
                    "client.request",
                    (time.perf_counter() - started) * 1e6,
                    attrs={"op": op, "attempts": attempts, "ok": ok},
                )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return self._request("ping") == "pong"

    def next_seq(self) -> int:
        """Allocate the idempotency sequence number for one logical write.

        Callers managing their own retry loops allocate the seq *once*
        and pass it to every attempt of that write.
        """
        self._seq += 1
        return self._seq

    def insert(self, value: Any, start, end, *, seq: Optional[int] = None) -> int:
        """Insert one fact exactly once; returns once its commit applied."""
        return self.insert_result(value, start, end, seq=seq)["applied"]

    def insert_result(
        self, value: Any, start, end, *, seq: Optional[int] = None
    ) -> Dict[str, Any]:
        """Like :meth:`insert`, returning the full result dict.

        The resilience harness reads the ``duplicate`` flag off it to
        count how many acks were served by the server's dedup window.
        """
        return self._request(
            "insert",
            value=value,
            start=start,
            end=end,
            client=self.client_id,
            seq=self.next_seq() if seq is None else seq,
        )

    def batch_insert(
        self, facts: Iterable[Sequence[Any]], *, seq: Optional[int] = None
    ) -> int:
        """Insert ``[value, start, end]`` triples in one idempotent request."""
        triples = [list(fact)[:3] for fact in facts]
        result = self._request(
            "batch_insert",
            facts=triples,
            client=self.client_id,
            seq=self.next_seq() if seq is None else seq,
        )
        return result["applied"]

    def lookup(self, t) -> Any:
        """Finalized aggregate value at instant *t*."""
        return self._request("lookup", t=t)

    def rangeq(self, start, end) -> List[Tuple[Any, Interval]]:
        """Finalized, coalesced step function over ``[start, end)``."""
        rows = self._request("rangeq", start=start, end=end)
        return [(value, Interval(s, e)) for value, s, e in rows]

    def window(self, t, w) -> Any:
        """Cumulative MIN/MAX over the closed window ``[t - w, t]``."""
        return self._request("window", t=t, w=w)

    def stats(self) -> Dict[str, Any]:
        return self._request("stats")

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
