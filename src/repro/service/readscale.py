"""``repro readscale`` -- read throughput scaling across read replicas.

Measures aggregate read throughput against the same write-saturated
primary in three topologies: primary-only, one replica, two replicas.
Each cell spawns real server processes (reusing the rescheck child
harness, so the servers run journaled page files exactly like the
failover drills), floods the primary with deep-pipelined inserts, and
then lets patient reader processes hammer ``lookup`` for a fixed
window.

The scaling mechanism being demonstrated is the one replicas exist
for: on a write-saturated primary every read queues behind hundreds of
in-flight writes -- the event loop, the group-commit batches, and the
shard write locks they hold through fsync -- and past the admission
ceiling reads are rejected outright with ``retry_after`` hints.  With
replicas the same reads route to follower processes that carry only
the (batched, cheap) journal-apply load and answer immediately.
Readers use the replica-aware
:class:`~repro.service.client.ServiceClient` routing, so the bench
also exercises the exact code path applications use.

Results land in ``BENCH_service.json`` as a ``read_scaling`` series
(replicas on the x axis, aggregate reads/s as the column) merged into
whatever the service load generator already wrote there.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence

from .. import benchlib
from ..rescheck import (
    _SPAN,
    _free_port,
    _replication_stats,
    _spawn_server,
    _wait_applied,
    _wait_ready,
    _wait_subscribed,
)
from .client import CircuitOpenError, ServiceClient, ServiceError, TransportError

__all__ = ["run_readscale", "main"]

#: Writes the background load keeps in flight per writer process --
#: comfortably past the server's default ``max_inflight`` (256) when
#: two writers run, which is the point: the primary must sit at its
#: admission ceiling for the cell to measure anything interesting.
_WRITE_DEPTH = 200

#: The base table and grouped view the ``--views`` mode reads.  The
#: catalog ships down the journal stream, so replica-routed
#: ``query_view`` reads exercise each replica's own catalog copy.
_VIEW_TABLE = "rs_obs"
_VIEW_NAME = "rs_by_k"
_VIEW_KEYS = ("a", "b", "c")


# ----------------------------------------------------------------------
# Child processes
# ----------------------------------------------------------------------
def _writer_child(args: argparse.Namespace) -> int:
    """Saturate the primary with pipelined inserts until terminated."""
    rng = random.Random(args.seed)
    lo, hi = _SPAN
    pending: List[Any] = []
    try:
        with ServiceClient(
            "127.0.0.1", args.port, timeout=30.0, retries=0, codec="binary"
        ) as svc:
            while True:
                while len(pending) < args.depth:
                    start = rng.randrange(lo, hi - 1)
                    end = rng.randrange(start + 1, hi)
                    pending.append(
                        svc.submit_insert(rng.randint(1, 9), start, end)
                    )
                future = pending.pop(0)
                try:
                    future.result()
                except (ServiceError, TransportError, OSError):
                    # Overload rejections and resets are expected here;
                    # the writer's only job is pressure, not delivery.
                    pass
    except (TransportError, OSError, KeyboardInterrupt):
        return 0
    return 0


def _reader_child(args: argparse.Namespace) -> int:
    """Run patient reads for ``--duration`` seconds, report JSON.

    Plain mode hammers ``lookup``; ``--views 1`` hammers ``query_view``
    against the drill's grouped view instead -- same replica-aware
    routing, so the cell measures replica-served *view* reads.
    """
    endpoints = [e for e in args.endpoints.split(",") if e]
    phost, _, pport = endpoints[0].rpartition(":")
    replicas = endpoints[1:] or None
    view_mode = bool(getattr(args, "views", 0))
    rng = random.Random(args.seed)
    lo, hi = _SPAN
    reads = errors = 0
    deadline = time.monotonic() + args.duration
    with ServiceClient(
        phost,
        int(pport),
        timeout=10.0,
        retries=4,
        jitter_seed=args.seed,
        replicas=replicas,
    ) as svc:
        while time.monotonic() < deadline:
            try:
                if view_mode:
                    svc.query_view(
                        _VIEW_NAME,
                        rng.randrange(lo, hi),
                        key=rng.choice(_VIEW_KEYS),
                    )
                else:
                    svc.lookup(rng.randrange(lo, hi))
                reads += 1
            except (ServiceError, TransportError, CircuitOpenError, OSError):
                errors += 1
                time.sleep(0.02)
    payload = {"reads": reads, "errors": errors}
    if svc.last_staleness_s is not None:
        payload["last_staleness_s"] = svc.last_staleness_s
    sys.stdout.write(json.dumps(payload) + "\n")
    sys.stdout.flush()
    return 0


def _spawn_child(mode: str, **flags: Any) -> subprocess.Popen:
    command = [sys.executable, "-m", "repro.service.readscale", mode]
    for name, value in flags.items():
        command += [f"--{name.replace('_', '-')}", str(value)]
    return subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
    )


# ----------------------------------------------------------------------
# One topology cell
# ----------------------------------------------------------------------
def _run_cell(
    replicas: int,
    *,
    duration: float,
    readers: int,
    writers: int,
    seed: int,
    workdir: str,
    batch_max: int,
    batch_delay: float,
    views: bool = False,
) -> Dict[str, Any]:
    ports = [_free_port() for _ in range(1 + replicas)]
    primary_port, replica_ports = ports[0], ports[1:]
    procs: List[subprocess.Popen] = []
    children: List[subprocess.Popen] = []
    try:
        primary = _spawn_server(
            os.path.join(workdir, f"primary-r{replicas}.sbt"),
            primary_port,
            batch_max=batch_max,
            batch_delay=batch_delay,
        )
        procs.append(primary)
        _wait_ready(primary_port, primary)
        for i, rport in enumerate(replica_ports):
            proc = _spawn_server(
                os.path.join(workdir, f"replica-r{replicas}-{i}.sbt"),
                rport,
                batch_max=batch_max,
                batch_delay=batch_delay,
                replica_of=f"127.0.0.1:{primary_port}",
                replica_name=f"127.0.0.1:{rport}",
            )
            procs.append(proc)
            _wait_ready(rport, proc)
        if replicas:
            _wait_subscribed(primary_port, replicas)

        # Seed some facts so lookups traverse real leaves, and make
        # sure every replica has applied them before the clock starts.
        # In views mode the seed also declares the grouped view and
        # ingests its base table, both of which ship to the replicas.
        rng = random.Random(seed)
        lo, hi = _SPAN
        with ServiceClient("127.0.0.1", primary_port, timeout=10.0) as svc:
            for _ in range(200):
                start = rng.randrange(lo, hi - 1)
                svc.insert(rng.randint(1, 9), start, rng.randrange(start + 1, hi))
            if views:
                svc.create_view(
                    _VIEW_NAME, [_VIEW_TABLE], "sum", key="k",
                    lag="downstream",
                )
                rows = []
                for _ in range(200):
                    start = rng.randrange(lo, hi - 1)
                    rows.append([
                        rng.randint(1, 9),
                        start,
                        rng.randrange(start + 1, hi),
                        {"k": rng.choice(_VIEW_KEYS)},
                    ])
                svc.table_insert(_VIEW_TABLE, rows)
        if replicas:
            commit = int(_replication_stats(primary_port).get("commit", 0))
            for rport in replica_ports:
                _wait_applied(rport, commit)

        for w in range(writers):
            children.append(
                _spawn_child(
                    "--writer-child",
                    port=primary_port,
                    seed=seed * 31 + w,
                    depth=_WRITE_DEPTH,
                )
            )
        time.sleep(0.5)  # let the write pipeline fill before measuring

        endpoints = ",".join(
            [f"127.0.0.1:{primary_port}"]
            + [f"127.0.0.1:{p}" for p in replica_ports]
        )
        reader_procs = [
            _spawn_child(
                "--reader-child",
                endpoints=endpoints,
                duration=duration,
                seed=seed * 131 + r,
                views=1 if views else 0,
            )
            for r in range(readers)
        ]

        cell: Dict[str, Any] = {
            "replicas": replicas,
            "reads": 0,
            "read_errors": 0,
            "readers": readers,
        }
        for proc in reader_procs:
            out, _ = proc.communicate(timeout=duration + 60.0)
            report = json.loads(out.strip().splitlines()[-1])
            cell["reads"] += report["reads"]
            cell["read_errors"] += report["errors"]
            if "last_staleness_s" in report:
                cell["last_staleness_s"] = report["last_staleness_s"]
        cell["reads_per_s"] = round(cell["reads"] / duration, 2)
        try:
            with ServiceClient("127.0.0.1", primary_port, timeout=5.0) as svc:
                counters = (svc.stats() or {}).get("counters", {})
            cell["primary_overload_rejections"] = counters.get(
                "service.overload.rejected", 0
            )
        except Exception:
            pass
        return cell
    finally:
        for proc in children:
            proc.terminate()
        for proc in procs:
            proc.kill()
        for proc in children + procs:
            try:
                proc.wait(timeout=10.0)
            except Exception:
                pass


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def _merge_bench(
    out_dir: str,
    series: benchlib.Series,
    extra: Dict[str, Any],
    name: str = "read_scaling",
) -> str:
    """Fold one scaling sweep into ``BENCH_service.json`` under *name*.

    The service bench file is shared with the load generator's latency
    sweep (and between the plain and ``--views`` read sweeps); when one
    already exists the series is added alongside whatever is there
    instead of clobbering it.
    """
    path = os.path.join(out_dir, "BENCH_service.json")
    bench = f"service.{name}"
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload[name] = series.to_dict(bench)
        records = [
            r
            for r in payload.get("records", [])
            if r.get("benchmark") != bench
        ]
        records.extend(series.to_records(bench))
        payload["records"] = records
        payload.setdefault("extra", {})[name] = extra
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
    return benchlib.write_bench_json(
        out_dir, "service", series, extra={name: extra}
    )


def run_readscale(
    *,
    cells: Sequence[int] = (0, 1, 2),
    duration: float = 6.0,
    readers: int = 4,
    writers: int = 2,
    seed: int = 0,
    batch_max: int = 64,
    batch_delay: float = 0.002,
    views: bool = False,
    out_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the replica sweep and return ``{"cells": ..., "speedup": ...}``.

    *speedup* is the last cell's aggregate reads/s over the first
    cell's (conventionally 2 replicas over primary-only).  With
    ``views=True`` readers issue replica-routed ``query_view`` instead
    of ``lookup`` and the sweep lands in ``BENCH_service.json`` as the
    separate ``view_read_scaling`` series.
    """
    workdir = tempfile.mkdtemp(prefix="repro-readscale-")
    results: List[Dict[str, Any]] = []
    try:
        for replicas in cells:
            results.append(
                _run_cell(
                    replicas,
                    duration=duration,
                    readers=readers,
                    writers=writers,
                    seed=seed,
                    workdir=workdir,
                    batch_max=batch_max,
                    batch_delay=batch_delay,
                    views=views,
                )
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    baseline = results[0]["reads_per_s"]
    top = results[-1]["reads_per_s"]
    speedup = round(top / baseline, 2) if baseline else None
    series = benchlib.Series("replicas", [c["replicas"] for c in results])
    series.add("reads_per_s", [c["reads_per_s"] for c in results])
    summary: Dict[str, Any] = {
        "cells": results,
        "speedup": speedup,
        "duration_s": duration,
        "readers": readers,
        "writers": writers,
        "seed": seed,
        "views": views,
    }
    if out_dir is not None:
        summary["bench_path"] = _merge_bench(
            out_dir,
            series,
            {
                "cells": results,
                "read_speedup_vs_primary_only": speedup,
                "duration_s": duration,
                "readers": readers,
                "writers": writers,
            },
            name="view_read_scaling" if views else "read_scaling",
        )
    summary["series"] = series
    return summary


def main(args: argparse.Namespace) -> int:
    if getattr(args, "writer_child", False):
        return _writer_child(args)
    if getattr(args, "reader_child", False):
        return _reader_child(args)
    cells = tuple(getattr(args, "cells", None) or (0, 1, 2))
    views = bool(getattr(args, "views", False))
    summary = run_readscale(
        cells=cells,
        duration=getattr(args, "duration", 6.0),
        readers=getattr(args, "readers", 4),
        writers=getattr(args, "writers", 2),
        seed=getattr(args, "seed", 0),
        views=views,
        out_dir=getattr(args, "out_dir", None) or os.getcwd(),
    )
    print(summary["series"].render(with_exponents=False))
    mode = "view reads/s" if views else "reads/s"
    for cell in summary["cells"]:
        print(
            f"replicas={cell['replicas']}: {cell['reads_per_s']:.1f} {mode}"
            f" ({cell['reads']} reads, {cell['read_errors']} errors,"
            f" {cell.get('primary_overload_rejections', 0)}"
            " primary overload rejections)"
        )
    speedup = summary["speedup"]
    shown = f"{speedup:.2f}x" if speedup is not None else "inf"
    print(f"read speedup vs primary-only: {shown}")
    print(f"wrote {summary['bench_path']}")
    min_speedup = getattr(args, "min_speedup", 0.0)
    if min_speedup and (speedup is None or speedup < min_speedup):
        print(f"FAIL: speedup below required {min_speedup:.2f}x")
        return 1
    return 0


def _parse_args(argv: Optional[Sequence[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-readscale",
        description="Measure read throughput scaling across read replicas.",
    )
    parser.add_argument("--duration", type=float, default=6.0)
    parser.add_argument("--readers", type=int, default=4)
    parser.add_argument("--writers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out-dir", default=None)
    parser.add_argument("--min-speedup", type=float, default=0.0)
    # "--views" alone turns the mode on; the harness's child spawner
    # passes an explicit 0/1 value through the same flag.
    parser.add_argument("--views", type=int, nargs="?", const=1, default=0,
                        help="measure replica-served query_view reads "
                        "instead of lookup (view_read_scaling series)")
    parser.add_argument(
        "--cells", type=int, nargs="*", default=None,
        help="replica counts to sweep (default: 0 1 2)",
    )
    # Internal child modes (spawned by the harness itself).
    parser.add_argument("--writer-child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--reader-child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--port", type=int, default=0, help=argparse.SUPPRESS)
    parser.add_argument("--depth", type=int, default=_WRITE_DEPTH,
                        help=argparse.SUPPRESS)
    parser.add_argument("--endpoints", default="", help=argparse.SUPPRESS)
    return parser.parse_args(argv)


if __name__ == "__main__":
    sys.exit(main(_parse_args()))
