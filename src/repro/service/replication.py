"""Journal-shipping replication: the record format and the commit log.

A primary ships every committed group-commit batch to its followers as
one ``journal_batch`` message over the ordinary wire protocol (see
:mod:`repro.service.protocol`); this module owns the two pieces that
are pure data:

* **The record blob.**  The on-disk journal cannot be shipped verbatim:
  it is a *rollback* journal of page pre-images, deleted the moment a
  commit lands (see ``storage/pager.py``) -- useless for building a
  second copy.  What replication needs is the *logical* redo stream, so
  each shipped batch carries one record per client write, encoded in
  the journal protocol v2 discipline: a length + CRC32 header per
  record, corruption detected before a single fact is applied.  A
  record is ``{"facts": [[value, start, end], ...]}`` plus, when the
  write carried an idempotency key, ``"idem": [client, seq, result]``
  -- the dedup window therefore rides the stream record by record,
  which is what keeps exactly-once intact across failover.  Records are
  framed back-to-back and base64-armored so the blob travels inside
  either wire codec unchanged.

* **The commit log.**  The primary retains recent batches in memory,
  tagged with a monotonically increasing **commit sequence number**
  (the watermark every replica read reports).  A follower subscribes
  with ``from_commit`` = its applied watermark; the log replays the
  backlog and the subscription continues live.  The log is bounded by
  ``cap_bytes``: once truncation drops commits a follower still needs,
  :meth:`CommitLog.since` raises and the follower must be re-seeded
  from a copy of the primary's data files.  ``base`` > 0 also encodes
  "commits happened before this log existed" -- a primary restarted on
  an existing store restores its head from header metadata and refuses
  followers that would need the unretained prefix.
"""

from __future__ import annotations

import base64
import json
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "ReplicationError",
    "encode_records",
    "decode_records",
    "CommitLog",
]

#: Per-record header: payload byte length, CRC32 of the payload.
_REC = struct.Struct(">II")


class ReplicationError(RuntimeError):
    """A corrupt or unserviceable replication stream."""


# ----------------------------------------------------------------------
# Record blob codec (journal v2 discipline: length + CRC32 per record)
# ----------------------------------------------------------------------
def encode_records(records: List[Dict[str, Any]]) -> str:
    """Encode one batch's records into a base64 CRC-framed blob."""
    parts: List[bytes] = []
    for record in records:
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        parts.append(_REC.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF))
        parts.append(payload)
    return base64.b64encode(b"".join(parts)).decode("ascii")


def decode_records(blob: Any) -> List[Dict[str, Any]]:
    """Decode and CRC-verify a record blob; raises :class:`ReplicationError`.

    Verification is all-or-nothing: a follower must apply a batch
    entirely or not at all, so a single bad record rejects the whole
    blob (the follower resubscribes and the primary re-sends it).
    """
    if not isinstance(blob, str):
        raise ReplicationError("records blob must be a base64 string")
    try:
        raw = base64.b64decode(blob.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ReplicationError(f"undecodable records blob: {exc}") from None
    records: List[Dict[str, Any]] = []
    offset = 0
    while offset < len(raw):
        if offset + _REC.size > len(raw):
            raise ReplicationError(f"truncated record header at byte {offset}")
        length, crc = _REC.unpack_from(raw, offset)
        offset += _REC.size
        payload = raw[offset:offset + length]
        if len(payload) != length:
            raise ReplicationError(f"truncated record payload at byte {offset}")
        offset += length
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise ReplicationError(
                f"record CRC mismatch at byte {offset - length}"
            )
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ReplicationError(f"undecodable record: {exc}") from None
        if not isinstance(record, dict):
            raise ReplicationError("record must be a JSON object")
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Primary-side commit log
# ----------------------------------------------------------------------
class CommitLog:
    """Bounded in-memory log of committed batches, numbered from ``base``.

    Commit ``base + 1`` is the first entry retained; :attr:`head` is the
    newest committed sequence number.  ``skip`` advances the head
    without retaining a blob (commits on a primary that has never had a
    subscriber -- nothing will ever ask for them, and a later follower
    starting from 0 is correctly refused because ``base`` moved).
    """

    def __init__(self, base: int = 0, cap_bytes: int = 64 * 1024 * 1024) -> None:
        if base < 0 or cap_bytes < 1:
            raise ValueError("base must be >= 0 and cap_bytes positive")
        self.base = base
        self.cap_bytes = cap_bytes
        self.truncations = 0
        self._entries: List[Tuple[int, str, float]] = []  # (seq, blob, mono)
        self._bytes = 0

    @property
    def head(self) -> int:
        return self.base + len(self._entries)

    def append(self, blob: str, now: float) -> int:
        """Retain one committed batch; returns its commit sequence number."""
        seq = self.head + 1
        self._entries.append((seq, blob, now))
        self._bytes += len(blob)
        while self._bytes > self.cap_bytes and len(self._entries) > 1:
            _, old, _ = self._entries.pop(0)
            self._bytes -= len(old)
            self.base += 1
            self.truncations += 1
        return seq

    def skip(self, now: float) -> int:
        """Advance the head past an unretained commit; returns its seq."""
        if self._entries:
            # Once anything is retained, every later commit must be too
            # (a hole would silently corrupt a resuming follower).
            raise ReplicationError("cannot skip past retained commits")
        self.base += 1
        return self.base

    def since(self, from_commit: int) -> List[Tuple[int, str, float]]:
        """Entries after *from_commit*, oldest first.

        Raises :class:`ReplicationError` when the log no longer reaches
        back that far -- the follower needs a re-seed, not a stream.
        """
        if from_commit < self.base:
            raise ReplicationError(
                f"replication log starts at commit {self.base}; cannot "
                f"resume from {from_commit} (re-seed the replica from a "
                f"copy of the primary's data files)"
            )
        return list(self._entries[from_commit - self.base:])

    def broadcast_time(self, seq: int) -> Optional[float]:
        """Monotonic time commit *seq* was shipped, if still retained."""
        index = seq - self.base - 1
        if 0 <= index < len(self._entries):
            return self._entries[index][2]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CommitLog base={self.base} head={self.head} "
            f"bytes={self._bytes}>"
        )
