"""Network service over a sharded temporal-aggregate index.

The package splits along the wire:

* :mod:`repro.service.protocol` -- length-prefixed JSON framing and the
  request/reply/error vocabulary shared by both sides.
* :mod:`repro.service.server` -- the asyncio TCP server
  (:class:`TemporalAggregateServer`) with group-commit write batching,
  per-connection backpressure, and graceful drain, plus
  :class:`ServerHandle` for running it on a background thread.
* :mod:`repro.service.client` -- a small blocking
  :class:`ServiceClient` with timeouts and bounded retries.
* :mod:`repro.service.loadgen` -- a closed-loop load generator that
  drives a running server and verifies replies against the in-process
  reference oracle.
* :mod:`repro.service.top` -- the ``repro top`` live dashboard
  (pure rendering + a poll loop over the ``stats`` op).

Requests carry an optional ``trace`` field (see
:mod:`repro.obs.trace`); with tracing enabled, client and server emit
correlated span records for every sampled request.
"""

from .client import ServiceClient, ServiceError, TransportError
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_FAULT,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_SERVER,
    ERR_SHUTTING_DOWN,
    ERR_TIMEOUT,
    ERR_UNKNOWN_OP,
    ERR_UNSUPPORTED,
    MAX_FRAME,
    FrameTooLarge,
    ProtocolError,
)
from .server import ServerHandle, TemporalAggregateServer
from .top import render_top, run_top

__all__ = [
    "TemporalAggregateServer",
    "ServerHandle",
    "ServiceClient",
    "ServiceError",
    "TransportError",
    "ProtocolError",
    "FrameTooLarge",
    "MAX_FRAME",
    "ERR_BAD_REQUEST",
    "ERR_UNKNOWN_OP",
    "ERR_UNSUPPORTED",
    "ERR_FAULT",
    "ERR_TIMEOUT",
    "ERR_OVERLOADED",
    "ERR_SHUTTING_DOWN",
    "ERR_INTERNAL",
    "ERR_SERVER",
    "render_top",
    "run_top",
]
