"""Network service over a sharded temporal-aggregate index.

The package splits along the wire:

* :mod:`repro.service.protocol` -- the wire format: length-prefixed
  frames carrying either a struct-packed binary codec (negotiated per
  connection, version 1) or JSON (debugging / old clients), plus the
  request/reply/error vocabulary shared by both sides, including the
  idempotency-key and deadline fields of the resilience contract.
* :mod:`repro.service.server` -- the asyncio TCP server
  (:class:`TemporalAggregateServer`) with group-commit write batching,
  exactly-once idempotency dedup, admission control, deadline shedding,
  per-connection backpressure, inline read/write fast paths, and
  graceful drain, plus :class:`ServerHandle` for running it on a
  background thread.
* :mod:`repro.service.dedup` -- the bounded per-client idempotency
  window (:class:`DedupWindow`) and its journaled persistence format.
* :mod:`repro.service.client` -- a blocking, fully pipelined
  :class:`ServiceClient`: many in-flight requests per connection with
  out-of-order reply matching by request id, a background reader
  thread, per-request futures, timeouts, safe exactly-once retries
  (capped exponential backoff with jitter and a shrinking deadline
  budget), and a circuit breaker.
* :mod:`repro.service.chaos` -- a deterministic frame-aware network
  chaos proxy (:class:`ChaosProxy`) for the resilience harness.
* :mod:`repro.service.loadgen` -- a closed-loop load generator that
  drives a running server and verifies replies against the in-process
  reference oracle, plus the patient exactly-once write driver used by
  :mod:`repro.rescheck`.
* :mod:`repro.service.top` -- the ``repro top`` live dashboard
  (pure rendering + a poll loop over the ``stats`` op), including the
  replication panel (per-replica lag on a primary, applied/staleness
  on a follower).
* :mod:`repro.service.replication` -- journal shipping between a
  primary and its read replicas: the CRC-framed record codec, the
  in-memory :class:`CommitLog` the primary streams from, and the
  replica-side apply loop lives in the server module.
* :mod:`repro.service.readscale` -- the ``repro readscale`` benchmark:
  aggregate read throughput against 0/1/2 replicas under a
  write-saturated primary.

Requests carry an optional ``trace`` field (see
:mod:`repro.obs.trace`); with tracing enabled, client and server emit
correlated span records for every sampled request.
"""

from .chaos import ChaosPlan, ChaosProxy
from .client import (
    CircuitOpenError,
    ServiceClient,
    ServiceError,
    TransportError,
)
from .dedup import DedupWindow
from .protocol import (
    BINARY_VERSION,
    CODEC_BINARY,
    CODEC_JSON,
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_FAULT,
    ERR_INTERNAL,
    ERR_NOT_PRIMARY,
    ERR_OVERLOADED,
    ERR_SERVER,
    ERR_SHUTTING_DOWN,
    ERR_TIMEOUT,
    ERR_UNKNOWN_OP,
    ERR_UNSUPPORTED,
    MAX_FRAME,
    SUPPORTED_CODECS,
    ConnectionClosedMidFrame,
    FrameTooLarge,
    ProtocolError,
)
from .replication import (
    CommitLog,
    ReplicationError,
    decode_records,
    encode_records,
)
from .server import ServerHandle, TemporalAggregateServer
from .top import render_top, run_top

__all__ = [
    "TemporalAggregateServer",
    "ServerHandle",
    "ServiceClient",
    "ServiceError",
    "TransportError",
    "CircuitOpenError",
    "DedupWindow",
    "ChaosPlan",
    "ChaosProxy",
    "ProtocolError",
    "FrameTooLarge",
    "ConnectionClosedMidFrame",
    "MAX_FRAME",
    "CODEC_BINARY",
    "CODEC_JSON",
    "SUPPORTED_CODECS",
    "BINARY_VERSION",
    "ERR_BAD_REQUEST",
    "ERR_UNKNOWN_OP",
    "ERR_UNSUPPORTED",
    "ERR_FAULT",
    "ERR_TIMEOUT",
    "ERR_DEADLINE",
    "ERR_OVERLOADED",
    "ERR_SHUTTING_DOWN",
    "ERR_NOT_PRIMARY",
    "ERR_INTERNAL",
    "ERR_SERVER",
    "CommitLog",
    "ReplicationError",
    "encode_records",
    "decode_records",
    "render_top",
    "run_top",
]
