"""The paper's running example: the ``Prescription`` base table (Figure 1).

Each tuple records a patient, a daily dosage, and the prescription
period as the tuple's valid interval.  All worked examples, figures and
golden tests in this package are driven from this table.
"""

from __future__ import annotations

from typing import List, NamedTuple

from ..core.intervals import Interval

__all__ = ["Prescription", "PRESCRIPTIONS", "prescription_facts"]


class Prescription(NamedTuple):
    """One row of the paper's Figure 1."""

    patient: str
    dosage: int
    valid: Interval


#: Figure 1 of the paper, in its listed order.
PRESCRIPTIONS: List[Prescription] = [
    Prescription("Amy", 2, Interval(10, 40)),
    Prescription("Ben", 3, Interval(10, 30)),
    Prescription("Coy", 1, Interval(20, 40)),
    Prescription("Dan", 2, Interval(5, 15)),
    Prescription("Eve", 4, Interval(35, 45)),
    Prescription("Fred", 1, Interval(10, 50)),
]


def prescription_facts():
    """Return the table as ``(value, interval)`` facts for aggregation."""
    return [(p.dosage, p.valid) for p in PRESCRIPTIONS]
