"""Seeded synthetic workload generators.

The paper reports no public traces; these generators produce the
regimes its analysis distinguishes:

* ``uniform`` -- starts uniform over the horizon, bounded durations;
* ``long_interval_mix`` -- mostly short tuples plus a fraction of very
  long ones (the regime where direct view materialization degrades and
  the SB-tree's segment-tree feature pays off);
* ``ordered`` -- tuples sorted by start time with bounded disorder k
  (the warehouse arrival order that degenerates [KS95]'s aggregation
  tree);
* ``insert_delete_stream`` -- a mixed maintenance stream.

All generators take an explicit ``seed`` so every benchmark run is
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Tuple

from ..core.intervals import Interval

__all__ = [
    "Fact",
    "Operation",
    "uniform",
    "long_interval_mix",
    "ordered",
    "insert_delete_stream",
]

Fact = Tuple[Any, Interval]


@dataclass(frozen=True)
class Operation:
    """One step of a maintenance stream."""

    is_insert: bool
    value: Any
    interval: Interval


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


def uniform(
    n: int,
    *,
    horizon: int = 100_000,
    max_duration: int = 1_000,
    value_range: Tuple[int, int] = (1, 100),
    seed: int = 0,
) -> List[Fact]:
    """*n* tuples with uniform starts and uniform bounded durations."""
    rng = _rng(seed)
    facts = []
    for _ in range(n):
        start = rng.randrange(horizon)
        duration = rng.randrange(1, max_duration + 1)
        facts.append((rng.randint(*value_range), Interval(start, start + duration)))
    return facts


def long_interval_mix(
    n: int,
    *,
    horizon: int = 100_000,
    short_duration: int = 100,
    long_fraction: float = 0.05,
    value_range: Tuple[int, int] = (1, 100),
    seed: int = 0,
) -> List[Fact]:
    """Mostly short tuples; a ``long_fraction`` span most of the horizon."""
    rng = _rng(seed)
    facts = []
    for _ in range(n):
        if rng.random() < long_fraction:
            start = rng.randrange(horizon // 10)
            end = horizon - rng.randrange(horizon // 10) - 1
            if end <= start:
                end = start + 1
        else:
            start = rng.randrange(horizon)
            end = start + rng.randrange(1, short_duration + 1)
        facts.append((rng.randint(*value_range), Interval(start, end)))
    return facts


def ordered(
    n: int,
    *,
    k: int = 0,
    gap: int = 10,
    max_duration: int = 200,
    value_range: Tuple[int, int] = (1, 100),
    seed: int = 0,
) -> List[Fact]:
    """Tuples in start order, each displaced by at most *k* positions.

    This is the k-ordered arrival pattern of [KS95]: the common data
    warehouse case where history accumulates roughly chronologically.
    """
    rng = _rng(seed)
    starts = [i * gap + rng.randrange(gap) for i in range(n)]
    if k > 0:
        # Shuffle disjoint blocks of size k+1: every element stays
        # within k positions of its sorted rank, so the stream is
        # k-ordered by construction.
        for i in range(0, n, k + 1):
            block = starts[i : i + k + 1]
            rng.shuffle(block)
            starts[i : i + k + 1] = block
    return [
        (
            rng.randint(*value_range),
            Interval(start, start + rng.randrange(1, max_duration + 1)),
        )
        for start in starts
    ]


def insert_delete_stream(
    n: int,
    *,
    delete_fraction: float = 0.3,
    horizon: int = 100_000,
    max_duration: int = 1_000,
    value_range: Tuple[int, int] = (1, 100),
    seed: int = 0,
) -> List[Operation]:
    """A maintenance stream mixing inserts with deletes of live tuples."""
    rng = _rng(seed)
    ops: List[Operation] = []
    live: List[Fact] = []
    while len(ops) < n:
        if live and rng.random() < delete_fraction:
            value, interval = live.pop(rng.randrange(len(live)))
            ops.append(Operation(False, value, interval))
        else:
            start = rng.randrange(horizon)
            fact = (
                rng.randint(*value_range),
                Interval(start, start + rng.randrange(1, max_duration + 1)),
            )
            live.append(fact)
            ops.append(Operation(True, *fact))
    return ops
