"""Workload generators and reference datasets."""

from .generators import (
    Fact,
    Operation,
    insert_delete_stream,
    long_interval_mix,
    ordered,
    uniform,
)
from .prescriptions import PRESCRIPTIONS, Prescription, prescription_facts

__all__ = [
    "Fact",
    "Operation",
    "PRESCRIPTIONS",
    "Prescription",
    "insert_delete_stream",
    "long_interval_mix",
    "ordered",
    "prescription_facts",
    "uniform",
]
