"""Structural invariant checking for SB-trees and MSB-trees.

Used throughout the test suite (and available to users) to audit that a
tree satisfies every invariant stated in Section 3 of the paper:

* shape: ``len(values) == len(times) + 1``; interior nodes have one
  child per interval; stored times are strictly increasing and lie
  strictly inside the span inherited from the parent;
* balance: every node except the root is at least half full; an
  interior root has at least two intervals; all leaves share one depth;
* compactness (SUM/COUNT/AVG only): no two adjacent leaf intervals have
  equal accumulated lookup values -- the property the per-update
  ``imerge`` of Section 3.6 maintains;
* MSB annotation exactness: for every interior interval, the extremum
  reconstructed from ``u`` plus the value prefix equals the true
  extremum over that interval, and ``u`` alone never exceeds it.
"""

from __future__ import annotations

from typing import Any

from .intervals import Interval, NEG_INF, POS_INF, Time
from .nodes import Node
from .sbtree import SBTree

__all__ = ["check_tree", "TreeInvariantError"]


class TreeInvariantError(AssertionError):
    """Raised when a tree violates one of its structural invariants."""


def _fail(message: str) -> None:
    raise TreeInvariantError(message)


def check_tree(tree: SBTree, *, check_compact: bool = None) -> None:
    """Audit every invariant of *tree*; raise :class:`TreeInvariantError`.

    ``check_compact`` defaults to ``True`` for SUM/COUNT/AVG trees
    (which the paper keeps compact at all times) and ``False`` for
    MIN/MAX trees (compacted only by explicit ``bmerge``).
    """
    if check_compact is None:
        check_compact = tree.spec.invertible
    root = tree.store.read(tree.store.get_root())
    if root.is_leaf:
        if root.interval_count < 1:
            _fail("root leaf must hold at least one interval")
    else:
        if root.interval_count < 2:
            _fail("interior root must hold at least two intervals")
    depths = set()
    _check_node(tree, root, NEG_INF, POS_INF, is_root=True, depth=1, depths=depths)
    if len(depths) != 1:
        _fail(f"leaves at multiple depths: {sorted(depths)}")
    if check_compact:
        _check_compactness(tree)


def _check_node(
    tree: SBTree,
    node: Node,
    lo: Time,
    hi: Time,
    *,
    is_root: bool,
    depth: int,
    depths: set,
) -> None:
    j = node.interval_count
    if len(node.values) != len(node.times) + 1:
        _fail(f"node {node.node_id}: {len(node.values)} values vs {len(node.times)} times")
    if not node.is_leaf and len(node.children) != j:
        _fail(f"node {node.node_id}: {len(node.children)} children vs {j} intervals")
    if node.is_leaf and node.children:
        _fail(f"leaf {node.node_id} has children")
    if node.uvalues is not None and len(node.uvalues) != j:
        _fail(f"node {node.node_id}: {len(node.uvalues)} u-values vs {j} intervals")
    if not is_root:
        if j > tree._capacity(node):
            _fail(f"node {node.node_id} overflows: {j} > {tree._capacity(node)}")
        if j < tree._minimum(node):
            _fail(f"node {node.node_id} underfull: {j} < {tree._minimum(node)}")
    for prev, cur in zip(node.times, node.times[1:]):
        if not prev < cur:
            _fail(f"node {node.node_id}: times not strictly increasing")
    for t in node.times:
        if not (lo < t < hi):
            _fail(f"node {node.node_id}: time {t} outside inherited span ({lo}, {hi})")
    if node.is_leaf:
        depths.add(depth)
        return
    for i in range(j):
        a, b = node.bounds(i, lo, hi)
        child = tree.store.read(node.children[i])
        _check_node(tree, child, a, b, is_root=False, depth=depth + 1, depths=depths)
    if node.uvalues is not None:
        _check_u_annotations(tree, node, lo, hi)


def _check_u_annotations(tree: SBTree, node: Node, lo: Time, hi: Time) -> None:
    """Verify u-exactness locally: acc(v_i, u_i) equals the subtree extremum.

    For each interior interval, the extremum of all contributions stored
    at or below it equals ``acc(values[i], uvalues[i])``; and ``u``
    itself never exceeds that extremum.
    """
    acc = tree.spec.acc
    for i in range(node.interval_count):
        child = tree.store.read(node.children[i])
        subtree = _subtree_extremum(tree, child)
        expected = acc(node.values[i], subtree)
        annotated = acc(node.values[i], node.uvalues[i])
        if not tree.spec.eq(annotated, expected):
            _fail(
                f"node {node.node_id} interval {i}: u annotation {node.uvalues[i]} "
                f"gives {annotated}, true subtree extremum gives {expected}"
            )


def _subtree_extremum(tree: SBTree, node: Node) -> Any:
    """Extremum over all leaf-path value accumulations below *node*."""
    acc = tree.spec.acc
    if node.is_leaf:
        result = tree.spec.v0
        for v in node.values:
            result = acc(result, v)
        return result
    result = tree.spec.v0
    for i in range(node.interval_count):
        child = tree.store.read(node.children[i])
        result = acc(result, acc(node.values[i], _subtree_extremum(tree, child)))
    return result


def _check_compactness(tree: SBTree) -> None:
    """No two adjacent constant intervals may carry equal lookup values."""
    table = tree.range_query(Interval(NEG_INF, POS_INF))
    rows = table.rows
    for (v1, i1), (v2, i2) in zip(rows, rows[1:]):
        if tree.spec.eq(v1, v2):
            _fail(
                f"adjacent leaf intervals {i1} and {i2} share value {v1}; "
                "tree is not compact"
            )
