"""Brute-force reference oracle for temporal aggregates.

Deliberately simple O(n * m) implementations used to cross-check every
index and baseline in the test suite.  Semantics (shared by the whole
package):

* the *instantaneous* aggregate at instant ``t`` ranges over tuples
  whose valid interval ``[s, e)`` contains ``t``;
* the *cumulative* aggregate at instant ``t`` with window offset ``w``
  ranges over tuples whose valid interval intersects the closed window
  ``[t - w, t]``, i.e. tuples with ``s <= t`` and ``e > t - w``.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Tuple

from .intervals import Interval, NEG_INF, POS_INF, Time
from .results import ConstantIntervalTable, trim_initial
from .values import AggregateSpec, spec_for

__all__ = [
    "instantaneous_value",
    "cumulative_value",
    "instantaneous_table",
    "cumulative_table",
]

#: A base fact: (value, valid interval).
Fact = Tuple[Any, Interval]


def _facts(tuples: Iterable) -> List[Fact]:
    out = []
    for item in tuples:
        value, interval = item[0], item[1]
        if not isinstance(interval, Interval):
            interval = Interval(*interval)
        out.append((value, interval))
    return out


def instantaneous_value(tuples: Iterable[Fact], kind, t: Time) -> Any:
    """Aggregate over all tuples valid at instant *t* (internal form)."""
    spec = spec_for(kind)
    result = spec.v0
    for value, interval in _facts(tuples):
        if interval.contains(t):
            result = spec.acc(result, spec.effect(value))
    return result


def cumulative_value(tuples: Iterable[Fact], kind, t: Time, w: Time) -> Any:
    """Aggregate over tuples overlapping the closed window ``[t-w, t]``."""
    spec = spec_for(kind)
    result = spec.v0
    for value, interval in _facts(tuples):
        if interval.overlaps_window(t - w, t):
            result = spec.acc(result, spec.effect(value))
    return result


def _table(
    facts: Sequence[Fact],
    spec: AggregateSpec,
    boundaries: Iterable[Time],
    value_at,
    drop_initial: bool,
) -> ConstantIntervalTable:
    table = ConstantIntervalTable.from_boundaries(
        sorted({b for b in boundaries if NEG_INF < b < POS_INF}), value_at
    ).coalesce(spec.eq)
    if drop_initial:
        table = trim_initial(table, spec)
    return table


def instantaneous_table(
    tuples: Iterable[Fact], kind, *, drop_initial: bool = True
) -> ConstantIntervalTable:
    """Full constant-interval table of the instantaneous aggregate."""
    spec = spec_for(kind)
    facts = _facts(tuples)
    boundaries: List[Time] = []
    for _, interval in facts:
        boundaries.extend((interval.start, interval.end))
    return _table(
        facts,
        spec,
        boundaries,
        lambda t: instantaneous_value(facts, spec, t),
        drop_initial,
    )


def cumulative_table(
    tuples: Iterable[Fact], kind, w: Time, *, drop_initial: bool = True
) -> ConstantIntervalTable:
    """Full constant-interval table of the cumulative aggregate.

    The cumulative value changes only when a tuple enters the window
    (at ``t = start``) or leaves it (at ``t = end + w``).
    """
    spec = spec_for(kind)
    facts = _facts(tuples)
    boundaries: List[Time] = []
    for _, interval in facts:
        boundaries.append(interval.start)
        if interval.end != POS_INF:
            boundaries.append(interval.end + w)
    return _table(
        facts,
        spec,
        boundaries,
        lambda t: cumulative_value(facts, spec, t, w),
        drop_initial,
    )
