"""Constant-interval result tables.

The result of a temporal aggregate is a table of ``(value, interval)``
rows where the value is constant over each interval (Figures 3--6 of the
paper).  :class:`ConstantIntervalTable` is that table: a sorted,
contiguous step function over (a sub-range of) the time line.  All query
paths -- SB-tree reconstruction, baselines, the reference oracle -- emit
this type, which makes cross-checking them trivial.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from .intervals import Interval, NEG_INF, POS_INF, Time, coalesce_pairs
from .values import AggregateSpec, spec_for

__all__ = ["ConstantIntervalTable", "merge_step_functions", "trim_initial"]


class ConstantIntervalTable:
    """A step function represented as sorted, contiguous (value, interval) rows.

    Rows must be sorted by start and contiguous (each row starts where the
    previous one ends).  Adjacent rows may carry equal values unless the
    table has been :meth:`coalesce`\\ d.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: Iterable[Tuple[Any, Interval]] = ()):
        self.rows: List[Tuple[Any, Interval]] = list(rows)
        self._check()

    def _check(self) -> None:
        for (_, prev), (_, cur) in zip(self.rows, self.rows[1:]):
            if prev.end != cur.start:
                raise ValueError(
                    f"rows are not contiguous: {prev} then {cur}"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[Any, Interval]]) -> "ConstantIntervalTable":
        """Build a table from already-sorted contiguous pairs."""
        return cls(pairs)

    @classmethod
    def from_boundaries(
        cls,
        boundaries: Sequence[Time],
        value_at: Callable[[Time], Any],
        lo: Time = NEG_INF,
        hi: Time = POS_INF,
    ) -> "ConstantIntervalTable":
        """Build a table over ``[lo, hi)`` split at the given finite boundaries.

        ``value_at(t)`` is sampled once at the start of each piece (any
        instant of the piece would do, the function is constant there by
        assumption).  For the unbounded leading piece it is sampled just
        left of the first boundary.
        """
        cuts = sorted({b for b in boundaries if lo < b < hi})
        edges = [lo] + cuts + [hi]
        rows = []
        for a, b in zip(edges, edges[1:]):
            if a == NEG_INF:
                sample = (b - 1) if b != POS_INF else 0
            else:
                sample = a
            rows.append((value_at(sample), Interval(a, b)))
        return cls(rows)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def value_at(self, t: Time) -> Any:
        """Return the value of the step function at instant *t*."""
        starts = [interval.start for _, interval in self.rows]
        i = bisect.bisect_right(starts, t) - 1
        if i < 0 or not self.rows[i][1].contains(t):
            raise KeyError(f"instant {t} outside table domain")
        return self.rows[i][0]

    def restrict(self, window: Interval) -> "ConstantIntervalTable":
        """Return the table clipped to *window*."""
        rows = []
        for value, interval in self.rows:
            clipped = interval.intersection(window)
            if clipped is not None:
                rows.append((value, clipped))
        return ConstantIntervalTable(rows)

    def coalesce(self, equal: Optional[Callable[[Any, Any], bool]] = None) -> "ConstantIntervalTable":
        """Return a copy with adjacent equal-valued rows merged."""
        if equal is None:
            equal = lambda a, b: a == b
        return ConstantIntervalTable(coalesce_pairs(self.rows, equal))

    def drop_value(self, value: Any) -> "ConstantIntervalTable":
        """Return a (possibly non-contiguous!) list of rows without *value*.

        Used to strip the "harmless" leading/trailing ``v0`` rows of a
        full reconstruction (Section 3.2).  Returns a plain table whose
        contiguity check is skipped via filtering at the edges only when
        safe; interior drops are not expected and raise.
        """
        rows = [row for row in self.rows if row[0] != value]
        return ConstantIntervalTable(rows)

    def mapped(self, fn: Callable[[Any], Any]) -> "ConstantIntervalTable":
        """Return a copy with *fn* applied to every value (e.g. AVG finalize)."""
        return ConstantIntervalTable((fn(v), i) for v, i in self.rows)

    def finalized(self, spec: AggregateSpec) -> "ConstantIntervalTable":
        """Return a copy with values converted to their user-facing form."""
        spec = spec_for(spec)
        return self.mapped(spec.finalize)

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def sample(self, start: Time, stop: Time, step: Time) -> Iterator[Tuple[Time, Any]]:
        """Yield ``(t, value)`` at regular instants -- a dashboard series.

        Instants outside the table's domain yield ``None`` rather than
        raising, so sparse tables sample cleanly.
        """
        if step <= 0:
            raise ValueError("step must be positive")
        t = start
        while t < stop:
            try:
                yield t, self.value_at(t)
            except KeyError:
                yield t, None
            t += step

    @property
    def span(self) -> Optional[Interval]:
        """The interval covered by the table (None when empty)."""
        if not self.rows:
            return None
        return Interval(self.rows[0][1].start, self.rows[-1][1].end)

    def __iter__(self) -> Iterator[Tuple[Any, Interval]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstantIntervalTable):
            return NotImplemented
        return self.rows == other.rows

    def __repr__(self) -> str:
        return f"ConstantIntervalTable({self.rows!r})"

    def pretty(self, value_header: str = "value") -> str:
        """Render the table the way the paper's figures do."""
        lines = [f"{value_header:>12}  valid"]
        for value, interval in self.rows:
            shown = value
            if isinstance(value, float):
                shown = f"{value:.2f}"
            lines.append(f"{str(shown):>12}  {interval}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # CSV interchange
    # ------------------------------------------------------------------
    def to_csv(self, handle) -> None:
        """Write ``value,start,end`` rows (with header) to a file object.

        Infinite endpoints serialize as ``-inf`` / ``inf``; AVG pairs
        should be finalized first (tuples are rejected).
        """
        import csv as _csv

        writer = _csv.writer(handle)
        writer.writerow(["value", "start", "end"])
        for value, interval in self.rows:
            if isinstance(value, tuple):
                raise ValueError("finalize AVG pairs before exporting to CSV")
            writer.writerow([value, interval.start, interval.end])

    @classmethod
    def from_csv(cls, handle) -> "ConstantIntervalTable":
        """Read a table previously written by :meth:`to_csv`."""
        import csv as _csv

        def convert(text: str):
            if text == "":
                return None
            number = float(text)
            if number in (POS_INF, NEG_INF):
                return number
            return int(number) if number == int(number) else number

        reader = _csv.DictReader(handle)
        rows = [
            (
                convert(line["value"]),
                Interval(convert(line["start"]), convert(line["end"])),
            )
            for line in reader
        ]
        return cls(rows)


def trim_initial(table: "ConstantIntervalTable", spec) -> "ConstantIntervalTable":
    """Strip leading and trailing rows that carry the initial value ``v0``.

    The paper calls these the "harmless tuples" of a full reconstruction
    (Section 3.2); every result-table producer in this package trims
    them the same way so tables compare exactly.
    """
    spec = spec_for(spec)
    rows = table.rows
    start = 0
    end = len(rows)
    while start < end and spec.is_initial(rows[start][0]):
        start += 1
    while end > start and spec.is_initial(rows[end - 1][0]):
        end -= 1
    return ConstantIntervalTable(rows[start:end])


def merge_step_functions(
    tables: Sequence[ConstantIntervalTable],
    combine: Callable[..., Any],
    window: Interval,
) -> ConstantIntervalTable:
    """Pointwise-combine several step functions over *window*.

    Used by the dual-tree range query (Section 4.2): the cumulative
    aggregate is ``acc(T(t), diff(T'(t), T'(t - w)))``, a pointwise
    combination of three step functions.  The result's breakpoints are
    the union of the inputs' breakpoints inside *window*.
    """
    cuts: set = set()
    for table in tables:
        for _, interval in table.rows:
            for endpoint in (interval.start, interval.end):
                if window.start < endpoint < window.end:
                    cuts.add(endpoint)
    edges = [window.start] + sorted(cuts) + [window.end]
    rows = []
    for a, b in zip(edges, edges[1:]):
        if a == NEG_INF:
            sample = (b - 1) if b != POS_INF else 0
        else:
            sample = a
        rows.append((combine(*(t.value_at(sample) for t in tables)), Interval(a, b)))
    return ConstantIntervalTable(rows)
