"""Time instants and half-open intervals.

The paper models a temporal database over a totally ordered time domain.
Every tuple carries a *valid interval* ``[start, end)``; the index's
conceptual domain is the whole time line ``(-inf, +inf)``.  Infinite
endpoints are never stored inside tree nodes -- they exist only at the
outer edges of the time line -- but intervals handed around by the
algorithms may be unbounded on either side (e.g. the dual-tree insertion
effect ``[end, +inf)`` of Section 4.2).

Instants are plain numbers (``int`` or ``float``); all paper examples use
integers.  ``NEG_INF``/``POS_INF`` are ordinary IEEE infinities, which
compare correctly against both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple, Union

Time = Union[int, float]

NEG_INF: float = -math.inf
POS_INF: float = math.inf

__all__ = [
    "Time",
    "NEG_INF",
    "POS_INF",
    "Interval",
    "is_finite",
    "coalesce_pairs",
]


def is_finite(t: Time) -> bool:
    """Return ``True`` when *t* is a finite time instant."""
    return NEG_INF < t < POS_INF


@dataclass(frozen=True)
class Interval:
    """A half-open time interval ``[start, end)``.

    Either endpoint may be infinite.  An interval with ``start >= end``
    is rejected: empty intervals never arise in the algorithms and
    allowing them would silently hide bugs.
    """

    start: Time
    end: Time

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError(
                f"empty or inverted interval [{self.start}, {self.end})"
            )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, t: Time) -> bool:
        """Return ``True`` when instant *t* lies inside ``[start, end)``."""
        return self.start <= t < self.end

    def overlaps(self, other: "Interval") -> bool:
        """Return ``True`` when the two half-open intervals intersect."""
        return self.start < other.end and other.start < self.end

    def covers(self, other: "Interval") -> bool:
        """Return ``True`` when *other* is fully contained in this interval."""
        return self.start <= other.start and other.end <= self.end

    def meets(self, other: "Interval") -> bool:
        """Return ``True`` when this interval ends exactly where *other* starts."""
        return self.end == other.start

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Return the overlap of two intervals, or ``None`` when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo < hi:
            return Interval(lo, hi)
        return None

    def shifted(self, delta: Time) -> "Interval":
        """Return this interval translated by *delta* time units."""
        return Interval(self.start + delta, self.end + delta)

    def extended(self, delta: Time) -> "Interval":
        """Return ``[start, end + delta)`` -- the Section 4.1 window stretch."""
        if delta < 0:
            raise ValueError("extension must be non-negative")
        return Interval(self.start, self.end + delta)

    # ------------------------------------------------------------------
    # Window (closed-interval) predicates, used by cumulative aggregates.
    #
    # A cumulative aggregate at instant ``t`` with window offset ``w``
    # ranges over tuples overlapping the *closed* window ``[t - w, t]``.
    # ------------------------------------------------------------------
    def overlaps_window(self, lo: Time, hi: Time) -> bool:
        """Return ``True`` when ``[start, end)`` meets the closed ``[lo, hi]``."""
        return self.start <= hi and self.end > lo

    def within_window(self, lo: Time, hi: Time) -> bool:
        """Return ``True`` when ``[start, end)`` is contained in closed ``[lo, hi]``.

        The check is conservative for discrete domains (it never claims
        containment that does not hold in the continuous reading), which
        is the safe direction for the MSB-tree pruning that relies on it.
        """
        return self.start >= lo and self.end <= hi

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, t: Time) -> bool:
        return self.contains(t)

    def __str__(self) -> str:
        lo = "-inf" if self.start == NEG_INF else repr(self.start)
        hi = "inf" if self.end == POS_INF else repr(self.end)
        open_lo = "(" if self.start == NEG_INF else "["
        return f"{open_lo}{lo}, {hi})"

    @property
    def is_bounded(self) -> bool:
        """Return ``True`` when both endpoints are finite."""
        return is_finite(self.start) and is_finite(self.end)

    @property
    def length(self) -> Time:
        """Return ``end - start`` (may be infinite)."""
        return self.end - self.start


def coalesce_pairs(
    pairs: Iterable[Tuple[object, Interval]],
    equal=lambda a, b: a == b,
) -> Iterator[Tuple[object, Interval]]:
    """Merge adjacent ``(value, interval)`` pairs with equal values.

    The input must be sorted by interval start with contiguous or disjoint
    intervals; only *touching* intervals (``prev.end == next.start``) with
    equal values are merged.  This is the coalescing step of ``bmerge``
    (Section 3.6) and of the reconstruction queries.
    """
    pending_value: object = None
    pending: Optional[Interval] = None
    for value, interval in pairs:
        if pending is not None and pending.meets(interval) and equal(pending_value, value):
            pending = Interval(pending.start, interval.end)
        else:
            if pending is not None:
                yield pending_value, pending
            pending_value, pending = value, interval
    if pending is not None:
        yield pending_value, pending
