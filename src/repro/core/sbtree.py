"""The SB-tree (Section 3 of the paper).

An SB-tree indexes a *temporal aggregate* rather than a base table.  It
combines:

* **segment-tree value placement** -- the effect of a base tuple whose
  valid interval fully covers a node interval is recorded *at that
  interval* and never pushed further down, so tuples with long valid
  intervals are absorbed in O(h) node touches; and
* **B-tree balancing** -- nodes are at least half full, splits propagate
  upward, and underfull nodes borrow from or merge with siblings.

The aggregate value at an instant is the ``acc`` of the values stored
along the root-to-leaf search path (Section 3.1).  Updates are expressed
as an *effect* pair ``<v, I>`` applied along at most two root-to-leaf
paths (Section 3.3); deletions are insertions of a negated effect
(Section 3.4, SUM/COUNT/AVG only).  Compaction merges adjacent
equal-valued leaf intervals around the endpoints of each update
(``imerge``/``nmerge``, Section 3.6); MIN/MAX trees are compacted in
batch instead (``bmerge``).

All node access goes through a :class:`~repro.core.store.NodeStore`, so
the same code runs in memory or on disk pages.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple, Union

from ..obs import observed
from .intervals import Interval, NEG_INF, POS_INF, Time, is_finite
from .nodes import Node, NodeId
from .results import ConstantIntervalTable, trim_initial
from .store import MemoryNodeStore, NodeStore
from .values import AggregateKind, AggregateSpec, spec_for

__all__ = ["SBTree"]

IntervalLike = Union[Interval, Tuple[Time, Time]]


def as_interval(interval: IntervalLike) -> Interval:
    """Accept an :class:`Interval` or a ``(start, end)`` pair."""
    if isinstance(interval, Interval):
        return interval
    start, end = interval
    return Interval(start, end)


class SBTree:
    """A balanced, store-backed index over one temporal aggregate.

    Parameters
    ----------
    kind:
        Aggregate kind (``AggregateKind`` value, spec, or name string).
        May be omitted when reopening a store that already holds a tree.
    store:
        A :class:`NodeStore`; defaults to a fresh in-memory store.
    branching:
        Maximum branching factor ``b`` (intervals per interior node).
    leaf_capacity:
        Maximum leaf capacity ``l``; defaults to ``branching``.  The
        paper notes ``l`` may exceed ``b`` because leaves carry no child
        pointers.

    Both capacities must be at least 4 so that every node retains at
    least two intervals, which the compaction procedures rely on.
    """

    def __init__(
        self,
        kind=None,
        store: Optional[NodeStore] = None,
        *,
        branching: int = 32,
        leaf_capacity: Optional[int] = None,
    ) -> None:
        self.store = store if store is not None else MemoryNodeStore()
        existing_root = self.store.get_root()
        if existing_root is not None:
            stored_kind = self.store.get_meta("kind")
            if stored_kind is None:
                raise ValueError("store has a root but no aggregate kind metadata")
            if kind is not None and spec_for(kind).kind.value != stored_kind:
                raise ValueError(
                    f"store holds a {stored_kind} tree, not {spec_for(kind).kind}"
                )
            self.spec: AggregateSpec = spec_for(stored_kind)
            self.b = int(self.store.get_meta("branching"))
            self.l = int(self.store.get_meta("leaf_capacity"))
            self._root_id: NodeId = existing_root
            return
        if kind is None:
            raise ValueError("an aggregate kind is required for a new tree")
        self.spec = spec_for(kind)
        self.b = int(branching)
        self.l = int(leaf_capacity) if leaf_capacity is not None else self.b
        if self.b < 4 or self.l < 4:
            raise ValueError("branching factor and leaf capacity must be >= 4")
        self._check_store_limits()
        root = self.store.allocate(is_leaf=True, with_uvalues=False)
        root.values = [self.spec.v0]
        self.store.write(root)
        self.store.set_root(root.node_id)
        self.store.set_meta("kind", self.spec.kind.value)
        self.store.set_meta("branching", str(self.b))
        self.store.set_meta("leaf_capacity", str(self.l))
        self._root_id = root.node_id

    def _check_store_limits(self) -> None:
        """Reject b/l that cannot fit the store's pages (if it has pages)."""
        max_b = getattr(self.store, "default_branching", None)
        if self._root_has_u():
            max_b = getattr(self.store, "default_branching_annotated", max_b)
        max_l = getattr(self.store, "default_leaf_capacity", None)
        if max_b is not None and self.b > max_b:
            raise ValueError(
                f"branching factor {self.b} exceeds the page limit {max_b}"
            )
        if max_l is not None and self.l > max_l:
            raise ValueError(
                f"leaf capacity {self.l} exceeds the page limit {max_l}"
            )

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    @property
    def kind(self) -> AggregateKind:
        return self.spec.kind

    @property
    def min_leaf(self) -> int:
        return (self.l + 1) // 2

    @property
    def min_interior(self) -> int:
        return (self.b + 1) // 2

    def _capacity(self, node: Node) -> int:
        return self.l if node.is_leaf else self.b

    def _minimum(self, node: Node) -> int:
        return self.min_leaf if node.is_leaf else self.min_interior

    def _overflows(self, node: Node) -> bool:
        return node.interval_count > self._capacity(node)

    def _read(self, node_id: NodeId) -> Node:
        return self.store.read(node_id)

    def _root(self) -> Node:
        return self._read(self._root_id)

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone root leaf)."""
        h, node = 1, self._root()
        while not node.is_leaf:
            node = self._read(node.children[0])
            h += 1
        return h

    def node_count(self) -> int:
        """Number of live nodes in the tree's store."""
        return self.store.node_count()

    # Whether updates are followed by endpoint compaction.  Per
    # Section 3.6 this holds for SUM/COUNT/AVG; MIN/MAX trees are
    # compacted in batch via :meth:`compact` instead.
    @property
    def _auto_compact(self) -> bool:
        return self.spec.invertible

    # ------------------------------------------------------------------
    # Lookup (Section 3.1)
    # ------------------------------------------------------------------
    @observed("lookup")
    def lookup(self, t: Time) -> Any:
        """Return the internal aggregate value at instant *t* in O(h)."""
        acc = self.spec.acc
        node = self._root()
        result = self.spec.v0
        while True:
            i = node.find(t)
            result = acc(result, node.values[i])
            if node.is_leaf:
                return result
            node = self._read(node.children[i])

    def lookup_final(self, t: Time) -> Any:
        """Return the user-facing aggregate value at instant *t*."""
        return self.spec.finalize(self.lookup(t))

    # ------------------------------------------------------------------
    # Range queries and reconstruction (Section 3.2)
    # ------------------------------------------------------------------
    @observed("range_query")
    def range_query(self, interval: IntervalLike) -> ConstantIntervalTable:
        """Return the aggregate's constant intervals clipped to *interval*.

        A depth-first traversal of the leaves intersecting *interval*,
        accumulating values along each root-to-leaf path: O(h + r) where
        r is the number of leaves touched.
        """
        interval = as_interval(interval)
        rows = list(
            self._rangeq(self._root(), NEG_INF, POS_INF, interval, self.spec.v0)
        )
        return ConstantIntervalTable(rows)

    def _rangeq(
        self, node: Node, lo: Time, hi: Time, query: Interval, carried: Any
    ) -> Iterator[Tuple[Any, Interval]]:
        acc = self.spec.acc
        for i in range(node.interval_count):
            a, b = node.bounds(i, lo, hi)
            if b <= query.start:
                continue
            if a >= query.end:
                break
            value = acc(carried, node.values[i])
            if node.is_leaf:
                yield value, Interval(max(a, query.start), min(b, query.end))
            else:
                child = self._read(node.children[i])
                yield from self._rangeq(child, a, b, query, value)

    def to_table(
        self, *, coalesced: bool = True, drop_initial: bool = True
    ) -> ConstantIntervalTable:
        """Reconstruct the full aggregate over ``(-inf, +inf)``.

        With ``drop_initial`` the "harmless" leading/trailing ``v0`` rows
        of Section 3.2 are stripped, matching the paper's result tables.
        """
        table = self.range_query(Interval(NEG_INF, POS_INF))
        if coalesced:
            table = table.coalesce(self.spec.eq)
        if drop_initial:
            table = trim_initial(table, self.spec)
        return table

    # ------------------------------------------------------------------
    # Insertion and deletion (Sections 3.3 -- 3.5)
    # ------------------------------------------------------------------
    @observed("insert")
    def insert(self, value: Any, interval: IntervalLike) -> None:
        """Record the insertion of a base tuple with *value* valid over *interval*."""
        self.insert_effect(self.spec.effect(value), interval)

    @observed("delete")
    def delete(self, value: Any, interval: IntervalLike) -> None:
        """Record the deletion of a base tuple (SUM/COUNT/AVG only)."""
        self.insert_effect(self.spec.negated_effect(value), interval)

    def insert_effect(self, effect: Any, interval: IntervalLike) -> None:
        """Apply a raw effect pair ``<effect, interval>`` (Section 3.3)."""
        interval = as_interval(interval)
        root = self._root()
        self._insert(root, NEG_INF, POS_INF, effect, interval)
        if self._overflows(root):
            self._grow_root(root)
        if self._auto_compact:
            for t in (interval.start, interval.end):
                if is_finite(t):
                    self._imerge_at(t)

    def _insert(self, node: Node, lo: Time, hi: Time, v: Any, query: Interval) -> None:
        acc, eq = self.spec.acc, self.spec.eq
        if node.is_leaf:
            self._apply_to_leaf(node, lo, hi, v, query)
            self.store.write(node)
            return
        i = 0
        while i < node.interval_count:
            a, b = node.bounds(i, lo, hi)
            if b <= query.start:
                i += 1
                continue
            if a >= query.end:
                break
            if node.uvalues is not None:
                # MSB-tree: the interval overlaps the effect, so its
                # exact-extremum annotation absorbs v (Section 4.3).
                node.uvalues[i] = acc(v, node.uvalues[i])
            current = node.values[i]
            updated = acc(v, current)
            if eq(updated, current):
                # The effect cannot change anything at or below this
                # interval (MIN/MAX pruning; zero-effect for SUM).
                i += 1
                continue
            if query.start <= a and b <= query.end:
                # Segment-tree case: fully covered, record here and stop.
                node.values[i] = updated
                i += 1
                continue
            child = self._read(node.children[i])
            self._insert(child, a, b, v, query)
            if self._overflows(child):
                self._split_child(node, i, child)
                i += 2
            else:
                i += 1
        self.store.write(node)

    def _apply_to_leaf(self, node: Node, lo: Time, hi: Time, v: Any, query: Interval) -> None:
        """Cut the affected leaf intervals at the effect's endpoints.

        An effect partially covering a leaf interval splits it into up to
        three pieces, adding at most two intervals to the leaf overall.
        """
        acc, eq = self.spec.acc, self.spec.eq
        s = max(query.start, lo)
        e = min(query.end, hi)
        pieces: List[Tuple[Time, Time, Any]] = []
        for i in range(node.interval_count):
            a, b = node.bounds(i, lo, hi)
            old = node.values[i]
            if b <= s or a >= e:
                pieces.append((a, b, old))
                continue
            updated = acc(v, old)
            if eq(updated, old):
                pieces.append((a, b, old))
                continue
            cut_lo, cut_hi = max(a, s), min(b, e)
            if a < cut_lo:
                pieces.append((a, cut_lo, old))
            pieces.append((cut_lo, cut_hi, updated))
            if cut_hi < b:
                pieces.append((cut_hi, b, old))
        node.times = [start for start, _, _ in pieces[1:]]
        node.values = [value for _, _, value in pieces]

    # ------------------------------------------------------------------
    # Node splitting (Section 3.5)
    # ------------------------------------------------------------------
    def _split_child(self, parent: Node, i: int, child: Node) -> Node:
        """Split overflowing *child* (the i-th child of *parent*) in two."""
        n = child.interval_count
        mid = (n + 1) // 2  # the left half keeps ceil(n/2) intervals
        sibling = self.store.allocate(
            is_leaf=child.is_leaf, with_uvalues=child.uvalues is not None
        )
        separator = child.times[mid - 1]
        sibling.times = child.times[mid:]
        sibling.values = child.values[mid:]
        child.times = child.times[: mid - 1]
        child.values = child.values[:mid]
        if not child.is_leaf:
            sibling.children = child.children[mid:]
            child.children = child.children[:mid]
        if child.uvalues is not None:
            sibling.uvalues = child.uvalues[mid:]
            child.uvalues = child.uvalues[:mid]
        parent.times.insert(i, separator)
        parent.values.insert(i + 1, parent.values[i])
        parent.children.insert(i + 1, sibling.node_id)
        if parent.uvalues is not None:
            # MSB-tree: recompute the exact extremum of both halves from
            # their u and v annotations (Section 4.3, msplit).
            parent.uvalues.insert(i + 1, None)
            parent.uvalues[i] = self._subtree_u(child)
            parent.uvalues[i + 1] = self._subtree_u(sibling)
        self.store.write(child)
        self.store.write(sibling)
        return sibling

    def _subtree_u(self, node: Node) -> Any:
        """Aggregate all u and v annotations of *node* (msplit helper)."""
        acc = self.spec.acc
        result = self.spec.v0
        for i, value in enumerate(node.values):
            result = acc(result, value)
            if node.uvalues is not None:
                result = acc(result, node.uvalues[i])
        return result

    def _grow_root(self, old_root: Node) -> None:
        """Create a new root above an overflowing one."""
        new_root = self.store.allocate(
            is_leaf=False, with_uvalues=old_root.uvalues is not None or self._root_has_u()
        )
        new_root.values = [self.spec.v0]
        new_root.children = [old_root.node_id]
        if new_root.uvalues is not None:
            new_root.uvalues = [self._subtree_u(old_root)]
        self._split_child(new_root, 0, old_root)
        self.store.write(new_root)
        self.store.set_root(new_root.node_id)
        self._root_id = new_root.node_id

    def _root_has_u(self) -> bool:
        """Whether newly created interior nodes carry u annotations."""
        return False

    # ------------------------------------------------------------------
    # Interval and node merging (Section 3.6)
    # ------------------------------------------------------------------
    def _imerge_at(self, t: Time) -> None:
        """Merge the adjacent leaf intervals meeting at boundary *t*, if equal.

        Each stored time instant appears at exactly one node.  When that
        node is a leaf the two intervals around *t* live side by side;
        when it is interior, they are the rightmost leaf interval of the
        left subtree and the leftmost leaf interval of the right subtree,
        compared through their accumulated lookup values below the
        common ancestor (including the ancestor's own two interval
        values, which the two paths do not share).
        """
        spec = self.spec
        path: List[Tuple[Node, int]] = []
        node = self._root()
        lo: Time = NEG_INF
        hi: Time = POS_INF
        while True:
            k = bisect.bisect_left(node.times, t)
            if k < len(node.times) and node.times[k] == t:
                break
            if node.is_leaf:
                return  # t is not a stored boundary; nothing to merge
            i = node.find(t)
            path.append((node, i))
            lo, hi = node.bounds(i, lo, hi)
            node = self._read(node.children[i])

        if node.is_leaf:
            if spec.eq(node.values[k], node.values[k + 1]):
                del node.times[k]
                del node.values[k + 1]
                self.store.write(node)
                if node.interval_count < self._minimum(node) and path:
                    self._nmerge(node, path)
            return

        # Interior node: t separates intervals k and k+1.
        left_acc, _, left_leaf = self._descend_edge(node.children[k], rightmost=True)
        right_acc, right_path, right_leaf = self._descend_edge(
            node.children[k + 1], rightmost=False
        )
        full_left = spec.acc(node.values[k], left_acc)
        full_right = spec.acc(node.values[k + 1], right_acc)
        if not spec.eq(full_left, full_right):
            return
        if left_leaf.interval_count > self.min_leaf:
            # Fold the left leaf's last interval into the right leaf's first.
            node.times[k] = left_leaf.times[-1]
            del left_leaf.times[-1]
            del left_leaf.values[-1]
            self.store.write(left_leaf)
            self.store.write(node)
        else:
            # Fold the right leaf's first interval into the left leaf's last.
            node.times[k] = right_leaf.times[0]
            del right_leaf.times[0]
            del right_leaf.values[0]
            self.store.write(right_leaf)
            self.store.write(node)
            if right_leaf.interval_count < self._minimum(right_leaf):
                full_path = path + [(node, k + 1)] + right_path
                self._nmerge(right_leaf, full_path)

    def _descend_edge(
        self, child_id: NodeId, rightmost: bool
    ) -> Tuple[Any, List[Tuple[Node, int]], Node]:
        """Walk to the leftmost or rightmost leaf below *child_id*.

        Returns the accumulated edge value (the lookup contribution of
        the subtree, excluding anything above it), the descent path, and
        the leaf itself.
        """
        acc = self.spec.acc
        accumulated = self.spec.v0
        entries: List[Tuple[Node, int]] = []
        node = self._read(child_id)
        while True:
            idx = node.interval_count - 1 if rightmost else 0
            accumulated = acc(accumulated, node.values[idx])
            if node.is_leaf:
                return accumulated, entries, node
            entries.append((node, idx))
            node = self._read(node.children[idx])

    def _nmerge(self, node: Node, path: List[Tuple[Node, int]]) -> None:
        """Fix an underfull *node* by borrowing from or merging with a sibling.

        Every transformation preserves the value returned by ``lookup``
        along every path, by pushing parent interval values down before
        moving intervals across nodes.
        """
        spec = self.spec
        acc = spec.acc
        if not path:
            # node is the root.  An interior root with a single child is
            # collapsed: its one value is folded into every child value.
            if not node.is_leaf and node.interval_count == 1:
                child = self._read(node.children[0])
                child.values = [acc(node.values[0], v) for v in child.values]
                self.store.write(child)
                self.store.free(node.node_id)
                self.store.set_root(child.node_id)
                self._root_id = child.node_id
            return

        parent, k = path[-1]
        minimum = self._minimum(node)
        right = (
            self._read(parent.children[k + 1])
            if k + 1 < parent.interval_count
            else None
        )
        left = self._read(parent.children[k - 1]) if k > 0 else None

        if right is not None and right.interval_count > self._minimum(right):
            self._borrow_from_right(parent, k, node, right)
            return
        if left is not None and left.interval_count > self._minimum(left):
            self._borrow_from_left(parent, k, node, left)
            return

        # Merge with a sibling (prefer the right one when both exist).
        if right is not None:
            self._merge_siblings(parent, k, node, right)
        else:
            assert left is not None, "non-root node must have a sibling"
            self._merge_siblings(parent, k - 1, left, node)

        parent_is_root = len(path) == 1
        if parent_is_root:
            if parent.interval_count == 1:
                self._nmerge(parent, [])
        elif parent.interval_count < self._minimum(parent):
            self._nmerge(parent, path[:-1])

    def _borrow_from_right(self, parent: Node, k: int, node: Node, right: Node) -> None:
        acc = self.spec.acc
        node.values = [acc(parent.values[k], v) for v in node.values]
        parent.values[k] = self.spec.v0
        node.times.append(parent.times[k])
        node.values.append(acc(parent.values[k + 1], right.values[0]))
        if not node.is_leaf:
            node.children.append(right.children[0])
            del right.children[0]
        parent.times[k] = right.times[0]
        del right.times[0]
        del right.values[0]
        self.store.write(node)
        self.store.write(right)
        self.store.write(parent)

    def _borrow_from_left(self, parent: Node, k: int, node: Node, left: Node) -> None:
        acc = self.spec.acc
        node.values = [acc(parent.values[k], v) for v in node.values]
        parent.values[k] = self.spec.v0
        node.times.insert(0, parent.times[k - 1])
        node.values.insert(0, acc(parent.values[k - 1], left.values[-1]))
        if not node.is_leaf:
            node.children.insert(0, left.children[-1])
            del left.children[-1]
        parent.times[k - 1] = left.times[-1]
        del left.times[-1]
        del left.values[-1]
        self.store.write(node)
        self.store.write(left)
        self.store.write(parent)

    def _merge_siblings(self, parent: Node, k: int, first: Node, second: Node) -> None:
        """Merge children k and k+1 of *parent* into the first one."""
        acc = self.spec.acc
        merged_values = [acc(parent.values[k], v) for v in first.values]
        merged_values += [acc(parent.values[k + 1], v) for v in second.values]
        first.values = merged_values
        first.times = first.times + [parent.times[k]] + second.times
        if not first.is_leaf:
            first.children = first.children + second.children
        parent.values[k] = self.spec.v0
        del parent.times[k]
        del parent.values[k + 1]
        del parent.children[k + 1]
        self.store.free(second.node_id)
        self.store.write(first)
        self.store.write(parent)

    # ------------------------------------------------------------------
    # Batch compaction (bmerge, Section 3.6) and bulk loading
    # ------------------------------------------------------------------
    @observed("compact")
    def compact(self, *, bulk: bool = False) -> None:
        """Rebuild the tree from its coalesced constant intervals.

        This is the paper's ``bmerge``: a full reconstruction pass whose
        coalesced output replaces the tree.  Required periodically for
        MIN/MAX trees, which perform no per-update merging; a
        no-op-in-content rebuild for already-compact SUM/COUNT/AVG
        trees.

        By default the replacement is built by re-inserting each output
        row, exactly as the paper describes (O(n + m log m)); this
        reproduces the paper's post-``mbmerge`` tree shapes.  With
        ``bulk=True`` the replacement is packed bottom-up via
        :meth:`bulk_load` in O(n + m).
        """
        table = self.range_query(Interval(NEG_INF, POS_INF)).coalesce(self.spec.eq)
        if bulk:
            self.bulk_load(table)
            return
        self._free_subtree(self._root_id)
        root = self.store.allocate(is_leaf=True, with_uvalues=False)
        root.values = [self.spec.v0]
        self.store.write(root)
        self.store.set_root(root.node_id)
        self._root_id = root.node_id
        for value, interval in table:
            if self.spec.is_initial(value):
                continue
            root_node = self._root()
            self._insert(root_node, NEG_INF, POS_INF, value, interval)
            if self._overflows(root_node):
                self._grow_root(root_node)

    @observed("bulk_load")
    def bulk_load(self, table: ConstantIntervalTable) -> None:
        """Replace the tree's contents with *table*, built bottom-up.

        *table* must be a contiguous step function covering the whole
        time line (a full, coalesced reconstruction); the existing
        contents are discarded.  Leaves are packed to capacity with the
        tail redistributed to respect minimum occupancy, interior levels
        carry ``v0`` (all value mass sits in the leaves), and MSB
        annotations are recomputed per level.  Runs in O(m).
        """
        rows = table.rows
        if not rows:
            rows = [(self.spec.v0, Interval(NEG_INF, POS_INF))]
        if rows[0][1].start != NEG_INF or rows[-1][1].end != POS_INF:
            raise ValueError("bulk_load needs a table covering (-inf, inf)")
        self._free_subtree(self._root_id)

        # Build the leaf level.
        values = [value for value, _ in rows]
        boundaries = [interval.end for _, interval in rows[:-1]]
        leaf_chunks = self._chunk(len(values), self.l, self.min_leaf)
        level: List[NodeId] = []
        separators: List[Time] = []
        position = 0
        for size in leaf_chunks:
            node = self.store.allocate(is_leaf=True, with_uvalues=False)
            node.values = values[position : position + size]
            node.times = boundaries[position : position + size - 1]
            self.store.write(node)
            level.append(node.node_id)
            if position + size <= len(boundaries):
                separators.append(boundaries[position + size - 1])
            position += size

        # Stack interior levels until one node remains.
        annotate = self._root_has_u()
        while len(level) > 1:
            chunks = self._chunk(len(level), self.b, self.min_interior)
            next_level: List[NodeId] = []
            next_separators: List[Time] = []
            position = 0
            for size in chunks:
                node = self.store.allocate(is_leaf=False, with_uvalues=annotate)
                node.children = level[position : position + size]
                node.values = [self.spec.v0] * size
                node.times = separators[position : position + size - 1]
                if annotate:
                    node.uvalues = [
                        self._subtree_u(self.store.read(child))
                        for child in node.children
                    ]
                self.store.write(node)
                next_level.append(node.node_id)
                if position + size <= len(separators):
                    next_separators.append(separators[position + size - 1])
                position += size
            level, separators = next_level, next_separators

        self.store.set_root(level[0])
        self._root_id = level[0]

    def retain_after(self, cutoff: Time) -> ConstantIntervalTable:
        """Archive and drop all aggregate history before *cutoff*.

        The warehouse setting of Section 1: old history may be retired
        once nobody queries it (indeed the paper notes the base data
        needed to recompute it may be gone).  Everything before *cutoff*
        is returned as a coalesced table for archival, and the tree is
        rebuilt holding ``v0`` there; lookups before *cutoff* afterwards
        return the initial value.
        """
        if not (NEG_INF < cutoff < POS_INF):
            raise ValueError("cutoff must be a finite instant")
        full = self.range_query(Interval(NEG_INF, POS_INF)).coalesce(self.spec.eq)
        archived = trim_initial(full.restrict(Interval(NEG_INF, cutoff)), self.spec)
        kept = full.restrict(Interval(cutoff, POS_INF))
        rows = [(self.spec.v0, Interval(NEG_INF, cutoff))] + kept.rows
        self.bulk_load(ConstantIntervalTable(rows).coalesce(self.spec.eq))
        return archived

    @staticmethod
    def _chunk(total: int, capacity: int, minimum: int) -> List[int]:
        """Split *total* items into chunks of at most *capacity*, each at
        least *minimum* (except a lone chunk), preferring full chunks."""
        if total <= capacity:
            return [total]
        chunks = []
        remaining = total
        while remaining > capacity:
            take = capacity
            if 0 < remaining - take < minimum:
                take = remaining - minimum
            chunks.append(take)
            remaining -= take
        chunks.append(remaining)
        return chunks

    def _free_subtree(self, node_id: NodeId) -> None:
        node = self._read(node_id)
        if not node.is_leaf:
            for child in node.children:
                self._free_subtree(child)
        self.store.free(node_id)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SBTree {self.spec.kind} b={self.b} l={self.l} "
            f"nodes={self.node_count()}>"
        )
