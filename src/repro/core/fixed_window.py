"""Cumulative aggregates with a fixed, known-in-advance window offset.

Section 4.1 of the paper: one SB-tree (or MSB-tree-free plain SB-tree)
per (aggregate, window offset) pair.  A base tuple valid over ``[s, e)``
contributes to the cumulative value at every instant ``t`` with
``s <= t < e + w`` -- exactly the instants whose closed window
``[t - w, t]`` intersects ``[s, e)`` -- so its effect interval is simply
stretched to ``[s, e + w)`` before the ordinary SB-tree insertion.
Lookups and range queries need no change at all.

An instantaneous aggregate is the special case ``w == 0``.
"""

from __future__ import annotations

from typing import Any, Optional

from ..obs import observed
from .intervals import Interval, POS_INF, Time
from .results import ConstantIntervalTable
from .sbtree import IntervalLike, SBTree, as_interval
from .store import NodeStore

__all__ = ["FixedWindowTree"]

_inner_store = lambda self: self.tree.store  # noqa: E731 - obs accessor


class FixedWindowTree:
    """An SB-tree specialised to one cumulative window offset.

    Supports all five aggregate kinds; deletions only for the
    invertible ones (SUM/COUNT/AVG), exactly as in Section 3.4.
    A tree built for offset ``w`` cannot answer queries for any other
    offset -- that is the limitation Sections 4.2/4.3 lift.
    """

    def __init__(
        self,
        kind,
        window: Time,
        store: Optional[NodeStore] = None,
        *,
        branching: int = 32,
        leaf_capacity: Optional[int] = None,
    ) -> None:
        if window < 0:
            raise ValueError("window offset must be non-negative")
        self.window = window
        self.tree = SBTree(
            kind, store, branching=branching, leaf_capacity=leaf_capacity
        )
        self.spec = self.tree.spec

    # ------------------------------------------------------------------
    def _stretched(self, interval: IntervalLike) -> Interval:
        interval = as_interval(interval)
        if interval.end == POS_INF:
            return interval
        return interval.extended(self.window)

    @observed("insert", stores=_inner_store)
    def insert(self, value: Any, interval: IntervalLike) -> None:
        """Record a base-table insertion."""
        self.tree.insert_effect(self.spec.effect(value), self._stretched(interval))

    @observed("delete", stores=_inner_store)
    def delete(self, value: Any, interval: IntervalLike) -> None:
        """Record a base-table deletion (SUM/COUNT/AVG only)."""
        self.tree.insert_effect(
            self.spec.negated_effect(value), self._stretched(interval)
        )

    @observed("lookup", stores=_inner_store)
    def lookup(self, t: Time) -> Any:
        """Cumulative value at instant *t* (internal form), O(h)."""
        return self.tree.lookup(t)

    def lookup_final(self, t: Time) -> Any:
        """Cumulative value at instant *t* in user-facing form."""
        return self.spec.finalize(self.lookup(t))

    @observed("range_query", stores=_inner_store)
    def range_query(self, interval: IntervalLike) -> ConstantIntervalTable:
        """Constant intervals of the cumulative aggregate over *interval*."""
        return self.tree.range_query(interval)

    def to_table(self, **kwargs) -> ConstantIntervalTable:
        """Full reconstruction of the cumulative aggregate."""
        return self.tree.to_table(**kwargs)

    @observed("compact", stores=_inner_store)
    def compact(self) -> None:
        """Batch-compact the underlying tree (needed for MIN/MAX)."""
        self.tree.compact()
