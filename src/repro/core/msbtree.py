"""The MSB-tree (Section 4.3 of the paper).

An MSB-tree is an SB-tree for a MIN or MAX aggregate whose interior
intervals carry an extra annotation ``u``: the *exact* extremum of the
aggregate over the whole interval.  The annotation turns a cumulative
(moving-window) lookup -- which on a plain SB-tree needs an O(h + r)
range scan over the window -- into an O(h) search (``mlookup``): a
window that fully covers an interior interval is answered from ``u``
without descending, and subtrees that cannot improve the running
extremum are pruned.

MSB-trees inherit all structural behaviour from :class:`SBTree`; the
``u`` maintenance in ``insert`` and ``split`` is keyed off the presence
of ``uvalues`` on a node, so interior nodes allocated by this class are
annotated automatically.  Like every MIN/MAX index in the paper,
MSB-trees reject deletions and are compacted in batch (``mbmerge`` ==
:meth:`SBTree.compact`).
"""

from __future__ import annotations

from typing import Any, Optional

from ..obs import observed
from .intervals import Interval, NEG_INF, POS_INF, Time
from .nodes import Node
from .results import ConstantIntervalTable
from .sbtree import IntervalLike, SBTree, as_interval
from .store import NodeStore
from .values import AggregateKind

__all__ = ["MSBTree"]


class MSBTree(SBTree):
    """An SB-tree with exact-extremum annotations for windowed MIN/MAX."""

    def __init__(
        self,
        kind=None,
        store: Optional[NodeStore] = None,
        *,
        branching: int = 32,
        leaf_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(
            kind, store, branching=branching, leaf_capacity=leaf_capacity
        )
        if self.spec.kind not in (AggregateKind.MIN, AggregateKind.MAX):
            raise ValueError("MSB-trees support only MIN and MAX aggregates")

    def _root_has_u(self) -> bool:
        # Interior nodes created above this tree's root carry u values.
        return True

    # ------------------------------------------------------------------
    # Windowed lookup (mlookup)
    # ------------------------------------------------------------------
    @observed("mlookup")
    def window_lookup(self, t: Time, w: Time) -> Any:
        """Return the cumulative MIN/MAX at instant *t* with offset *w*.

        The value ranges over all base tuples whose valid interval
        intersects the closed window ``[t - w, t]``.  Runs in O(h).
        """
        if w < 0:
            raise ValueError("window offset must be non-negative")
        return self._mlookup(self._root(), NEG_INF, POS_INF, t - w, t, self.spec.v0)

    def _mlookup(
        self, node: Node, nlo: Time, nhi: Time, lo: Time, hi: Time, running: Any
    ) -> Any:
        acc, eq = self.spec.acc, self.spec.eq
        for i in range(node.interval_count):
            a, b = node.bounds(i, nlo, nhi)
            # Overlap with the *closed* window [lo, hi].
            if b <= lo:
                continue
            if a > hi:
                break
            if node.is_leaf:
                running = acc(running, node.values[i])
                continue
            candidate = acc(acc(running, node.uvalues[i]), node.values[i])
            if eq(running, candidate):
                # This interval cannot improve the running extremum.
                continue
            if a >= lo and b <= hi:
                # Fully covered: the exact extremum over the interval is
                # available from the annotations, no descent needed.
                running = candidate
                continue
            child = self._read(node.children[i])
            running = self._mlookup(child, a, b, lo, hi, acc(running, node.values[i]))
        return running

    @observed("mlookup")
    def extremum_over(self, lo: Time, hi: Time) -> Any:
        """The exact MIN/MAX over the closed interval ``[lo, hi]`` in O(h).

        This is the paper's omitted "use the u values" range optimization
        in its purest form: a window lookup is the special case
        ``extremum_over(t - w, t)``, but the annotations answer *any*
        interval extremum without the O(h + r) leaf scan that ``rangeq``
        would need.
        """
        if hi < lo:
            raise ValueError("empty interval")
        return self._mlookup(self._root(), NEG_INF, POS_INF, lo, hi, self.spec.v0)

    # ------------------------------------------------------------------
    # Windowed range query
    # ------------------------------------------------------------------
    @observed("window_query")
    def window_query(self, interval: IntervalLike, w: Time) -> ConstantIntervalTable:
        """Return the cumulative aggregate's constant intervals over *interval*.

        The cumulative value can only change when an edge of the sliding
        window crosses a breakpoint of the instantaneous aggregate, so
        the candidate cuts are the instantaneous breakpoints and their
        ``+w`` translates; each resulting piece is evaluated with one
        O(h) :meth:`window_lookup`.
        """
        interval = as_interval(interval)
        base = self.range_query(
            Interval(
                interval.start - w if interval.start != NEG_INF else NEG_INF,
                interval.end,
            )
        ).coalesce(self.spec.eq)
        cuts = set()
        for _, piece in base:
            for endpoint in (piece.start, piece.end):
                for candidate in (endpoint, endpoint + w):
                    if interval.start < candidate < interval.end:
                        cuts.add(candidate)
        edges = [interval.start] + sorted(cuts) + [interval.end]
        rows = []
        for a, b in zip(edges, edges[1:]):
            sample = a if a != NEG_INF else (b - 1 if b != POS_INF else 0)
            rows.append((self.window_lookup(sample, w), Interval(a, b)))
        return ConstantIntervalTable(rows).coalesce(self.spec.eq)

    # ------------------------------------------------------------------
    # mbmerge is the inherited batch compaction; make the name available.
    # ------------------------------------------------------------------
    def mbmerge(self) -> None:
        """Alias for :meth:`SBTree.compact` (the paper calls it mbmerge)."""
        self.compact()
