"""Node store abstraction.

The paper's trees are *disk-based*: nodes live on fixed-size pages and
operation costs are counted in page accesses.  All tree logic in this
package is written against the small :class:`NodeStore` interface so the
same code runs over:

* :class:`MemoryNodeStore` -- a dict of live :class:`~repro.core.nodes.Node`
  objects, for pure-algorithm benchmarks and tests; and
* :class:`repro.storage.PagedNodeStore` -- file-backed pages behind a
  buffer pool with real (de)serialization and I/O accounting.

A store also persists a small amount of tree metadata (the root pointer
and the aggregate kind) so a disk-resident tree can be reopened.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .nodes import Node, NodeId

__all__ = ["NodeStore", "MemoryNodeStore", "StoreStats"]


@dataclass
class StoreStats:
    """Logical node-access counters maintained by every store."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0

    def reset(self) -> None:
        self.reads = self.writes = self.allocations = self.frees = 0

    def snapshot(self) -> "StoreStats":
        return StoreStats(self.reads, self.writes, self.allocations, self.frees)

    def __sub__(self, other: "StoreStats") -> "StoreStats":
        return StoreStats(
            self.reads - other.reads,
            self.writes - other.writes,
            self.allocations - other.allocations,
            self.frees - other.frees,
        )


class NodeStore(abc.ABC):
    """Allocate, read, write and free tree nodes; hold the root pointer."""

    stats: StoreStats

    @abc.abstractmethod
    def allocate(self, is_leaf: bool, with_uvalues: bool = False) -> Node:
        """Create and return a fresh empty node."""

    @abc.abstractmethod
    def read(self, node_id: NodeId) -> Node:
        """Return the node with the given id."""

    @abc.abstractmethod
    def write(self, node: Node) -> None:
        """Persist (or mark dirty) a mutated node."""

    @abc.abstractmethod
    def free(self, node_id: NodeId) -> None:
        """Release a node's storage."""

    @abc.abstractmethod
    def get_root(self) -> Optional[NodeId]:
        """Return the root node id, or ``None`` for a virgin store."""

    @abc.abstractmethod
    def set_root(self, node_id: NodeId) -> None:
        """Record *node_id* as the tree root."""

    @abc.abstractmethod
    def get_meta(self, key: str) -> Optional[str]:
        """Return a persisted metadata string (e.g. the aggregate kind)."""

    @abc.abstractmethod
    def set_meta(self, key: str, value: str) -> None:
        """Persist a metadata string."""

    @abc.abstractmethod
    def node_count(self) -> int:
        """Return the number of live nodes."""

    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""


class MemoryNodeStore(NodeStore):
    """A trivial in-memory node store backed by a dict."""

    def __init__(self) -> None:
        self._nodes: Dict[NodeId, Node] = {}
        self._ids: Iterator[int] = itertools.count(1)
        self._root: Optional[NodeId] = None
        self._meta: Dict[str, str] = {}
        self.stats = StoreStats()

    def allocate(self, is_leaf: bool, with_uvalues: bool = False) -> Node:
        node = Node(
            node_id=next(self._ids),
            is_leaf=is_leaf,
            uvalues=[] if with_uvalues else None,
        )
        self._nodes[node.node_id] = node
        self.stats.allocations += 1
        return node

    def read(self, node_id: NodeId) -> Node:
        self.stats.reads += 1
        return self._nodes[node_id]

    def write(self, node: Node) -> None:
        # The caller mutated the live object; just count the access.
        self.stats.writes += 1
        self._nodes[node.node_id] = node

    def free(self, node_id: NodeId) -> None:
        self.stats.frees += 1
        del self._nodes[node_id]

    def get_root(self) -> Optional[NodeId]:
        return self._root

    def set_root(self, node_id: NodeId) -> None:
        self._root = node_id

    def get_meta(self, key: str) -> Optional[str]:
        return self._meta.get(key)

    def set_meta(self, key: str, value: str) -> None:
        self._meta[key] = value

    def node_count(self) -> int:
        return len(self._nodes)
