"""Cumulative SUM/COUNT/AVG with *any* window offset (Section 4.2).

A single instantaneous index cannot answer cumulative queries (the
paper's Figure 20 counterexample: two base tables with identical
instantaneous SUMs but different cumulative SUMs).  The fix is a pair of
SB-trees:

* ``T``  -- the ordinary instantaneous tree: ``lookup(T, t)`` aggregates
  tuples valid *at* ``t``;
* ``T'`` -- an "already ended" tree: ``lookup(T', t)`` aggregates tuples
  whose valid interval lies entirely before ``t``.

The cumulative value at ``t`` with offset ``w`` is then::

    acc( lookup(T, t), diff( lookup(T', t), lookup(T', t - w) ) )

where the ``diff`` term isolates tuples that ended inside the window.

**Erratum note.**  The paper inserts into ``T'`` with effect interval
``(end(I), +inf)``.  Under the paper's own window semantics (a tuple
counts at ``t`` iff it overlaps the closed window ``[t - w, t]``, which
is what Figures 5, 6 and 18 encode) that is off by one: a tuple ending
exactly at ``t - w`` would still be counted.  With ``[end(I), +inf)``
the ``diff`` term counts exactly the tuples with ``t - w < end <= t``,
and all computation routes agree; we use that form and pin the
agreement with regression tests (see DESIGN.md).
"""

from __future__ import annotations

from typing import Any, Optional

from ..obs import observed
from .intervals import Interval, NEG_INF, POS_INF, Time, is_finite
from .results import ConstantIntervalTable, merge_step_functions, trim_initial
from .sbtree import IntervalLike, SBTree, as_interval
from .store import NodeStore

__all__ = ["DualTreeAggregate"]

_both_stores = lambda self: (self.current.store, self.ended.store)  # noqa: E731


class DualTreeAggregate:
    """A pair of SB-trees answering cumulative SUM/COUNT/AVG for any offset."""

    def __init__(
        self,
        kind,
        store: Optional[NodeStore] = None,
        ended_store: Optional[NodeStore] = None,
        *,
        branching: int = 32,
        leaf_capacity: Optional[int] = None,
    ) -> None:
        self.current = SBTree(
            kind, store, branching=branching, leaf_capacity=leaf_capacity
        )
        self.spec = self.current.spec
        if not self.spec.invertible:
            raise ValueError(
                "dual SB-trees support SUM/COUNT/AVG; use an MSB-tree for MIN/MAX"
            )
        self.ended = SBTree(
            self.spec,
            ended_store,
            branching=branching,
            leaf_capacity=leaf_capacity,
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @observed("insert", stores=_both_stores)
    def insert(self, value: Any, interval: IntervalLike) -> None:
        """Record a base-table insertion in both trees."""
        interval = as_interval(interval)
        effect = self.spec.effect(value)
        self.current.insert_effect(effect, interval)
        if is_finite(interval.end):
            # The tuple counts as "ended" from its end instant onward.
            self.ended.insert_effect(effect, Interval(interval.end, POS_INF))

    @observed("delete", stores=_both_stores)
    def delete(self, value: Any, interval: IntervalLike) -> None:
        """Record a base-table deletion in both trees."""
        interval = as_interval(interval)
        effect = self.spec.negated_effect(value)
        self.current.insert_effect(effect, interval)
        if is_finite(interval.end):
            self.ended.insert_effect(effect, Interval(interval.end, POS_INF))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @observed("window_lookup", stores=_both_stores)
    def window_lookup(self, t: Time, w: Time) -> Any:
        """Cumulative value at instant *t* with offset *w* (internal form)."""
        if w < 0:
            raise ValueError("window offset must be non-negative")
        spec = self.spec
        in_window_ended = spec.diff(self.ended.lookup(t), self.ended.lookup(t - w))
        return spec.acc(self.current.lookup(t), in_window_ended)

    def window_lookup_final(self, t: Time, w: Time) -> Any:
        """Cumulative value at instant *t* with offset *w*, user-facing."""
        return self.spec.finalize(self.window_lookup(t, w))

    def lookup(self, t: Time) -> Any:
        """Instantaneous value at *t* (the ``w == 0`` special case)."""
        return self.current.lookup(t)

    @observed("window_query", stores=_both_stores)
    def window_query(self, interval: IntervalLike, w: Time) -> ConstantIntervalTable:
        """Constant intervals of the cumulative aggregate over *interval*.

        Combines three step functions -- ``T(t)``, ``T'(t)`` and the
        ``+w`` translate of ``T'`` -- pointwise; their merged breakpoints
        are exactly the cumulative aggregate's breakpoints.
        """
        interval = as_interval(interval)
        spec = self.spec
        current = self.current.range_query(interval)
        ended = self.ended.range_query(interval)
        shifted_window = Interval(
            interval.start - w if interval.start != NEG_INF else NEG_INF,
            interval.end - w if interval.end != POS_INF else POS_INF,
        )
        ended_shifted = ConstantIntervalTable(
            (value, piece.shifted(w))
            for value, piece in self.ended.range_query(shifted_window)
        )

        def combine(cur: Any, end_now: Any, end_then: Any) -> Any:
            return spec.acc(cur, spec.diff(end_now, end_then))

        return merge_step_functions(
            [current, ended, ended_shifted], combine, interval
        ).coalesce(spec.eq)

    def window_table(self, w: Time, *, drop_initial: bool = True) -> ConstantIntervalTable:
        """Full reconstruction of the cumulative aggregate for offset *w*."""
        table = self.window_query(Interval(NEG_INF, POS_INF), w)
        if drop_initial:
            table = trim_initial(table, self.spec)
        return table
