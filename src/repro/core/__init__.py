"""Core data structures: SB-trees, MSB-trees, and the value algebra."""

from .dual import DualTreeAggregate
from .fixed_window import FixedWindowTree
from .intervals import Interval, NEG_INF, POS_INF, Time
from .msbtree import MSBTree
from .results import ConstantIntervalTable, merge_step_functions
from .sbtree import SBTree
from .store import MemoryNodeStore, NodeStore, StoreStats
from .validate import TreeInvariantError, check_tree
from .values import AggregateKind, AggregateSpec, spec_for

__all__ = [
    "AggregateKind",
    "AggregateSpec",
    "ConstantIntervalTable",
    "DualTreeAggregate",
    "FixedWindowTree",
    "Interval",
    "MSBTree",
    "MemoryNodeStore",
    "NEG_INF",
    "NodeStore",
    "POS_INF",
    "SBTree",
    "StoreStats",
    "Time",
    "TreeInvariantError",
    "check_tree",
    "merge_step_functions",
    "spec_for",
]
