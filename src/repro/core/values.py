"""Aggregate value algebra: ``acc``, ``diff``, ``v0`` and friends.

Section 3 of the paper defines, per aggregate kind:

* an *initial value* ``v0`` (Section 3.2),
* an *accumulation* function ``acc`` combining two aggregate values
  (Section 3.1),
* for invertible kinds, a *difference* function ``diff`` (Section 4.2),
* the *effect* of a base tuple on the aggregate (Section 3.3), and the
  negated effect that encodes a deletion (Section 3.4).

``AVG`` is carried everywhere as a ``(sum, count)`` pair because -- unlike
a single average -- the pair is incrementally maintainable; ``finalize``
turns it into the user-facing quotient.  ``MIN``/``MAX`` use ``None`` as
the special ``NULL`` identity with ``acc(NULL, x) = x``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

__all__ = ["AggregateKind", "AggregateSpec", "spec_for", "AvgPair"]

#: The internal representation of an AVG value: a (sum, count) pair.
AvgPair = Tuple[float, int]


class AggregateKind(enum.Enum):
    """The five aggregate functions supported by the paper."""

    SUM = "sum"
    COUNT = "count"
    AVG = "avg"
    MIN = "min"
    MAX = "max"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()


def _acc_sum(x: Any, y: Any) -> Any:
    return x + y


def _acc_avg(x: AvgPair, y: AvgPair) -> AvgPair:
    return (x[0] + y[0], x[1] + y[1])


def _acc_min(x: Any, y: Any) -> Any:
    if x is None:
        return y
    if y is None:
        return x
    return x if x <= y else y


def _acc_max(x: Any, y: Any) -> Any:
    if x is None:
        return y
    if y is None:
        return x
    return x if x >= y else y


def _diff_sum(x: Any, y: Any) -> Any:
    return x - y


def _diff_avg(x: AvgPair, y: AvgPair) -> AvgPair:
    return (x[0] - y[0], x[1] - y[1])


@dataclass(frozen=True)
class AggregateSpec:
    """The full value algebra for one aggregate kind.

    Instances are immutable singletons obtained through :func:`spec_for`.
    Tree code is written purely against this interface, so the same
    SB-tree implementation serves all five kinds.
    """

    kind: AggregateKind
    v0: Any
    acc: Callable[[Any, Any], Any]
    #: ``None`` for MIN/MAX, which are not incrementally invertible.
    diff: Optional[Callable[[Any, Any], Any]]

    # ------------------------------------------------------------------
    @property
    def invertible(self) -> bool:
        """Whether deletions (negative effects) are supported."""
        return self.diff is not None

    def effect(self, base_value: Any) -> Any:
        """Effect of inserting a base tuple with value *base_value* (Sec 3.3)."""
        if self.kind is AggregateKind.COUNT:
            return 1
        if self.kind is AggregateKind.AVG:
            return (base_value, 1)
        return base_value

    def negated_effect(self, base_value: Any) -> Any:
        """Effect of deleting a base tuple with value *base_value* (Sec 3.4)."""
        if not self.invertible:
            raise ValueError(
                f"{self.kind} aggregates are not incrementally maintainable "
                "under deletions"
            )
        return self.diff(self.v0, self.effect(base_value))

    def eq(self, a: Any, b: Any) -> bool:
        """Value equality, used for the ``imerge`` compaction checks."""
        return a == b

    def finalize(self, value: Any) -> Any:
        """Convert an internal value to its user-facing form.

        AVG pairs become a float quotient (``None`` when the count is
        zero); MIN/MAX ``NULL`` becomes ``None``; everything else passes
        through unchanged.
        """
        if self.kind is AggregateKind.AVG:
            total, count = value
            if count == 0:
                return None
            return total / count
        return value

    def is_initial(self, value: Any) -> bool:
        """Whether *value* equals the initial value ``v0``."""
        return self.eq(value, self.v0)


_SPECS = {
    AggregateKind.SUM: AggregateSpec(AggregateKind.SUM, 0, _acc_sum, _diff_sum),
    AggregateKind.COUNT: AggregateSpec(AggregateKind.COUNT, 0, _acc_sum, _diff_sum),
    AggregateKind.AVG: AggregateSpec(AggregateKind.AVG, (0, 0), _acc_avg, _diff_avg),
    AggregateKind.MIN: AggregateSpec(AggregateKind.MIN, None, _acc_min, None),
    AggregateKind.MAX: AggregateSpec(AggregateKind.MAX, None, _acc_max, None),
}


def spec_for(kind) -> AggregateSpec:
    """Return the singleton :class:`AggregateSpec` for *kind*.

    *kind* may be an :class:`AggregateKind`, an existing spec (returned
    unchanged), or a case-insensitive name such as ``"sum"``.
    """
    if isinstance(kind, AggregateSpec):
        return kind
    if isinstance(kind, str):
        kind = AggregateKind(kind.lower())
    return _SPECS[kind]
