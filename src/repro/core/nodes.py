"""SB-tree / MSB-tree node model.

A node holds ``j`` contiguous time intervals (Figures 7 and 8 of the
paper) represented by ``j - 1`` stored time instants, ``j`` aggregate
values, and -- for interior nodes -- ``j`` child pointers.  MSB-tree
interior nodes additionally carry ``j`` "u" values (Section 4.3).

The interval boundaries of a node are *relative*: the outermost start and
end are inherited from the parent (ultimately from the ±infinite edges of
the time line), so they are never stored in the node itself.  Algorithms
thread the inherited ``(lo, hi)`` span through their recursion.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, List, Optional

from .intervals import Time

__all__ = ["NodeId", "Node"]

#: Opaque node identifier handed out by a node store.  The in-memory
#: store uses small integers; the paged store uses page numbers.
NodeId = int


@dataclass
class Node:
    """One SB-tree (or MSB-tree) node.

    Invariants (checked by ``repro.core.validate``):

    * ``len(values) == len(times) + 1``
    * interior nodes: ``len(children) == len(values)``;
      leaves: ``children == []``
    * ``times`` is strictly increasing and lies strictly inside the span
      inherited from the parent
    * MSB interior nodes: ``len(uvalues) == len(values)``;
      otherwise ``uvalues is None``
    """

    node_id: NodeId
    is_leaf: bool
    times: List[Time] = field(default_factory=list)
    values: List[Any] = field(default_factory=list)
    children: List[NodeId] = field(default_factory=list)
    uvalues: Optional[List[Any]] = None

    # ------------------------------------------------------------------
    @property
    def interval_count(self) -> int:
        """Number of time intervals held by this node."""
        return len(self.values)

    def find(self, t: Time) -> int:
        """Return the index ``i`` of the interval containing instant *t*.

        Interval ``i`` spans ``[times[i-1], times[i])`` with the inherited
        span at the edges, so the containing index is the number of stored
        instants ``<= t``.
        """
        return bisect.bisect_right(self.times, t)

    def bounds(self, i: int, lo: Time, hi: Time):
        """Return ``(start, end)`` of interval *i* given the inherited span."""
        start = self.times[i - 1] if i > 0 else lo
        end = self.times[i] if i < len(self.times) else hi
        return start, end

    def clone_shell(self, node_id: NodeId) -> "Node":
        """Return an empty node with the same shape flags under a new id."""
        return Node(
            node_id=node_id,
            is_leaf=self.is_leaf,
            uvalues=[] if self.uvalues is not None else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "node"
        extra = f" u={self.uvalues}" if self.uvalues is not None else ""
        return (
            f"<{kind} #{self.node_id} t={self.times} v={self.values}"
            f"{' c=' + str(self.children) if not self.is_leaf else ''}{extra}>"
        )
