"""Benchmark harness helpers.

The paper's evaluation (Figure 23) compares algorithms by asymptotic
cost: compute time, update time, lookup time.  The benchmarks regenerate
those comparisons empirically as printed series tables: one row per
input size (or parameter value), one column per algorithm, plus a
fitted log-log scaling exponent per column so the O(n^2)-vs-O(n log n)
and O(n)-vs-O(log n) separations are visible at a glance.

Wall-clock timings are used for the printed series; the accompanying
pytest assertions rely on deterministic operation counters (node reads,
rows touched, tree depth) wherever possible, so the suite stays robust
on noisy machines.
"""

from __future__ import annotations

import json
import math
import os
import re
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "time_call",
    "fit_exponent",
    "format_table",
    "Series",
    "geometric_sizes",
    "scaled",
    "slugify",
    "write_bench_json",
]


def scaled(n: int) -> int:
    """Scale a benchmark sweep size by the REPRO_BENCH_SCALE env var."""
    return n * max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


def time_call(fn: Callable[[], Any], *, repeat: int = 1) -> float:
    """Return the best-of-*repeat* wall-clock seconds for ``fn()``."""
    best = math.inf
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def fit_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    ~1 for linear scaling, ~2 for quadratic, ~0 for constant; n log n
    lands slightly above 1.  Non-positive measurements are clamped to a
    tiny epsilon so cold-cache zeros do not blow up the fit.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    return sxy / sxx if sxx else 0.0


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned plain-text table (the printed benchmark series)."""
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000 or abs(cell) < 0.001:
                return f"{cell:.3e}"
            return f"{cell:.4f}" if abs(cell) < 1 else f"{cell:.2f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def geometric_sizes(base: int, count: int, factor: int = 2) -> List[int]:
    """``[base, base*factor, ...]`` -- the sweep sizes for scaling fits."""
    return [base * factor**i for i in range(count)]


def slugify(title: str) -> str:
    """Filesystem-safe slug for a benchmark title."""
    return re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")


class Series:
    """A sweep result: x values plus one named measurement column each."""

    def __init__(self, x_name: str, xs: Sequence[float]) -> None:
        self.x_name = x_name
        self.xs = list(xs)
        self.columns: Dict[str, List[float]] = {}

    def add(self, name: str, ys: Sequence[float]) -> None:
        if len(ys) != len(self.xs):
            raise ValueError(f"column {name!r} has {len(ys)} points, expected {len(self.xs)}")
        self.columns[name] = list(ys)

    def exponent(self, name: str) -> float:
        return fit_exponent(self.xs, self.columns[name])

    def _safe_exponent(self, name: str) -> Optional[float]:
        try:
            return round(self.exponent(name), 4)
        except (ValueError, ZeroDivisionError):
            return None

    def to_records(self, title: Optional[str] = None) -> List[Dict[str, Any]]:
        """Flat machine-readable records: one per (x, column) data point."""
        records = []
        for name, ys in self.columns.items():
            for x, y in zip(self.xs, ys):
                record: Dict[str, Any] = {
                    "x_name": self.x_name,
                    "x": x,
                    "series": name,
                    "value": y,
                }
                if title is not None:
                    record["benchmark"] = title
                records.append(record)
        return records

    def to_dict(self, title: Optional[str] = None) -> Dict[str, Any]:
        """Structured form of the whole sweep, exponents included."""
        payload: Dict[str, Any] = {
            "x_name": self.x_name,
            "xs": self.xs,
            "columns": dict(self.columns),
            "exponents": {name: self._safe_exponent(name) for name in self.columns},
        }
        if title is not None:
            payload["title"] = title
        return payload

    def render(self, *, with_exponents: bool = True) -> str:
        headers = [self.x_name] + list(self.columns)
        rows: List[List[Any]] = []
        for i, x in enumerate(self.xs):
            rows.append([x] + [self.columns[c][i] for c in self.columns])
        if with_exponents:
            rows.append(
                ["~n^"] + [round(self.exponent(c), 2) for c in self.columns]
            )
        return format_table(headers, rows)


def write_bench_json(
    directory: str,
    title: str,
    series: Series,
    *,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Write a benchmark sweep as ``BENCH_<slug>.json`` under *directory*.

    The file carries both the structured sweep (``series``) and the flat
    per-point ``records`` list, so downstream tooling can pick whichever
    shape is easier to ingest.  ``extra`` adds a free-form payload (e.g.
    the service load generator's throughput and verification summary)
    under an ``"extra"`` key.  Returns the path written.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{slugify(title)}.json")
    payload = {
        "title": title,
        "series": series.to_dict(),
        "records": series.to_records(title),
    }
    if extra is not None:
        payload["extra"] = extra
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
