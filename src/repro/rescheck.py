"""End-to-end resilience checking for the service layer.

:mod:`repro.crashcheck` proves the *storage* contract (any crash
instant, reopening yields the last commit).  This harness proves the
*service* contract on top of it -- **every acked write is applied
exactly once, durably** -- with no mocks anywhere in the path:

1. A real :class:`~repro.service.server.TemporalAggregateServer` runs
   in a *child process* (so it can be killed with ``SIGKILL``, not
   politely cancelled), serving a single-shard SB-tree on a journaled
   page file with idempotency dedup enabled.
2. A :class:`~repro.service.chaos.ChaosProxy` sits between the clients
   and the server, dropping, delaying, duplicating, and truncating
   frames and killing connections, all seeded and counted.
3. *Patient* exactly-once writers
   (:func:`repro.service.loadgen.run_patient_writes`) drive inserts
   through the proxy, retrying each write under its original
   idempotency key until it is acked.
4. Mid-run, the server process is SIGKILLed and restarted on the same
   port -- the dedup window and the tree recover together from the
   journaled page file.
5. After the run, the page file is reopened directly (triggering
   journal rollback, exactly as crashcheck does) and the recovered
   tree must equal the :mod:`repro.core.reference` oracle over the
   *acked* facts -- every acked write present exactly once, every
   unacked duplicate absent -- and pass the full structural audit of
   :func:`repro.core.validate.check_tree`.

A double-applied retry shows up as a SUM mismatch; a lost acked write
shows up the same way; dedup state that failed to survive the restart
shows up as a double apply on the post-restart retries.  The summary
is written as ``BENCH_resilience.json``.

Run it from the command line (also installed as ``repro-rescheck``)::

    python -m repro.rescheck                # full chaos sweep + 1 kill
    python -m repro.rescheck --quick        # bounded variant for CI
    python -m repro.rescheck --seed 7 --writes 800 --kill-after 4

Exit status is non-zero if any acked write was lost or double-applied,
if any write never acked, or if the run injected fewer faults /
restarts than required.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import random
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from . import benchlib
from .core import reference
from .core.sbtree import SBTree
from .core.validate import check_tree
from .service.chaos import ChaosPlan, ChaosProxy
from .service.client import ServiceClient
from .service.loadgen import PatientWriteResult, run_patient_writes
from .sharding import ShardedTree
from .storage import PagedNodeStore

__all__ = ["RescheckResult", "run_rescheck", "main"]

_KIND = "sum"
_SPAN = (0, 100_000)

#: Default chaos plan: duplication-heavy (duplicates are cheap to
#: inject and exercise both dedup directions), with enough drops,
#: delays, truncations, and kills to cover every retry path.
DEFAULT_PLAN = ChaosPlan(
    drop=0.01,
    delay=0.04,
    delay_range=(0.001, 0.015),
    duplicate=0.22,
    truncate=0.004,
    kill=0.002,
)


# ----------------------------------------------------------------------
# Child process: the killable server
# ----------------------------------------------------------------------
def _serve_child(args: argparse.Namespace) -> int:
    """Entry point of the ``--serve-child`` subprocess.

    Opens (or reopens, after a kill) the journaled page file, restores
    the dedup window from its header metadata, and serves until killed.
    With ``--replica-of`` the child starts as a follower of that
    address (usually the replication-link chaos proxy).
    """
    from .service.server import TemporalAggregateServer

    store = PagedNodeStore(args.path, _KIND, journaled=True)
    sharded = ShardedTree(_KIND, [], stores=[store])

    async def run() -> None:
        server = TemporalAggregateServer(
            sharded,
            host="127.0.0.1",
            port=args.port,
            batch_max=args.batch_max,
            batch_delay=args.batch_delay,
            dedup_window=256,
            replica_of=args.replica_of or None,
            replica_name=args.replica_name or None,
            repl_ack_timeout=args.repl_ack_timeout,
        )
        await server.start()
        sys.stdout.write(f"READY {server.port}\n")
        sys.stdout.flush()
        await server.serve_forever()

    asyncio.run(run())
    return 0


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_server(
    path: str,
    port: int,
    *,
    batch_max: int,
    batch_delay: float,
    replica_of: Optional[str] = None,
    replica_name: Optional[str] = None,
    repl_ack_timeout: float = 5.0,
    log_path: Optional[str] = None,
) -> subprocess.Popen:
    command = [
        sys.executable,
        "-m",
        "repro.rescheck",
        "--serve-child",
        "--path",
        path,
        "--port",
        str(port),
        "--batch-max",
        str(batch_max),
        "--batch-delay",
        str(batch_delay),
        "--repl-ack-timeout",
        str(repl_ack_timeout),
    ]
    if replica_of:
        command += ["--replica-of", replica_of]
    if replica_name:
        command += ["--replica-name", replica_name]
    # Child output goes to a per-incarnation log file (appended across
    # kill+restart cycles of the same path) so a red run can be
    # diagnosed from the console; see RescheckResult.render().
    if log_path is not None:
        log = open(log_path, "ab")
    else:
        log = subprocess.DEVNULL
    try:
        proc = subprocess.Popen(
            command,
            stdout=log,
            stderr=log,
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        )
    finally:
        if log is not subprocess.DEVNULL:
            log.close()  # the child holds its own descriptor
    return proc


def _wait_ready(port: int, proc: subprocess.Popen, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server child exited early with code {proc.returncode}"
            )
        try:
            with ServiceClient("127.0.0.1", port, timeout=1.0, retries=0) as svc:
                if svc.ping():
                    return
        except Exception:
            time.sleep(0.05)
    raise RuntimeError(f"server on port {port} not ready within {timeout}s")


def _replication_stats(port: int) -> Dict[str, Any]:
    with ServiceClient("127.0.0.1", port, timeout=1.0, retries=0) as svc:
        return (svc.stats() or {}).get("replication") or {}


def _wait_subscribed(port: int, count: int, timeout: float = 20.0) -> None:
    """Block until the primary on *port* reports *count* live replicas."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            replicas = _replication_stats(port).get("replicas") or []
            if sum(1 for r in replicas if r.get("connected")) >= count:
                return
        except Exception:
            pass
        time.sleep(0.1)
    raise RuntimeError(
        f"{count} replica(s) did not subscribe to :{port} within {timeout}s"
    )


def _wait_applied(port: int, commit: int, timeout: float = 20.0) -> None:
    """Block until the replica on *port* has applied *commit*."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if int(_replication_stats(port).get("applied", -1)) >= commit:
                return
        except Exception:
            pass
        time.sleep(0.05)
    raise RuntimeError(
        f"replica :{port} did not reach commit {commit} within {timeout}s"
    )


def _promote(port: int, timeout: float = 20.0) -> Dict[str, Any]:
    """Promote the replica on *port*, retrying until it claims primaryhood."""
    deadline = time.monotonic() + timeout
    last: Optional[BaseException] = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(
                "127.0.0.1", port, timeout=8.0, retries=0
            ) as svc:
                result = svc._request("promote")
                if result.get("promoted") or result.get("role") == "primary":
                    return result
        except Exception as exc:  # noqa: BLE001 - retried until deadline
            last = exc
        time.sleep(0.1)
    raise RuntimeError(f"promotion of 127.0.0.1:{port} failed: {last!r}")


# ----------------------------------------------------------------------
# The view failover drill
# ----------------------------------------------------------------------
#: The view suite the ``--views`` drill declares on the primary: a
#: grouped SUM, an ungrouped SUM stacked on it (view-over-view), and a
#: COUNT, all over one shipped base table.
_VIEW_TABLE = "vr_obs"
_VIEW_SUITE = (
    ("vr_by_k", [_VIEW_TABLE], "sum", "k"),
    ("vr_total", ["vr_by_k"], "sum", None),
    ("vr_count", [_VIEW_TABLE], "count", None),
)


def _setup_views(port: int, seed: int) -> List[Tuple[Any, Tuple[float, float], str]]:
    """Declare the drill's views and ingest acked base rows (no chaos).

    Goes straight to the primary -- the point is to verify *shipping*
    of the catalog down the (chaotic) replication link, so the writes
    themselves must be deterministic.  Returns the ingested rows for
    the recompute oracle.
    """
    rng = random.Random(seed + 31)
    rows: List[List[Any]] = []
    facts: List[Tuple[Any, Tuple[float, float], str]] = []
    for _ in range(40):
        value = rng.randint(1, 9)
        start = round(rng.uniform(_SPAN[0], _SPAN[1] - 600), 3)
        end = round(start + rng.uniform(1.0, 500.0), 3)
        key = rng.choice("abc")
        rows.append([value, start, end, {"k": key}])
        facts.append((value, (start, end), key))
    with ServiceClient("127.0.0.1", port, timeout=5.0, retries=3) as svc:
        for name, over, agg, key in _VIEW_SUITE:
            svc.create_view(name, over, agg, key=key, lag="downstream")
        svc.table_insert(_VIEW_TABLE, rows)
    return facts


def _expected_view(
    kind: str,
    facts: List[Tuple[Any, Tuple[float, float], str]],
    t: float,
    key: Optional[str],
) -> Any:
    active = [(v, k) for v, (s, e), k in facts if s <= t < e]
    if kind == "count":
        return len(active)
    if key is not None:
        return sum(v for v, k in active if k == key)
    return sum(v for v, _ in active)


def _verify_views(
    port: int, facts: List[Tuple[Any, Tuple[float, float], str]]
) -> Tuple[bool, str, int]:
    """Every drill view on the promoted node vs the recompute oracle.

    Probes each view at the segment boundaries of the ingested rows
    (plus midpoints), where an off-by-one in replay or a double-applied
    shipped event is most visible.  ``lag="downstream"`` means each
    read refreshes on demand, so the readings reflect every applied
    event with no tick-timing dependence.
    """
    instants: List[float] = []
    for _, (start, end), _ in facts[:12]:
        instants.extend((start, (start + end) / 2.0))
    instants.append(float(_SPAN[0]))
    checked = 0
    try:
        with ServiceClient("127.0.0.1", port, timeout=5.0, retries=3) as svc:
            names = set((svc.view_stats().get("views") or {}))
            for name, _, agg, key_field in _VIEW_SUITE:
                if name not in names:
                    return (
                        False,
                        f"view {name!r} is missing from the promoted "
                        f"primary's catalog",
                        checked,
                    )
                keys = ("a", "b", "c") if key_field else (None,)
                for t in instants:
                    for key in keys:
                        got = svc.query_view(name, t, key=key)["value"]
                        want = _expected_view(agg, facts, t, key)
                        if got != want:
                            return (
                                False,
                                f"view {name!r} at t={t} key={key!r}: "
                                f"promoted primary answered {got!r}, "
                                f"recompute oracle says {want!r}",
                                checked,
                            )
                        checked += 1
    except Exception as exc:  # noqa: BLE001 - report, don't crash the run
        return False, f"view verification failed: {exc!r}", checked
    return True, "", checked


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
@dataclass
class RescheckResult:
    """Outcome of one end-to-end resilience run."""

    ok: bool = False
    detail: str = ""
    seed: int = 0
    codec: str = "auto"
    duration_s: float = 0.0
    injected: Dict[str, int] = field(default_factory=dict)
    total_injected: int = 0
    min_faults: int = 0
    restarts: int = 0
    proxy_connections: int = 0
    writes: Optional[PatientWriteResult] = None
    recovered_rows: int = 0
    replicas: int = 0
    failovers: int = 0
    repl_injected: Dict[str, int] = field(default_factory=dict)
    #: Pre-failover idempotency key replayed against the promoted
    #: primary: True iff it answered ``duplicate=true`` (exactly-once
    #: survived the failover).  None when no failover ran.
    failover_dedup_ok: Optional[bool] = None
    #: View failover drill: number of dynamic views verified against
    #: the recompute oracle on the promoted primary, and whether every
    #: probed reading matched.  None when the drill did not run.
    views_verified: int = 0
    views_ok: Optional[bool] = None
    view_drill: bool = False
    plan: Optional[ChaosPlan] = None
    log_paths: List[str] = field(default_factory=list)

    def extra(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "ok": self.ok,
            "detail": self.detail,
            "seed": self.seed,
            "codec": self.codec,
            "kind": _KIND,
            "duration_s": round(self.duration_s, 6),
            "faults": {
                "injected": dict(self.injected),
                "total": self.total_injected,
                "required": self.min_faults,
            },
            "server_restarts": self.restarts,
            "proxy_connections": self.proxy_connections,
            "recovered_rows": self.recovered_rows,
        }
        if self.replicas:
            payload["replication"] = {
                "replicas": self.replicas,
                "failovers": self.failovers,
                "repl_link_faults": dict(self.repl_injected),
                "failover_dedup_ok": self.failover_dedup_ok,
            }
            if self.view_drill:
                payload["replication"]["views"] = {
                    "verified": self.views_verified,
                    "ok": self.views_ok,
                }
        if self.writes is not None:
            payload["writes"] = self.writes.extra()
        return payload

    def series(self) -> benchlib.Series:
        series = benchlib.Series("run", [1])
        series.add("faults_injected", [self.total_injected])
        series.add("server_restarts", [self.restarts])
        if self.writes is not None:
            series.add("acked_writes", [self.writes.acked])
            series.add("attempts", [self.writes.attempts])
            series.add("duplicate_acks", [self.writes.duplicate_acks])
        return series

    def render(self) -> str:
        status = "OK" if self.ok else "FAILED"
        w = self.writes
        lines = [
            f"rescheck: {status} seed={self.seed} codec={self.codec}"
            f" duration={self.duration_s:.1f}s",
            f"  faults injected: {self.total_injected}"
            f" (need >= {self.min_faults}): "
            + ", ".join(
                f"{k}={v}" for k, v in sorted(self.injected.items())
            ),
            f"  server kills+restarts: {self.restarts}",
        ]
        if self.replicas:
            dedup = (
                "n/a" if self.failover_dedup_ok is None
                else ("OK" if self.failover_dedup_ok else "BROKEN")
            )
            lines.append(
                f"  replicas: {self.replicas},"
                f" failovers: {self.failovers},"
                f" repl-link faults: "
                + (
                    ", ".join(
                        f"{k}={v}"
                        for k, v in sorted(self.repl_injected.items())
                    )
                    or "none"
                )
                + f", cross-failover dedup: {dedup}"
            )
            if self.view_drill:
                shown = (
                    "n/a" if self.views_ok is None
                    else ("OK" if self.views_ok else "BROKEN")
                )
                lines.append(
                    f"  views: {self.views_verified} verified against the"
                    f" recompute oracle post-failover: {shown}"
                )
        if w is not None:
            lines.append(
                f"  writes: {w.acked} acked in {w.attempts} attempts,"
                f" {w.duplicate_acks} duplicate acks,"
                f" {w.transport_errors} transport errors,"
                f" {w.retryable_rejections} retryable rejections,"
                f" {w.unacked} unacked"
            )
        lines.append(
            f"  recovered tree: {self.recovered_rows} rows"
            + (f" -- {self.detail}" if self.detail else "")
        )
        if not self.ok:
            # Everything needed to reproduce and diagnose the red run
            # from the console alone: the seed, the exact chaos plan,
            # and where each child server wrote its output.
            plan = self.plan or DEFAULT_PLAN
            lines.append(
                f"  repro: --seed {self.seed} --codec {self.codec}"
                f" --drop {plan.drop} --delay {plan.delay}"
                f" --duplicate {plan.duplicate} --truncate {plan.truncate}"
                f" --kill {plan.kill}"
                + (f" --replicas {self.replicas}" if self.replicas else "")
                + (" --views" if self.view_drill else "")
            )
            if self.log_paths:
                lines.append("  server logs:")
                lines.extend(f"    {path}" for path in self.log_paths)
        return "\n".join(lines)


def _verify_final(
    path: str, facts: List[Tuple[Any, Tuple[int, int]]]
) -> Tuple[bool, str, int]:
    """Reopen the page file (journal rollback) and diff vs the oracle."""
    try:
        store = PagedNodeStore(path, _KIND, journaled=True)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the run
        return False, f"final reopen failed: {exc!r}", 0
    try:
        tree = SBTree(store=store)
        recovered = tree.to_table()
        want = reference.instantaneous_table(facts, _KIND)
        if recovered != want:
            return (
                False,
                f"recovered table diverges from the acked-facts oracle "
                f"({len(facts)} acked facts, {len(recovered)} recovered "
                f"rows vs {len(want)} expected) -- an acked write was "
                f"lost or applied more than once",
                len(recovered),
            )
        check_tree(tree)
        return True, "", len(recovered)
    except Exception as exc:  # noqa: BLE001
        return False, f"recovered tree is unusable: {exc!r}", 0
    finally:
        try:
            store.close()
        except Exception:  # noqa: BLE001 - best effort
            pass


def run_rescheck(
    *,
    seed: int = 0,
    connections: int = 4,
    writes_per_connection: int = 250,
    plan: Optional[ChaosPlan] = None,
    kill_after: float = 2.5,
    restarts: int = 1,
    replicas: int = 0,
    views: bool = False,
    min_faults: int = 500,
    client_timeout: float = 0.4,
    give_up_after: float = 90.0,
    batch_max: int = 16,
    batch_delay: float = 0.002,
    codec: str = "auto",
    out_dir: Optional[str] = None,
    workdir: Optional[str] = None,
) -> RescheckResult:
    """Run the full chaos + kill/restart + exactly-once verification.

    Returns a :class:`RescheckResult`; ``ok`` requires *all* of:

    * the recovered tree equals the acked-facts oracle (exactly once),
    * it passes the structural audit,
    * every write acked (no indeterminate outcomes left behind),
    * at least ``min_faults`` faults were injected,
    * the server was killed and restarted ``restarts`` times.

    With ``replicas > 0`` the kill schedule becomes a **failover**: the
    primary streams its journal to ``replicas`` followers through a
    second chaos proxy on the replication link, the primary is
    SIGKILLed mid-run and *never restarted*, replica 0 is promoted and
    the client proxy retargeted at it (a VIP flip), and the run
    verifies the *promoted* server's page file against the acked-facts
    oracle -- plus replays a pre-failover idempotency key against the
    new primary, which must answer ``duplicate=true``.

    With ``views=True`` (requires ``replicas > 0``) the run also
    declares a suite of dynamic views and ingests acked base-table
    rows on the primary before the chaos window opens; the catalog
    mutations ship down the (chaotic) replication link as view events,
    and after the failover every view on the promoted primary must
    answer the recompute oracle exactly -- a missing view, a lost
    shipped row, or a double-applied replay all show up as a mismatch.
    """
    plan = plan or DEFAULT_PLAN
    if views and replicas <= 0:
        raise ValueError("views=True requires replicas > 0")
    result = RescheckResult(
        seed=seed, codec=codec, min_faults=min_faults, plan=plan,
        replicas=replicas, view_drill=views,
    )
    own_workdir = workdir is None
    if own_workdir:
        # Not TemporaryDirectory: a red run must leave the child-server
        # logs behind for the repro block in render().
        workdir = tempfile.mkdtemp(prefix="repro-rescheck-")
    assert workdir is not None
    path = os.path.join(workdir, "rescheck.sbt")
    primary_log = os.path.join(workdir, "primary.log")
    result.log_paths.append(primary_log)
    port = _free_port()
    started = time.perf_counter()
    proc = _spawn_server(
        path, port, batch_max=batch_max, batch_delay=batch_delay,
        log_path=primary_log,
    )
    proxy: Optional[ChaosProxy] = None
    repl_proxy: Optional[ChaosProxy] = None
    replica_procs: List[subprocess.Popen] = []
    replica_ports: List[int] = []
    replica_paths: List[str] = []
    probe_key: Optional[Tuple[str, int]] = None
    probe_fact = (7, (_SPAN[0] + 1, _SPAN[0] + 2))
    view_problem: Optional[str] = None
    try:
        _wait_ready(port, proc)
        if replicas > 0:
            # Chaos on the replication link too: followers subscribe to
            # the primary through their own fault-injecting proxy, with
            # an independent RNG stream.
            repl_proxy = ChaosProxy(
                "127.0.0.1", port, plan=plan, seed=seed + 7919
            ).start()
            for i in range(replicas):
                rport = _free_port()
                rpath = os.path.join(workdir, f"replica{i}.sbt")
                rlog = os.path.join(workdir, f"replica{i}.log")
                result.log_paths.append(rlog)
                replica_ports.append(rport)
                replica_paths.append(rpath)
                replica_procs.append(
                    _spawn_server(
                        rpath, rport,
                        batch_max=batch_max, batch_delay=batch_delay,
                        replica_of=f"127.0.0.1:{repl_proxy.port}",
                        replica_name=f"127.0.0.1:{rport}",
                        log_path=rlog,
                    )
                )
            for rport, rproc in zip(replica_ports, replica_procs):
                _wait_ready(rport, rproc)
            _wait_subscribed(port, replicas)

        proxy = ChaosProxy("127.0.0.1", port, plan=plan, seed=seed).start()

        if replicas > 0:
            # A probe write whose idempotency key we will replay against
            # the promoted primary after the failover.  Sent straight to
            # the primary (not through chaos) and confirmed applied on
            # replica 0 before the kill slot opens, so the replay below
            # tests the dedup window's survival, not the link's luck.
            probe_key = (f"failover-probe-{seed}", 1)
            with ServiceClient(
                "127.0.0.1", port, timeout=2.0, retries=3,
                client_id=probe_key[0],
            ) as svc:
                svc.insert_result(
                    probe_fact[0], probe_fact[1][0], probe_fact[1][1],
                    seq=probe_key[1],
                )
            commit = int(_replication_stats(port).get("commit", 0))
            _wait_applied(replica_ports[0], commit)

        view_facts: List[Tuple[Any, Tuple[float, float], str]] = []
        if views and replicas > 0:
            # The catalog mutations themselves are acked before the
            # client-side chaos window opens, so the post-failover
            # oracle is exact; they still ship through the chaotic
            # replication link, which is the path under test.
            view_facts = _setup_views(port, seed)
            commit = int(_replication_stats(port).get("commit", 0))
            _wait_applied(replica_ports[0], commit)

        writes_done = threading.Event()
        write_box: Dict[str, Any] = {}

        def drive() -> None:
            try:
                write_box["result"] = run_patient_writes(
                    proxy.host,
                    proxy.port,
                    connections=connections,
                    writes_per_connection=writes_per_connection,
                    span=_SPAN,
                    seed=seed,
                    timeout=client_timeout,
                    give_up_after=give_up_after,
                    codec=codec,
                )
            except BaseException as exc:  # noqa: BLE001
                write_box["error"] = exc
            finally:
                writes_done.set()

        writer = threading.Thread(target=drive, name="rescheck-drive", daemon=True)
        writer.start()

        if replicas > 0:
            # The failover schedule: SIGKILL the primary mid-run (it
            # stays dead), flip the client proxy to replica 0 -- the
            # stable-address move a VIP would make -- and promote it.
            # Writers see not_primary until the promotion lands and
            # wait it out under their original idempotency keys.
            if not writes_done.wait(timeout=kill_after):
                proc.kill()
                proc.wait()
                result.restarts += 1
                new_primary = replica_ports[0]
                proxy.retarget("127.0.0.1", new_primary)
                _promote(new_primary)
                result.failovers += 1
                if repl_proxy is not None:
                    # Best effort: surviving replicas re-subscribe to
                    # the promoted primary (those too far behind its
                    # fresh log base are refused and would need a
                    # re-seed; the harness does not assert on them).
                    repl_proxy.retarget("127.0.0.1", new_primary)
        else:
            # The kill schedule: SIGKILL the server mid-run, restart it
            # on the same port, `restarts` times.  The patient writers
            # ride through the outage; the dedup window rides through
            # it in the page file header.
            for _ in range(restarts):
                if writes_done.wait(timeout=kill_after):
                    break  # run finished before this kill slot
                proc.kill()
                proc.wait()
                result.restarts += 1
                proc = _spawn_server(
                    path, port, batch_max=batch_max, batch_delay=batch_delay,
                    log_path=primary_log,
                )
                _wait_ready(port, proc)

        writer.join()
        if "error" in write_box:
            raise write_box["error"]
        result.writes = write_box["result"]

        if replicas > 0 and result.failovers and probe_key is not None:
            # Exactly-once across the failover boundary: replaying the
            # pre-failover key against the promoted primary must be
            # answered from its dedup window, not applied again.
            try:
                with ServiceClient(
                    "127.0.0.1", replica_ports[0], timeout=2.0, retries=3,
                    client_id=probe_key[0],
                ) as svc:
                    replay = svc.insert_result(
                        probe_fact[0], probe_fact[1][0], probe_fact[1][1],
                        seq=probe_key[1],
                    )
                result.failover_dedup_ok = bool(replay.get("duplicate"))
            except Exception:  # noqa: BLE001 - counted as a failure below
                result.failover_dedup_ok = False

        if views and replicas > 0 and result.failovers:
            views_ok, view_problem, checked = _verify_views(
                replica_ports[0], view_facts
            )
            result.views_ok = views_ok
            result.views_verified = checked

        result.proxy_connections = proxy.connections
        result.injected = dict(proxy.injected)
        if repl_proxy is not None:
            result.repl_injected = dict(repl_proxy.injected)
        result.total_injected = proxy.total_injected + sum(
            result.repl_injected.values()
        )
    finally:
        if proxy is not None:
            proxy.stop()
        if repl_proxy is not None:
            repl_proxy.stop()
        proc.kill()
        proc.wait()
        for rproc in replica_procs:
            rproc.kill()
            rproc.wait()
        result.duration_s = time.perf_counter() - started

    # With a failover the survivor of record is the promoted replica:
    # its page file must contain every acked fact exactly once --
    # including the probe write, which the oracle therefore includes.
    verify_path = path
    facts = list(result.writes.facts)
    if replicas > 0 and result.failovers:
        verify_path = replica_paths[0]
        facts.append(probe_fact)
    ok, detail, rows = _verify_final(verify_path, facts)
    result.recovered_rows = rows
    problems: List[str] = []
    if not ok:
        problems.append(detail)
    if result.writes.unacked:
        problems.append(
            f"{result.writes.unacked} writes never acked (indeterminate)"
        )
    if result.total_injected < min_faults:
        problems.append(
            f"only {result.total_injected} faults injected"
            f" (need >= {min_faults}); raise probabilities or write count"
        )
    if replicas > 0:
        if result.failovers < 1:
            problems.append(
                "no failover happened (run finished too fast; "
                "lower --kill-after)"
            )
        elif result.failover_dedup_ok is not True:
            problems.append(
                "pre-failover idempotency key was NOT deduplicated by "
                "the promoted primary (exactly-once broken across "
                "failover)"
            )
        if not result.repl_injected:
            problems.append(
                "no faults were injected on the replication link"
            )
        if views:
            if result.views_ok is None and result.failovers:
                problems.append("view verification never ran")
            elif result.views_ok is False:
                problems.append(
                    view_problem
                    or "a view on the promoted primary diverged from "
                    "the recompute oracle"
                )
    elif result.restarts < restarts:
        problems.append(
            f"only {result.restarts}/{restarts} server kills happened"
            f" (run finished too fast; lower --kill-after)"
        )
    result.ok = not problems
    result.detail = "; ".join(problems)

    if out_dir is not None:
        benchlib.write_bench_json(
            out_dir, "resilience", result.series(), extra=result.extra()
        )
    if own_workdir and result.ok:
        shutil.rmtree(workdir, ignore_errors=True)
    return result


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-rescheck",
        description="Drive exactly-once writes through a chaos proxy "
        "against a SIGKILLed-and-restarted server; verify no acked "
        "write is lost or double-applied.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--writes", type=int, default=250,
                        help="writes per connection")
    parser.add_argument("--kill-after", type=float, default=2.5,
                        help="seconds before each server SIGKILL")
    parser.add_argument("--restarts", type=int, default=1,
                        help="number of kill+restart cycles")
    parser.add_argument("--replicas", type=int, default=0,
                        help="run N journal-shipping read replicas, "
                        "SIGKILL the primary mid-run (no restart), "
                        "promote replica 0, and verify the promoted "
                        "server -- including dedup across the failover")
    parser.add_argument("--views", action="store_true",
                        help="with --replicas: declare dynamic views and "
                        "ingest base-table rows before the chaos window, "
                        "then verify every view on the promoted primary "
                        "against a recompute oracle after the failover")
    parser.add_argument("--min-faults", type=int, default=500,
                        help="fail unless at least this many faults injected")
    parser.add_argument("--drop", type=float, default=DEFAULT_PLAN.drop)
    parser.add_argument("--delay", type=float, default=DEFAULT_PLAN.delay)
    parser.add_argument("--duplicate", type=float,
                        default=DEFAULT_PLAN.duplicate)
    parser.add_argument("--truncate", type=float,
                        default=DEFAULT_PLAN.truncate)
    parser.add_argument("--kill", type=float, default=DEFAULT_PLAN.kill)
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_resilience.json "
                        "(with --codec both, the binary run is recorded)")
    parser.add_argument("--codec", default="auto",
                        choices=("auto", "json", "binary", "both"),
                        help="wire codec for the patient writers; 'both' "
                        "runs the full harness once per codec")
    parser.add_argument("--quick", action="store_true",
                        help="bounded variant for CI: fewer writes, "
                        "lower fault floor")
    # Child-process mode (internal).
    parser.add_argument("--serve-child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--path", help=argparse.SUPPRESS)
    parser.add_argument("--port", type=int, default=0, help=argparse.SUPPRESS)
    parser.add_argument("--batch-max", type=int, default=16,
                        help=argparse.SUPPRESS)
    parser.add_argument("--batch-delay", type=float, default=0.002,
                        help=argparse.SUPPRESS)
    parser.add_argument("--replica-of", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--replica-name", default=None,
                        help=argparse.SUPPRESS)
    # Generous semi-sync wait for harness children: a flush rides out
    # replication-link chaos (resubscribe takes ~2s worst case) instead
    # of degrading to async, so acked writes survive the failover.
    parser.add_argument("--repl-ack-timeout", type=float, default=5.0,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.serve_child:
        if not args.path or not args.port:
            parser.error("--serve-child needs --path and --port")
        return _serve_child(args)
    if args.views and args.replicas <= 0:
        parser.error("--views requires --replicas >= 1")

    kwargs: Dict[str, Any] = dict(
        seed=args.seed,
        connections=args.connections,
        writes_per_connection=args.writes,
        kill_after=args.kill_after,
        restarts=args.restarts,
        replicas=args.replicas,
        views=args.views,
        min_faults=args.min_faults,
        plan=ChaosPlan(
            drop=args.drop,
            delay=args.delay,
            duplicate=args.duplicate,
            truncate=args.truncate,
            kill=args.kill,
        ),
        out_dir=args.out,
        batch_max=args.batch_max,
        batch_delay=args.batch_delay,
    )
    if args.quick:
        kwargs.update(
            connections=3,
            writes_per_connection=60,
            min_faults=30,
            kill_after=1.0,
            give_up_after=45.0,
        )
    codecs = (
        ["json", "binary"] if args.codec == "both" else [args.codec]
    )
    all_ok = True
    for codec in codecs:
        run_kwargs = dict(kwargs, codec=codec)
        if args.codec == "both" and codec != "binary":
            run_kwargs["out_dir"] = None  # record the binary run
        result = run_rescheck(**run_kwargs)
        print(result.render())
        all_ok = all_ok and result.ok
    return 0 if all_ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
