"""Systematic crash-consistency checking for journaled page files.

The rollback journal's contract is simple to state and easy to get
wrong: *whatever instant the process dies at, reopening the file yields
exactly the last-committed aggregate*.  This harness proves it by
construction: it drives a journaled :class:`~repro.storage.PagedNodeStore`
through small insert / split / commit / compaction workloads while a
:class:`~repro.faults.FaultInjector` kills the "process" (raises
:class:`~repro.faults.SimulatedCrash`) at a chosen occurrence of a
chosen :data:`~repro.storage.pager.Pager.CRASH_POINTS` entry; it then
abandons the file handles, reopens the file -- triggering journal
rollback -- and verifies the recovered tree against the brute-force
:mod:`repro.core.reference` oracle over the facts committed so far.

A crash *inside* ``commit()`` is the one genuinely ambiguous case: the
transaction is durable if and only if the process died after the
journal deletion.  The harness therefore accepts either the
pre-commit or the post-commit fact set there -- but never anything in
between (atomicity), and the recovered tree must additionally pass the
full structural audit of :func:`repro.core.validate.check_tree`.

Run it from the command line (also installed as ``repro-crashcheck``)::

    python -m repro.crashcheck                 # full sweep, all workloads
    python -m repro.crashcheck --hits sample   # first/middle/last hit only
    python -m repro.crashcheck --workload split --verbose

Exit status is non-zero if any recovery diverged from the oracle.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from . import obs
from .core import reference
from .core.intervals import Interval
from .core.sbtree import SBTree
from .core.validate import check_tree
from .faults import FaultInjector, SimulatedCrash, simulate_crash
from .storage import PagedNodeStore
from .storage.pager import Pager

__all__ = [
    "CrashCheckResult",
    "WORKLOADS",
    "run_case",
    "sweep",
    "sweep_all",
    "main",
]

#: Geometry shared by every workload: small pages and tiny fanout force
#: splits, evictions, and multi-page transactions within a few dozen
#: inserts.
_PAGE_SIZE = 512
_BUFFER_CAPACITY = 4
_BRANCHING = 4
_LEAF_CAPACITY = 4
_KIND = "sum"


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
class WorkloadContext:
    """Drives one tree while tracking the committed-facts oracle.

    ``committed`` holds the facts as of the last *completed* commit;
    ``commit_pending`` holds the fact set a commit was asked to make
    durable while that commit is still in flight (the ambiguous window).
    """

    def __init__(self, tree: SBTree, store: PagedNodeStore) -> None:
        self.tree = tree
        self.store = store
        self.committed: List[Tuple[int, Interval]] = []
        self.pending: List[Tuple[str, int, Interval]] = []
        self.commit_pending: Optional[List[Tuple[int, Interval]]] = None

    def live(self) -> List[Tuple[int, Interval]]:
        facts = list(self.committed)
        for op, value, interval in self.pending:
            if op == "+":
                facts.append((value, interval))
            else:
                facts.remove((value, interval))
        return facts

    def insert(self, value: int, interval: Interval) -> None:
        self.tree.insert(value, interval)
        self.pending.append(("+", value, interval))

    def delete(self, value: int, interval: Interval) -> None:
        self.tree.delete(value, interval)
        self.pending.append(("-", value, interval))

    def commit(self) -> None:
        self.commit_pending = self.live()
        self.store.commit()
        self.committed = self.commit_pending
        self.commit_pending = None
        self.pending = []

    def compact(self) -> None:
        self.tree.compact()

    def oracles(self) -> List[List[Tuple[int, Interval]]]:
        """The fact sets the recovered file may legally equal."""
        accepted = [self.committed]
        if self.commit_pending is not None:
            accepted.append(self.commit_pending)
        return accepted


def _wl_insert(ctx: WorkloadContext) -> None:
    """Plain inserts with a mid-workload and a final commit."""
    for i in range(14):
        ctx.insert(i % 5 + 1, Interval(i * 3, i * 3 + 10))
        if i == 6:
            ctx.commit()
    ctx.commit()


def _wl_split(ctx: WorkloadContext) -> None:
    """Overlapping inserts dense enough to split leaves and the root."""
    for i in range(24):
        ctx.insert(i % 7 + 1, Interval(i * 2, i * 2 + 30))
    ctx.commit()
    for i in range(24, 40):
        ctx.insert(i % 7 + 1, Interval(i * 2, i * 2 + 30))
    ctx.commit()


def _wl_commit(ctx: WorkloadContext) -> None:
    """Many tiny transactions: the commit path is the hot path."""
    for i in range(10):
        ctx.insert(i + 1, Interval(i * 5, i * 5 + 12))
        ctx.commit()


def _wl_compact(ctx: WorkloadContext) -> None:
    """Inserts and deletions, then an explicit compaction pass."""
    facts = [(i % 4 + 1, Interval(i * 2, i * 2 + 20)) for i in range(20)]
    for value, interval in facts:
        ctx.insert(value, interval)
    ctx.commit()
    for value, interval in facts[::3]:
        ctx.delete(value, interval)
    ctx.compact()
    ctx.commit()


WORKLOADS: Dict[str, Callable[[WorkloadContext], None]] = {
    "insert": _wl_insert,
    "split": _wl_split,
    "commit": _wl_commit,
    "compact": _wl_compact,
}


# ----------------------------------------------------------------------
# One case: crash at (point, hit), recover, verify
# ----------------------------------------------------------------------
@dataclass
class CrashCheckResult:
    """Outcome of one crash-recovery case."""

    workload: str
    point: str
    hit: int
    crashed: bool
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        crash = f"crash@hit {self.hit}" if self.crashed else "no crash (point exhausted)"
        tail = f" -- {self.detail}" if self.detail else ""
        return f"[{status}] {self.workload:8s} {self.point:24s} {crash}{tail}"


def _open(path: str, faults: Optional[FaultInjector] = None):
    store = PagedNodeStore(
        path,
        _KIND,
        page_size=_PAGE_SIZE,
        buffer_capacity=_BUFFER_CAPACITY,
        journaled=True,
        faults=faults,
    )
    if store.get_root() is None:
        tree = SBTree(
            _KIND, store, branching=_BRANCHING, leaf_capacity=_LEAF_CAPACITY
        )
    else:
        tree = SBTree(store=store)
    return store, tree


def run_case(
    path: str, workload: str, point: str, hit: int
) -> CrashCheckResult:
    """Run one workload with a crash armed at (point, hit) and verify.

    The injector is attached only after the store exists and an empty
    baseline is committed, so the sweep targets the workload itself
    rather than file-creation noise.  Returns ``crashed=False`` when
    the workload finished before the point's *hit*-th occurrence --
    the sweep uses that as its termination signal.
    """
    for leftover in (path, path + "-journal"):
        if os.path.exists(leftover):
            os.remove(leftover)
    store, tree = _open(path)
    ctx = WorkloadContext(tree, store)
    ctx.commit()  # committed baseline: the empty tree
    injector = FaultInjector(seed=hit)
    injector.crash_at(point, hit=hit)
    store.pager.faults = injector
    crashed = False
    try:
        WORKLOADS[workload](ctx)
        store.pager.faults = None
        store.close()
    except SimulatedCrash:
        crashed = True
        simulate_crash(store)

    ok, detail = _verify_recovery(path, ctx)
    # Registry counters (no-ops unless repro.obs is enabled): long
    # crash sweeps report progress like every other subsystem.
    obs.count("crashcheck.cases")
    if crashed:
        obs.count("crashcheck.faults_injected")
    if ok:
        obs.count("crashcheck.cases_passed")
    return CrashCheckResult(workload, point, hit, crashed, ok, detail)


def _verify_recovery(path: str, ctx: WorkloadContext) -> Tuple[bool, str]:
    try:
        store, tree = _open(path)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        return False, f"reopen failed: {exc!r}"
    try:
        recovered = tree.to_table()
        for facts in ctx.oracles():
            if recovered == reference.instantaneous_table(facts, _KIND):
                check_tree(tree)
                return True, ""
        return False, (
            f"recovered table diverges from the committed oracle "
            f"({len(ctx.committed)} committed facts)"
        )
    except Exception as exc:  # noqa: BLE001
        return False, f"recovered tree is unusable: {exc!r}"
    finally:
        try:
            store.close()
        except Exception:  # noqa: BLE001 - best effort
            pass


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def _count_hits(path: str, workload: str) -> Dict[str, int]:
    """Dry run with a disarmed injector: how often is each point hit?"""
    for leftover in (path, path + "-journal"):
        if os.path.exists(leftover):
            os.remove(leftover)
    store, tree = _open(path)
    ctx = WorkloadContext(tree, store)
    ctx.commit()
    counter = FaultInjector()
    store.pager.faults = counter
    WORKLOADS[workload](ctx)
    store.pager.faults = None
    store.close()
    return dict(counter.hits)


def _hit_schedule(total: int, hits: Union[str, int]) -> List[int]:
    if total <= 0:
        return []
    if hits == "all":
        return list(range(1, total + 1))
    if hits == "sample":  # first, middle, last occurrence
        return sorted({1, (total + 1) // 2, total})
    return list(range(1, min(int(hits), total) + 1))


def sweep(
    workload: str,
    workdir: str,
    *,
    hits: Union[str, int] = "all",
    verbose: bool = False,
) -> List[CrashCheckResult]:
    """Crash one workload at every crash point (and chosen occurrences).

    ``hits`` is ``"all"`` (every occurrence of every point -- the
    exhaustive sweep), ``"sample"`` (first/middle/last occurrence), or
    an integer (the first N occurrences).
    """
    path = os.path.join(workdir, f"crashcheck-{workload}.sbt")
    occurrences = _count_hits(path, workload)
    results: List[CrashCheckResult] = []
    for point in Pager.CRASH_POINTS:
        for hit in _hit_schedule(occurrences.get(point, 0), hits):
            result = run_case(path, workload, point, hit)
            results.append(result)
            if verbose or not result.ok:
                print(result, flush=True)
    return results


def sweep_all(
    workdir: str,
    *,
    workloads: Optional[Sequence[str]] = None,
    hits: Union[str, int] = "all",
    verbose: bool = False,
) -> List[CrashCheckResult]:
    """Run :func:`sweep` for every (or the selected) workload."""
    results: List[CrashCheckResult] = []
    for name in workloads or sorted(WORKLOADS):
        results.extend(sweep(name, workdir, hits=hits, verbose=verbose))
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-crashcheck",
        description="Crash a journaled SB-tree at every labeled crash "
        "point and verify recovery against the reference oracle.",
    )
    parser.add_argument(
        "--workload",
        action="append",
        choices=sorted(WORKLOADS),
        help="restrict to one workload (repeatable; default: all)",
    )
    parser.add_argument(
        "--hits",
        default="all",
        help="'all' (exhaustive), 'sample' (first/middle/last), or a "
        "number N (first N occurrences per crash point)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print every case, not just failures"
    )
    args = parser.parse_args(argv)
    hits: Union[str, int] = args.hits
    if hits not in ("all", "sample"):
        try:
            hits = int(hits)
        except ValueError:
            parser.error("--hits must be 'all', 'sample', or an integer")

    with tempfile.TemporaryDirectory(prefix="repro-crashcheck-") as workdir:
        results = sweep_all(
            workdir, workloads=args.workload, hits=hits, verbose=args.verbose
        )
    crashes = sum(r.crashed for r in results)
    failures = [r for r in results if not r.ok]
    points = {r.point for r in results if r.crashed}
    print(
        f"\ncrashcheck: {len(results)} cases, {crashes} injected crashes "
        f"across {len(points)} crash points, {len(failures)} failures"
    )
    for failure in failures:
        print(f"  {failure}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
