"""Systematic crash-consistency checking for journaled page files.

The rollback journal's contract is simple to state and easy to get
wrong: *whatever instant the process dies at, reopening the file yields
exactly the last-committed aggregate*.  This harness proves it by
construction: it drives a journaled :class:`~repro.storage.PagedNodeStore`
through small insert / split / commit / compaction workloads while a
:class:`~repro.faults.FaultInjector` kills the "process" (raises
:class:`~repro.faults.SimulatedCrash`) at a chosen occurrence of a
chosen :data:`~repro.storage.pager.Pager.CRASH_POINTS` entry; it then
abandons the file handles, reopens the file -- triggering journal
rollback -- and verifies the recovered tree against the brute-force
:mod:`repro.core.reference` oracle over the facts committed so far.

A crash *inside* ``commit()`` is the one genuinely ambiguous case: the
transaction is durable if and only if the process died after the
journal deletion.  The harness therefore accepts either the
pre-commit or the post-commit fact set there -- but never anything in
between (atomicity), and the recovered tree must additionally pass the
full structural audit of :func:`repro.core.validate.check_tree`.

The same discipline applies to the dynamic-view catalog: ``--catalog``
sweeps :meth:`repro.warehouse.dynamic.DynamicCatalog.save` instead,
crashing at every :data:`~repro.warehouse.dynamic.CATALOG_CRASH_POINTS`
entry (plus a torn temp-file write and an fsync failure) of every
checkpoint a workload takes, then reopening the catalog and verifying
it restored exactly the previous (or, past the rename, the new)
checkpoint and still resumes incremental refresh to oracle equivalence.

Run it from the command line (also installed as ``repro-crashcheck``)::

    python -m repro.crashcheck                 # full sweep, all workloads
    python -m repro.crashcheck --hits sample   # first/middle/last hit only
    python -m repro.crashcheck --workload split --verbose
    python -m repro.crashcheck --catalog       # dynamic.json checkpoint sweep

Exit status is non-zero if any recovery diverged from the oracle.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from . import obs
from .core import reference
from .core.intervals import Interval
from .core.sbtree import SBTree
from .core.validate import check_tree
from .faults import FaultInjector, SimulatedCrash, simulate_crash
from .storage import PagedNodeStore
from .storage.pager import Pager
from .warehouse.dynamic import (
    CATALOG_CRASH_POINTS,
    CATALOG_WRITE_LABEL,
    DynamicCatalog,
)

__all__ = [
    "CrashCheckResult",
    "WORKLOADS",
    "CATALOG_WORKLOADS",
    "run_case",
    "run_catalog_case",
    "sweep",
    "sweep_all",
    "catalog_sweep",
    "catalog_sweep_all",
    "main",
]

#: Geometry shared by every workload: small pages and tiny fanout force
#: splits, evictions, and multi-page transactions within a few dozen
#: inserts.
_PAGE_SIZE = 512
_BUFFER_CAPACITY = 4
_BRANCHING = 4
_LEAF_CAPACITY = 4
_KIND = "sum"


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
class WorkloadContext:
    """Drives one tree while tracking the committed-facts oracle.

    ``committed`` holds the facts as of the last *completed* commit;
    ``commit_pending`` holds the fact set a commit was asked to make
    durable while that commit is still in flight (the ambiguous window).
    """

    def __init__(self, tree: SBTree, store: PagedNodeStore) -> None:
        self.tree = tree
        self.store = store
        self.committed: List[Tuple[int, Interval]] = []
        self.pending: List[Tuple[str, int, Interval]] = []
        self.commit_pending: Optional[List[Tuple[int, Interval]]] = None

    def live(self) -> List[Tuple[int, Interval]]:
        facts = list(self.committed)
        for op, value, interval in self.pending:
            if op == "+":
                facts.append((value, interval))
            else:
                facts.remove((value, interval))
        return facts

    def insert(self, value: int, interval: Interval) -> None:
        self.tree.insert(value, interval)
        self.pending.append(("+", value, interval))

    def delete(self, value: int, interval: Interval) -> None:
        self.tree.delete(value, interval)
        self.pending.append(("-", value, interval))

    def commit(self) -> None:
        self.commit_pending = self.live()
        self.store.commit()
        self.committed = self.commit_pending
        self.commit_pending = None
        self.pending = []

    def compact(self) -> None:
        self.tree.compact()

    def oracles(self) -> List[List[Tuple[int, Interval]]]:
        """The fact sets the recovered file may legally equal."""
        accepted = [self.committed]
        if self.commit_pending is not None:
            accepted.append(self.commit_pending)
        return accepted


def _wl_insert(ctx: WorkloadContext) -> None:
    """Plain inserts with a mid-workload and a final commit."""
    for i in range(14):
        ctx.insert(i % 5 + 1, Interval(i * 3, i * 3 + 10))
        if i == 6:
            ctx.commit()
    ctx.commit()


def _wl_split(ctx: WorkloadContext) -> None:
    """Overlapping inserts dense enough to split leaves and the root."""
    for i in range(24):
        ctx.insert(i % 7 + 1, Interval(i * 2, i * 2 + 30))
    ctx.commit()
    for i in range(24, 40):
        ctx.insert(i % 7 + 1, Interval(i * 2, i * 2 + 30))
    ctx.commit()


def _wl_commit(ctx: WorkloadContext) -> None:
    """Many tiny transactions: the commit path is the hot path."""
    for i in range(10):
        ctx.insert(i + 1, Interval(i * 5, i * 5 + 12))
        ctx.commit()


def _wl_compact(ctx: WorkloadContext) -> None:
    """Inserts and deletions, then an explicit compaction pass."""
    facts = [(i % 4 + 1, Interval(i * 2, i * 2 + 20)) for i in range(20)]
    for value, interval in facts:
        ctx.insert(value, interval)
    ctx.commit()
    for value, interval in facts[::3]:
        ctx.delete(value, interval)
    ctx.compact()
    ctx.commit()


WORKLOADS: Dict[str, Callable[[WorkloadContext], None]] = {
    "insert": _wl_insert,
    "split": _wl_split,
    "commit": _wl_commit,
    "compact": _wl_compact,
}


# ----------------------------------------------------------------------
# One case: crash at (point, hit), recover, verify
# ----------------------------------------------------------------------
@dataclass
class CrashCheckResult:
    """Outcome of one crash-recovery case."""

    workload: str
    point: str
    hit: int
    crashed: bool
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        crash = f"crash@hit {self.hit}" if self.crashed else "no crash (point exhausted)"
        tail = f" -- {self.detail}" if self.detail else ""
        return f"[{status}] {self.workload:8s} {self.point:24s} {crash}{tail}"


def _open(path: str, faults: Optional[FaultInjector] = None):
    store = PagedNodeStore(
        path,
        _KIND,
        page_size=_PAGE_SIZE,
        buffer_capacity=_BUFFER_CAPACITY,
        journaled=True,
        faults=faults,
    )
    if store.get_root() is None:
        tree = SBTree(
            _KIND, store, branching=_BRANCHING, leaf_capacity=_LEAF_CAPACITY
        )
    else:
        tree = SBTree(store=store)
    return store, tree


def run_case(
    path: str, workload: str, point: str, hit: int
) -> CrashCheckResult:
    """Run one workload with a crash armed at (point, hit) and verify.

    The injector is attached only after the store exists and an empty
    baseline is committed, so the sweep targets the workload itself
    rather than file-creation noise.  Returns ``crashed=False`` when
    the workload finished before the point's *hit*-th occurrence --
    the sweep uses that as its termination signal.
    """
    for leftover in (path, path + "-journal"):
        if os.path.exists(leftover):
            os.remove(leftover)
    store, tree = _open(path)
    ctx = WorkloadContext(tree, store)
    ctx.commit()  # committed baseline: the empty tree
    injector = FaultInjector(seed=hit)
    injector.crash_at(point, hit=hit)
    store.pager.faults = injector
    crashed = False
    try:
        WORKLOADS[workload](ctx)
        store.pager.faults = None
        store.close()
    except SimulatedCrash:
        crashed = True
        simulate_crash(store)

    ok, detail = _verify_recovery(path, ctx)
    # Registry counters (no-ops unless repro.obs is enabled): long
    # crash sweeps report progress like every other subsystem.
    obs.count("crashcheck.cases")
    if crashed:
        obs.count("crashcheck.faults_injected")
    if ok:
        obs.count("crashcheck.cases_passed")
    return CrashCheckResult(workload, point, hit, crashed, ok, detail)


def _verify_recovery(path: str, ctx: WorkloadContext) -> Tuple[bool, str]:
    try:
        store, tree = _open(path)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        return False, f"reopen failed: {exc!r}"
    try:
        recovered = tree.to_table()
        for facts in ctx.oracles():
            if recovered == reference.instantaneous_table(facts, _KIND):
                check_tree(tree)
                return True, ""
        return False, (
            f"recovered table diverges from the committed oracle "
            f"({len(ctx.committed)} committed facts)"
        )
    except Exception as exc:  # noqa: BLE001
        return False, f"recovered tree is unusable: {exc!r}"
    finally:
        try:
            store.close()
        except Exception:  # noqa: BLE001 - best effort
            pass


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def _count_hits(path: str, workload: str) -> Dict[str, int]:
    """Dry run with a disarmed injector: how often is each point hit?"""
    for leftover in (path, path + "-journal"):
        if os.path.exists(leftover):
            os.remove(leftover)
    store, tree = _open(path)
    ctx = WorkloadContext(tree, store)
    ctx.commit()
    counter = FaultInjector()
    store.pager.faults = counter
    WORKLOADS[workload](ctx)
    store.pager.faults = None
    store.close()
    return dict(counter.hits)


def _hit_schedule(total: int, hits: Union[str, int]) -> List[int]:
    if total <= 0:
        return []
    if hits == "all":
        return list(range(1, total + 1))
    if hits == "sample":  # first, middle, last occurrence
        return sorted({1, (total + 1) // 2, total})
    return list(range(1, min(int(hits), total) + 1))


def sweep(
    workload: str,
    workdir: str,
    *,
    hits: Union[str, int] = "all",
    verbose: bool = False,
) -> List[CrashCheckResult]:
    """Crash one workload at every crash point (and chosen occurrences).

    ``hits`` is ``"all"`` (every occurrence of every point -- the
    exhaustive sweep), ``"sample"`` (first/middle/last occurrence), or
    an integer (the first N occurrences).
    """
    path = os.path.join(workdir, f"crashcheck-{workload}.sbt")
    occurrences = _count_hits(path, workload)
    results: List[CrashCheckResult] = []
    for point in Pager.CRASH_POINTS:
        for hit in _hit_schedule(occurrences.get(point, 0), hits):
            result = run_case(path, workload, point, hit)
            results.append(result)
            if verbose or not result.ok:
                print(result, flush=True)
    return results


def sweep_all(
    workdir: str,
    *,
    workloads: Optional[Sequence[str]] = None,
    hits: Union[str, int] = "all",
    verbose: bool = False,
) -> List[CrashCheckResult]:
    """Run :func:`sweep` for every (or the selected) workload."""
    results: List[CrashCheckResult] = []
    for name in workloads or sorted(WORKLOADS):
        results.extend(sweep(name, workdir, hits=hits, verbose=verbose))
    return results


# ----------------------------------------------------------------------
# Dynamic-view catalog checkpoint sweep
# ----------------------------------------------------------------------
#: One fault plan per checkpoint: the three labeled crash points, a torn
#: temp-file write, and an injected fsync failure.
CATALOG_FAULT_PLANS: Tuple[Tuple[str, Optional[str]], ...] = tuple(
    ("crash", point) for point in CATALOG_CRASH_POINTS
) + (("torn", None), ("fsync", None))

#: Sentinel key meaning "aggregate over every group" in the view oracle.
_ANY = object()


class CatalogWorkloadContext:
    """Drives one :class:`DynamicCatalog` while tracking checkpoint oracles.

    ``completed`` is the base-table fact set as of the last checkpoint
    that finished; ``inflight`` is the fact set the in-flight checkpoint
    was serializing when the fault fired.  Unlike the pager's ambiguous
    commit window, the catalog's crash points pin down which of the two
    a recovery must restore: everything before the rename recovers
    ``completed``, everything after it recovers ``inflight``.
    """

    def __init__(
        self, directory: str, plan: Optional[Tuple[str, Optional[str], int]] = None,
        seed: int = 0,
    ) -> None:
        self.directory = directory
        self.plan = plan  # (kind, crash point or None, checkpoint number)
        self.injector = FaultInjector(seed=seed)
        if plan is not None:
            kind, point, ckpt = plan
            if kind == "crash":
                self.injector.crash_at(point, hit=ckpt)
            elif kind == "torn":
                self.injector.tear_write(CATALOG_WRITE_LABEL, call=ckpt)
            # "fsync" is armed lazily in save(): fail_fsyncs fires on the
            # *next* fsync, so it must not be live before checkpoint ckpt.
        self._ticks = 0.0
        self.catalog = DynamicCatalog(directory, clock=self._clock)
        self.facts: List[Tuple[Any, Any, Any, Tuple]] = []
        self.view_oracles: Dict[str, Tuple[str, bool]] = {}
        self.saves = 0
        self.completed: Optional[List] = None
        self.inflight: Optional[List] = None

    def _clock(self) -> float:
        self._ticks += 1.0
        return self._ticks

    def snapshot(self) -> List:
        return sorted(self.facts)

    def insert(self, value: int, start, end, k: int):
        row = self.catalog.insert("t", value, Interval(start, end), k=k)
        self.facts.append((value, start, end, (("k", k),)))
        return row

    def delete(self, row) -> None:
        self.catalog.delete("t", row)
        self.facts.remove(
            (row.value, row.valid.start, row.valid.end,
             tuple(sorted(row.payload.items())))
        )

    def view(self, name: str, over: str, kind: str, *, key: Optional[str] = None) -> None:
        self.catalog.create_view(name, over, kind, key=key)
        self.view_oracles[name] = (kind, key is not None)

    def baseline(self) -> None:
        """Fault-free first checkpoint; arms the injector for the rest."""
        self.catalog.refresh()
        self.catalog.save()
        self.completed = self.snapshot()
        self.catalog.faults = self.injector

    def save(self) -> None:
        self.saves += 1
        if (self.plan is not None and self.plan[0] == "fsync"
                and self.plan[2] == self.saves):
            self.injector.fail_fsyncs(CATALOG_WRITE_LABEL, times=1)
        entry = self.snapshot()
        self.inflight = entry
        self.catalog.save()
        self.completed = entry
        self.inflight = None


def _cwl_cat_ingest(ctx: CatalogWorkloadContext) -> None:
    """Append-only ingest into ungrouped sum/avg rollups."""
    ctx.catalog.create_table("t")
    ctx.view("s", "t", "sum")
    ctx.view("a", "t", "avg")
    ctx.insert(5, 0, 50, 0)
    ctx.baseline()
    for i in range(14):
        ctx.insert(i % 7 + 1, i * 4, i * 4 + 25, i % 3)
        ctx.insert(i % 5 + 2, i * 6 + 2, i * 6 + 30, (i + 1) % 3)
        if i % 2 == 0:
            ctx.catalog.refresh()
        ctx.save()


def _cwl_cat_dag(ctx: CatalogWorkloadContext) -> None:
    """A two-level DAG (sum over a grouped sum) plus a count, with deletes."""
    ctx.catalog.create_table("t")
    ctx.view("by_k", "t", "sum", key="k")
    ctx.view("total", "by_k", "sum")
    ctx.view("c", "t", "count")
    ctx.insert(3, 0, 40, 0)
    ctx.insert(4, 10, 60, 1)
    ctx.baseline()
    rows = []
    for i in range(14):
        rows.append(ctx.insert(i % 6 + 1, i * 3, i * 3 + 18, i % 3))
        if i % 4 == 3:
            ctx.delete(rows.pop(0))
        ctx.catalog.refresh()
        ctx.save()


def _cwl_cat_churn(ctx: CatalogWorkloadContext) -> None:
    """Heavy insert/delete churn with an unconsumed tail at most saves."""
    ctx.catalog.create_table("t")
    ctx.view("s", "t", "sum", key="k")
    ctx.view("a", "t", "avg")
    ctx.baseline()
    live = []
    for i in range(14):
        live.append(ctx.insert(i % 4 + 1, i * 2, i * 2 + 16, i % 2))
        live.append(ctx.insert(i % 3 + 5, i * 5, i * 5 + 11, (i + 1) % 2))
        if len(live) > 5:
            ctx.delete(live.pop(i % 3))
        if i % 3 != 2:
            ctx.catalog.refresh()
        ctx.save()


CATALOG_WORKLOADS: Dict[str, Callable[[CatalogWorkloadContext], None]] = {
    "cat-ingest": _cwl_cat_ingest,
    "cat-dag": _cwl_cat_dag,
    "cat-churn": _cwl_cat_churn,
}


def _expected_view_value(kind: str, facts: Sequence[Tuple], t, key) -> Any:
    vals = [
        value for value, start, end, payload in facts
        if start <= t < end and (key is _ANY or dict(payload).get("k") == key)
    ]
    if kind == "sum":
        return sum(vals)
    if kind == "count":
        return len(vals)
    if kind == "avg":
        return (sum(vals) / len(vals)) if vals else None
    raise ValueError(f"no oracle for aggregate kind {kind!r}")


def _catalog_facts(catalog: DynamicCatalog) -> List:
    return sorted(
        (row.value, row.valid.start, row.valid.end,
         tuple(sorted(row.payload.items())))
        for row in catalog.table("t")
    )


def _check_catalog_views(
    catalog: DynamicCatalog, facts: Sequence[Tuple], ctx: CatalogWorkloadContext
) -> str:
    """Every declared view against the brute-force oracle over *facts*."""
    keys = {dict(payload).get("k") for _, _, _, payload in facts}
    probes = sorted(
        {start for _, start, _, _ in facts}
        | {(start + end) / 2.0 for _, start, end, _ in facts}
        | {-7.0}
    )
    for name, (kind, grouped) in ctx.view_oracles.items():
        view = catalog.view(name)
        for t in probes:
            for key in (keys if grouped else (_ANY,)):
                got = view.value_at(t, None if key is _ANY else key)
                want = _expected_view_value(kind, facts, t, key)
                if got != want:
                    label = "" if key is _ANY else f" key={key!r}"
                    return (
                        f"view {name!r}{label} at t={t}: "
                        f"recovered {got!r} != oracle {want!r}"
                    )
    return ""


def _verify_catalog_recovery(
    dirpath: str, ctx: CatalogWorkloadContext
) -> Tuple[bool, str]:
    try:
        catalog = DynamicCatalog(dirpath, clock=ctx._clock)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        return False, f"reopen failed: {exc!r}"
    # Which checkpoint must the recovery equal?  Deterministic: only a
    # crash *after* the rename makes the in-flight checkpoint durable.
    if (ctx.inflight is not None and ctx.plan is not None
            and ctx.plan[0] == "crash"
            and ctx.plan[1] == "view_ckpt:after_rename"):
        expected = ctx.inflight
    else:
        expected = ctx.completed
    try:
        recovered = _catalog_facts(catalog)
    except Exception as exc:  # noqa: BLE001
        return False, f"restored catalog is unusable: {exc!r}"
    if recovered != expected:
        return False, (
            f"restored base table holds {len(recovered)} facts; the "
            f"checkpoint oracle holds {len(expected)}"
        )
    if set(catalog.view_names()) != set(ctx.view_oracles):
        return False, (
            f"restored views {sorted(catalog.view_names())} != declared "
            f"{sorted(ctx.view_oracles)}"
        )
    try:
        catalog.refresh()
        error = _check_catalog_views(catalog, recovered, ctx)
        if error:
            return False, error
        # Resume incrementally: fresh ingest must flow through the
        # restored watermarks, not trip over the compacted prefix.
        horizon = max((end for _, _, end, _ in recovered), default=0)
        extra = [
            (9, horizon + 1, horizon + 20, 0),
            (4, horizon + 5, horizon + 30, 1),
            (7, horizon + 2, horizon + 15, 2),
        ]
        for value, start, end, k in extra:
            catalog.insert("t", value, Interval(start, end), k=k)
        catalog.refresh()
        resumed = sorted(
            recovered + [(v, s, e, (("k", k),)) for v, s, e, k in extra]
        )
        error = _check_catalog_views(catalog, resumed, ctx)
        if error:
            return False, "after resume: " + error
    except Exception as exc:  # noqa: BLE001
        return False, f"restored catalog is unusable: {exc!r}"
    return True, ""


def run_catalog_case(
    workdir: str, workload: str, kind: str, point: Optional[str], ckpt: int
) -> CrashCheckResult:
    """One catalog case: fault checkpoint *ckpt* per *kind*, recover, verify."""
    dirpath = os.path.join(workdir, f"crashcheck-{workload}")
    shutil.rmtree(dirpath, ignore_errors=True)
    ctx = CatalogWorkloadContext(dirpath, plan=(kind, point, ckpt), seed=ckpt)
    crashed = False
    try:
        CATALOG_WORKLOADS[workload](ctx)
        ctx.catalog.faults = None
    except (SimulatedCrash, OSError):
        # A dying process keeps no file handles to abandon here: the
        # checkpoint path opens and closes its temp file per save.
        crashed = True
    ok, detail = _verify_catalog_recovery(dirpath, ctx)
    obs.count("crashcheck.cases")
    if crashed:
        obs.count("crashcheck.faults_injected")
    if ok:
        obs.count("crashcheck.cases_passed")
    label = point if kind == "crash" else f"{CATALOG_WRITE_LABEL}:{kind}"
    return CrashCheckResult(workload, label, ckpt, crashed, ok, detail)


def _count_catalog_saves(workdir: str, workload: str) -> int:
    """Dry run with no faults armed: how many checkpoints does it take?"""
    dirpath = os.path.join(workdir, f"crashcheck-{workload}")
    shutil.rmtree(dirpath, ignore_errors=True)
    ctx = CatalogWorkloadContext(dirpath)
    CATALOG_WORKLOADS[workload](ctx)
    return ctx.saves


def catalog_sweep(
    workload: str,
    workdir: str,
    *,
    hits: Union[str, int] = "all",
    verbose: bool = False,
) -> List[CrashCheckResult]:
    """Fault one catalog workload at every plan and chosen checkpoint."""
    total = _count_catalog_saves(workdir, workload)
    results: List[CrashCheckResult] = []
    for kind, point in CATALOG_FAULT_PLANS:
        for ckpt in _hit_schedule(total, hits):
            result = run_catalog_case(workdir, workload, kind, point, ckpt)
            results.append(result)
            if verbose or not result.ok:
                print(result, flush=True)
    return results


def catalog_sweep_all(
    workdir: str,
    *,
    workloads: Optional[Sequence[str]] = None,
    hits: Union[str, int] = "all",
    verbose: bool = False,
) -> List[CrashCheckResult]:
    """Run :func:`catalog_sweep` for every (or the selected) workload."""
    results: List[CrashCheckResult] = []
    for name in workloads or sorted(CATALOG_WORKLOADS):
        results.extend(catalog_sweep(name, workdir, hits=hits, verbose=verbose))
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-crashcheck",
        description="Crash a journaled SB-tree at every labeled crash "
        "point and verify recovery against the reference oracle.",
    )
    parser.add_argument(
        "--workload",
        action="append",
        help="restrict to one workload (repeatable; default: all)",
    )
    parser.add_argument(
        "--catalog",
        action="store_true",
        help="sweep the dynamic-view catalog checkpoint path "
        "(dynamic.json) instead of the journaled page file",
    )
    parser.add_argument(
        "--hits",
        default="all",
        help="'all' (exhaustive), 'sample' (first/middle/last), or a "
        "number N (first N occurrences per crash point)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print every case, not just failures"
    )
    args = parser.parse_args(argv)
    hits: Union[str, int] = args.hits
    if hits not in ("all", "sample"):
        try:
            hits = int(hits)
        except ValueError:
            parser.error("--hits must be 'all', 'sample', or an integer")
    table = CATALOG_WORKLOADS if args.catalog else WORKLOADS
    for name in args.workload or ():
        if name not in table:
            parser.error(
                f"unknown workload {name!r} (choose from {sorted(table)})"
            )
    run_sweep = catalog_sweep_all if args.catalog else sweep_all

    with tempfile.TemporaryDirectory(prefix="repro-crashcheck-") as workdir:
        results = run_sweep(
            workdir, workloads=args.workload, hits=hits, verbose=args.verbose
        )
    crashes = sum(r.crashed for r in results)
    failures = [r for r in results if not r.ok]
    points = {r.point for r in results if r.crashed}
    print(
        f"\ncrashcheck: {len(results)} cases, {crashes} injected crashes "
        f"across {len(points)} crash points, {len(failures)} failures"
    )
    for failure in failures:
        print(f"  {failure}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
