"""One-command sanity check: build a tree, print its stats, run tests.

``repro-quickcheck`` (or ``python -m repro.quickcheck``) exercises the
full happy path a fresh checkout should support:

1. build a small persistent SUM index in a temporary directory via the
   CLI (``repro build``),
2. run the per-operation accounting report over it (``repro stats``),
3. audit the freshly built page file offline (``repro fsck``),
4. run a quick crash-consistency sweep (first occurrence of every
   crash point on the commit workload, via :mod:`repro.crashcheck`),
5. boot the sharded TCP service on an ephemeral port, run a verified
   smoke workload through the blocking client, check its stats, and
   drain it cleanly (:mod:`repro.service`),
6. run the wire-protocol speedup gate: a pipelined binary-codec
   workload must beat the sequential JSON-codec baseline by a healthy
   multiple (the full bench records ~5x or better; the gate uses a
   conservative floor so CI noise cannot flake it),
7. run the dynamic materialized-view stage: a 3-level view DAG (base
   table -> grouped view -> rollup) driven over the TCP service and
   checked against the recompute-from-scratch oracle after every tick,
   then the incremental-vs-recompute measurement (writes
   ``BENCH_views.json``) with a floor gate on the speedup,
8. run a bounded end-to-end resilience check (exactly-once writes
   through the chaos proxy against a SIGKILLed-and-restarted server,
   on BOTH wire codecs, via ``repro-rescheck --quick --codec both``)
   and write ``BENCH_resilience.json``,
9. run the observability-overhead gate (tracing disabled vs. a
   hand-inlined baseline vs. tracing at 1% sampling; fails if the
   disabled path regresses) and write ``BENCH_trace_overhead.json``,
10. run the unit-test suite (``pytest -q``), unless ``--no-tests``.

``--quick`` bounds the run for CI: a smaller scratch index and no
pytest stage (CI runs the suite as its own job).

Exit status is non-zero as soon as any stage fails, so this doubles as
a cheap CI smoke target.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from typing import List, Optional

from . import cli
from .workloads import uniform

__all__ = ["main"]

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _stage(title: str) -> None:
    print(f"\n=== quickcheck: {title} ===", flush=True)


def _run_cli(argv: List[str]) -> int:
    print(f"$ repro {' '.join(argv)}", flush=True)
    return cli.main(argv)


def _service_smoke() -> int:
    """Boot a 4-shard server, drive it through the client, drain it."""
    import random

    from .core import reference
    from .service import ServerHandle, ServiceClient, ServiceError
    from .sharding import ShardedTree

    rng = random.Random(7)
    sharded = ShardedTree("sum", num_shards=4, span=(0, 10_000))
    facts = []
    with ServerHandle.start(sharded, batch_max=16, batch_delay=0.001) as handle:
        print(f"server up on {handle.host}:{handle.port}", flush=True)
        with ServiceClient(handle.host, handle.port, timeout=10.0) as svc:
            if not svc.ping():
                print("FAIL: ping")
                return 1
            batch = []
            for _ in range(120):
                s = rng.randint(0, 9_000)
                e = s + rng.randint(1, 900)
                v = rng.randint(1, 9)
                batch.append([v, s, e])
                facts.append((v, (s, e)))
            svc.batch_insert(batch)
            for _ in range(40):
                t = rng.randint(0, 10_000)
                got = svc.lookup(t)
                want = reference.instantaneous_value(facts, "sum", t)
                if got != want:
                    print(f"FAIL: lookup({t}) = {got}, oracle {want}")
                    return 1
            try:
                svc.window(5_000, 100)
            except ServiceError as exc:
                if exc.type != "unsupported":
                    print(f"FAIL: window error type {exc.type}")
                    return 1
            else:
                print("FAIL: sharded SUM window should be unsupported")
                return 1
            stats = svc.stats()
            shard_stats = stats["shards"]
            if shard_stats["facts"] != 120:
                print(f"FAIL: stats facts = {shard_stats['facts']}, want 120")
                return 1
            if stats["ops"]["service.lookup"]["count"] != 40:
                print("FAIL: stats op counts missing lookups")
                return 1
            print(
                f"verified 40 lookups over {shard_stats['facts']} facts,"
                f" {shard_stats['num_shards']} shards;"
                f" batch flushes={stats['counters'].get('service.batch.flushes')}",
                flush=True,
            )
    print("service drained cleanly", flush=True)
    return 0


def _views_gate(out_dir: str = "", threshold: float = 1.5) -> int:
    """The dynamic materialized-view stage: oracle check + speedup gate.

    Part one drives a 3-level DAG (base table -> grouped view -> rollup)
    over the TCP service and checks the rollup against the
    recompute-from-scratch oracle after **every** tick of base-table
    changes.  Part two runs the incremental-vs-recompute measurement
    (:func:`repro.warehouse.viewbench.run_view_bench`, itself
    oracle-verified per batch), writes ``BENCH_views.json``, and fails
    if incremental refresh stops beating recompute by the floor --
    the recorded benchmark shows ~3.5x at this size; the conservative
    gate catches a regression that turns refresh back into recompute.
    """
    import random

    from .benchlib import Series, write_bench_json
    from .core import reference
    from .service import ServerHandle, ServiceClient
    from .sharding import ShardedTree
    from .warehouse.viewbench import run_view_bench

    rng = random.Random(23)
    horizon = 10_000
    facts = []
    sharded = ShardedTree("sum", num_shards=2, span=(0, horizon))
    with ServerHandle.start(sharded, view_tick=0.0) as handle:
        with ServiceClient(handle.host, handle.port, timeout=10.0) as svc:
            svc.create_view("by_patient", "doses", "sum",
                            key="patient", lag="downstream")
            svc.create_view("total", "by_patient", "sum", lag="downstream")
            for tick in range(6):
                rows = []
                for _ in range(30):
                    s = rng.randint(0, horizon - 200)
                    e = s + rng.randint(1, 150)
                    v = rng.randint(1, 9)
                    key = f"patient{rng.randrange(5)}"
                    rows.append([v, s, e, {"patient": key}])
                    facts.append((v, (s, e)))
                svc.table_insert("doses", rows)
                svc.refresh_view()
                for t in (horizon // 4, horizon // 2, 3 * horizon // 4):
                    got = svc.query_view("total", t)["value"]
                    want = reference.instantaneous_value(facts, "sum", t)
                    if (got or 0) != (want or 0):
                        print(f"FAIL: tick {tick}: total@{t} = {got},"
                              f" oracle {want}")
                        return 1
            stats = svc.view_stats()
            per_view = stats["views"]
            print(
                f"verified rollup vs oracle after 6 ticks"
                f" ({len(facts)} base facts);"
                f" by_patient groups={per_view['by_patient'].get('groups')}"
                f" refreshes={per_view['total'].get('refreshes')}",
                flush=True,
            )

    result = run_view_bench(events=600, batches=8)
    series = Series("events", result["xs"])
    series.add("incremental s/refresh", result["incremental_s"])
    series.add("recompute s/rebuild", result["recompute_s"])
    print(series.render(with_exponents=False), flush=True)
    print(
        f"incremental refresh speedup over recompute-from-scratch:"
        f" {result['speedup']:.1f}x (gate: >= {threshold:.1f}x)",
        flush=True,
    )
    path = write_bench_json(
        out_dir or os.getcwd(), "views", series,
        extra={
            "events": result["events"],
            "batches": result["batches"],
            "total_incremental_s": result["total_incremental_s"],
            "total_recompute_s": result["total_recompute_s"],
            "speedup": result["speedup"],
            "dag": "doses -> by_patient(key=patient) -> total",
        },
    )
    print(f"wrote {path}")
    if result["speedup"] < threshold:
        print("FAIL: incremental refresh no longer beats recompute")
        return 1
    return 0


def _pipeline_gate(threshold: float = 2.5) -> int:
    """Gate the wire-protocol win: pipelined binary vs sequential JSON.

    The recorded benchmark (``repro loadgen --compare``) shows ~5x or
    better; this gate uses a conservative floor so a noisy shared CI
    runner cannot flake it, while still catching any regression that
    collapses the pipelined binary path back toward the baseline.
    """
    from .service import ServerHandle
    from .service.loadgen import run_loadgen
    from .sharding import ShardedTree

    span = (0, 1_000_000)
    mix = {"insert": 0.5, "lookup": 0.5}
    throughput = {}
    for codec, pipeline, ops in (("json", 1, 150), ("binary", 32, 600)):
        sharded = ShardedTree("sum", num_shards=4, span=span)
        with ServerHandle.start(sharded) as handle:
            res = run_loadgen(
                handle.host,
                handle.port,
                connections=4,
                ops_per_connection=ops,
                span=span,
                mix=mix,
                seed=11,
                codec=codec,
                pipeline=pipeline,
            )
        if res.errors or not res.verified_ok:
            print(
                f"FAIL: {codec} depth={pipeline} run unhealthy"
                f" (errors={res.errors}, verified_ok={res.verified_ok})"
            )
            return 1
        throughput[codec] = res.throughput
        print(
            f"{codec:6s} depth={pipeline:2d}: {res.throughput:8.0f} ops/s"
            f" ({res.total_ops} verified ops)",
            flush=True,
        )
    speedup = throughput["binary"] / throughput["json"]
    print(
        f"pipelined-binary speedup over sequential JSON: {speedup:.1f}x"
        f" (gate: >= {threshold:.1f}x)",
        flush=True,
    )
    if speedup < threshold:
        print("FAIL: wire-protocol speedup regressed below the gate")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-quickcheck", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--no-tests", action="store_true", help="skip the pytest stage"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="bounded CI variant: smaller scratch index, no pytest stage",
    )
    parser.add_argument(
        "-n", type=int, default=2000, help="tuples in the scratch index"
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default="",
        help="write BENCH_trace_overhead.json under DIR",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n = min(args.n, 1000)

    with tempfile.TemporaryDirectory(prefix="repro-quickcheck-") as scratch:
        csv_path = os.path.join(scratch, "facts.csv")
        with open(csv_path, "w", encoding="utf-8") as handle:
            for value, interval in uniform(args.n, seed=7):
                handle.write(f"{value},{interval.start},{interval.end}\n")
        path = os.path.join(scratch, "quickcheck.sbt")
        _stage(f"build a scratch SUM index ({args.n} tuples)")
        status = _run_cli(["build", path, "--kind", "sum", "--csv", csv_path])
        if status:
            return status
        _stage("per-operation accounting (repro stats)")
        status = _run_cli(["stats", path])
        if status:
            return status
        _stage("offline page-file audit (repro fsck)")
        status = _run_cli(["fsck", path])
        if status:
            return status

    _stage("crash-consistency sweep (commit workload, first hits)")
    from . import crashcheck

    status = crashcheck.main(["--workload", "commit", "--hits", "1"])
    if status:
        return status

    _stage("sharded service smoke (ephemeral port, verified workload)")
    status = _service_smoke()
    if status:
        return status

    _stage("wire-protocol speedup gate (pipelined binary vs JSON)")
    status = _pipeline_gate()
    if status:
        return status

    _stage("dynamic view DAG (oracle check + incremental speedup gate)")
    status = _views_gate(args.out)
    if status:
        return status

    _stage("resilience check (chaos + server kill, both codecs)")
    from . import rescheck

    rescheck_args = ["--quick", "--codec", "both"]
    if args.out:
        rescheck_args += ["--out", args.out]
    status = rescheck.main(rescheck_args)
    if status:
        return status

    _stage("observability-overhead gate (disabled path vs. baseline)")
    from .obs.overhead import render_report, run_overhead_gate

    report = run_overhead_gate(out_dir=args.out or None)
    print(render_report(report), flush=True)
    if args.out:
        print(f"wrote {os.path.join(args.out, 'BENCH_trace_overhead.json')}")
    if not report["ok"]:
        print("FAIL: instrumentation overhead on the disabled path")
        return 1

    if args.no_tests or args.quick:
        return 0

    _stage("unit tests (pytest -q)")
    env = dict(os.environ)
    src = os.path.join(_REPO_ROOT, "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    completed = subprocess.run(
        [sys.executable, "-m", "pytest", "-q"], cwd=_REPO_ROOT, env=env
    )
    return completed.returncode


if __name__ == "__main__":
    sys.exit(main())
