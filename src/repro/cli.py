"""Command-line interface for SB-tree page files.

Operate on the persistent index files produced by
:class:`repro.storage.PagedNodeStore`::

    python -m repro build  index.sbt --kind sum --csv facts.csv
    python -m repro inspect index.sbt
    python -m repro dump   index.sbt
    python -m repro lookup index.sbt 19
    python -m repro range  index.sbt 14 28
    python -m repro verify index.sbt
    python -m repro fsck   index.sbt --repair
    python -m repro compact index.sbt
    python -m repro stats  index.sbt --lookups 200
    python -m repro tql "SUM(value) OVER rx AT 19" --table rx=facts.csv
    python -m repro serve --kind sum --shards 4 --lo 0 --hi 100000 \
        --metrics-port 9095
    python -m repro loadgen --port 7071 --connections 4 --ops 500
    python -m repro top --port 7071

Under ``--trace FILE``, service commands additionally run request
tracing: ``serve`` hangs its server/flush/shard/tree spans below each
traced request, ``loadgen`` opens one head-sampled trace per request
(``--trace-sample`` is the sampling fraction), and the span records
land in the same JSON-lines FILE as the per-op records.

Every subcommand accepts ``--trace FILE`` (plus ``--trace-sample``) to
record one JSON line per tree operation -- pages read, buffer
hits/misses, physical I/Os, wall time -- via :mod:`repro.obs`;
``stats`` runs a probe workload and prints the per-operation metrics
table.

CSV input for ``build`` has one fact per line: ``value,start,end``
(numbers; a header line is tolerated and skipped).  CSVs for ``tql``
need a header with at least ``value,start,end``; extra columns become
payload attributes usable in WHEN/PARTITION BY clauses.
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from typing import List, Optional

from . import obs
from .core.intervals import Interval, is_finite
from .core.msbtree import MSBTree
from .core.sbtree import SBTree
from .core.validate import TreeInvariantError, check_tree
from .core.values import AggregateKind
from .storage import PagedNodeStore

__all__ = ["main"]


def _number(text: str) -> float:
    value = float(text)
    return int(value) if value == int(value) else value


def _open_tree(path: str, buffer_capacity: int = 256):
    # Opening a missing path would create an empty page file; querying
    # commands must fail cleanly instead.
    if not os.path.exists(path):
        raise SystemExit(f"error: no such index file: {path}")
    store = PagedNodeStore(path, buffer_capacity=buffer_capacity)
    kind = store.get_meta("kind")
    if kind in ("min", "max") and store.get_meta("msb") == "1":
        return store, MSBTree(store=store)
    return store, SBTree(store=store)


def cmd_build(args: argparse.Namespace) -> int:
    store = PagedNodeStore(
        args.file, args.kind, page_size=args.page_size, buffer_capacity=256
    )
    tree_cls = MSBTree if args.msb else SBTree
    if args.msb:
        store.set_meta("msb", "1")
    branching = args.branching or min(
        store.default_branching_annotated if args.msb else store.default_branching,
        1024,
    )
    leaf_capacity = args.leaf_capacity or min(store.default_leaf_capacity, 1024)
    tree = tree_cls(
        args.kind, store, branching=branching, leaf_capacity=leaf_capacity
    )
    count = 0
    with open(args.csv, newline="") as handle:
        for row in csv.reader(handle):
            try:
                value, start, end = (_number(cell) for cell in row[:3])
            except (ValueError, IndexError):
                continue  # tolerate header and blank lines
            tree.insert(value, Interval(start, end))
            count += 1
    store.close()
    print(f"built {args.kind} tree over {count} facts -> {args.file}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    store, tree = _open_tree(args.file)
    pager = store.pager
    per_level: List[int] = []
    interior_fill: List[int] = []
    leaf_fill: List[int] = []

    def walk(node_id, depth):
        while len(per_level) <= depth:
            per_level.append(0)
        per_level[depth] += 1
        node = store.read(node_id)
        if node.is_leaf:
            leaf_fill.append(node.interval_count)
        else:
            interior_fill.append(node.interval_count)
            for child in node.children:
                walk(child, depth + 1)

    walk(store.get_root(), 0)
    print(f"file         : {args.file}")
    print(f"kind         : {tree.kind.value}")
    print(f"structure    : {'MSB-tree' if isinstance(tree, MSBTree) else 'SB-tree'}")
    print(f"branching    : b={tree.b} l={tree.l}")
    print(f"page size    : {pager.page_size} bytes")
    print(f"pages        : {pager.page_count} ({pager.page_count * pager.page_size / 1024:.0f} KiB)")
    print(f"live nodes   : {store.node_count()}")
    print(f"height       : {len(per_level)}")
    print(f"nodes/level  : {per_level}")
    if leaf_fill:
        print(f"leaf fill    : {sum(leaf_fill) / (len(leaf_fill) * tree.l):.0%}")
    if interior_fill:
        print(f"interior fill: {sum(interior_fill) / (len(interior_fill) * tree.b):.0%}")
    print(f"constant ivls: {len(tree.to_table())}")
    store.close()
    return 0


def cmd_dump(args: argparse.Namespace) -> int:
    store, tree = _open_tree(args.file)
    table = tree.to_table().finalized(tree.spec).coalesce()
    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            table.to_csv(handle)
        print(f"wrote {len(table)} rows to {args.csv}")
        store.close()
        return 0
    rows = table.rows[: args.limit] if args.limit else table.rows
    print(f"{'value':>14}  valid")
    for value, interval in rows:
        shown = f"{value:.4g}" if isinstance(value, float) else str(value)
        print(f"{shown:>14}  {interval}")
    if args.limit and len(table.rows) > args.limit:
        print(f"... {len(table.rows) - args.limit} more rows")
    store.close()
    return 0


def cmd_lookup(args: argparse.Namespace) -> int:
    store, tree = _open_tree(args.file)
    t = _number(args.instant)
    if args.window is not None:
        if not isinstance(tree, MSBTree):
            print(
                "error: --window lookups need an MSB-tree file "
                "(build with --msb), or use a fixed-window tree",
                file=sys.stderr,
            )
            store.close()
            return 2
        value = tree.spec.finalize(tree.window_lookup(t, _number(args.window)))
    else:
        value = tree.lookup_final(t)
    print(value)
    store.close()
    return 0


def cmd_range(args: argparse.Namespace) -> int:
    store, tree = _open_tree(args.file)
    window = Interval(_number(args.start), _number(args.end))
    table = tree.range_query(window).coalesce(tree.spec.eq).finalized(tree.spec)
    for value, interval in table:
        shown = f"{value:.4g}" if isinstance(value, float) else str(value)
        print(f"{shown:>14}  {interval}")
    store.close()
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    store, tree = _open_tree(args.file)
    try:
        check_tree(tree)
    except TreeInvariantError as exc:
        print(f"INVALID: {exc}")
        store.close()
        return 1
    print(
        f"ok: {tree.kind.value} tree, height {tree.height}, "
        f"{store.node_count()} nodes, all invariants hold"
    )
    store.close()
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    """Offline page-file audit (and optional repair).

    Unlike ``verify`` (which walks the *tree* through the normal read
    path), ``fsck`` works on the raw bytes: header sanity, a full
    checksum sweep, free-list audit (cycles, double links, bad ids),
    reachability/orphan analysis from the root, and leftover-journal
    inspection.  ``--repair`` quarantines corrupt pages and rebuilds
    the free list; it never invents tree data.

    A ``.json`` path is audited as a dynamic-view catalog checkpoint
    (``dynamic.json``) instead: structure, change-log density, and
    per-view watermark/dependency consistency (``--repair`` does not
    apply -- recovery is the load path's ``.prev`` fallback).
    """
    import json as _json

    from .storage import fsck as run_fsck
    from .storage import fsck_dynamic

    if not os.path.exists(args.file):
        print(f"error: no such index file: {args.file}", file=sys.stderr)
        return 2
    if args.file.endswith(".json"):
        report = fsck_dynamic(args.file)
    else:
        report = run_fsck(args.file, repair=args.repair)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _load_relation_csv(name: str, path: str):
    """Load a CSV into a relation.

    The first line is a header.  Columns ``value``, ``start`` and
    ``end`` are required; any further columns become tuple payload
    attributes (numeric strings are converted).
    """
    from .relation import TemporalRelation

    relation = TemporalRelation(name)
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"value", "start", "end"}
        header = set(reader.fieldnames or [])
        if not required <= header:
            raise SystemExit(
                f"error: {path} needs columns value,start,end (found {sorted(header)})"
            )
        for line in reader:
            payload = {}
            for key, raw in line.items():
                if key in required or raw is None:
                    continue
                try:
                    payload[key] = _number(raw)
                except ValueError:
                    payload[key] = raw
            relation.insert(
                _number(line["value"]),
                Interval(_number(line["start"]), _number(line["end"])),
                **payload,
            )
    return relation


def cmd_tql(args: argparse.Namespace) -> int:
    from .core.results import ConstantIntervalTable
    from .tql import TQLError, execute

    relations = {}
    for spec_text in args.table:
        name, _, path = spec_text.partition("=")
        if not path:
            print(f"error: --table expects name=path, got {spec_text!r}", file=sys.stderr)
            return 2
        relations[name] = _load_relation_csv(name, path)
    try:
        result = execute(args.statement, relations)
    except TQLError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def show_table(table, indent=""):
        for value, interval in table:
            shown = f"{value:.4g}" if isinstance(value, float) else str(value)
            print(f"{indent}{shown:>14}  {interval}")

    if isinstance(result, ConstantIntervalTable):
        show_table(result)
    elif isinstance(result, dict):
        for key, value in result.items():
            if isinstance(value, ConstantIntervalTable):
                print(f"{key}:")
                show_table(value, indent="  ")
            else:
                print(f"{key}: {value}")
    else:
        print(result)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Probe an index file and print per-operation metrics.

    Runs ``--lookups`` point lookups spread over the indexed span (cold
    buffer first, then warm), plus a handful of range queries, all under
    :mod:`repro.obs`, then prints the per-op table: count, wall-time
    percentiles, logical node reads, buffer hits/misses, physical page
    I/Os -- the paper's Figure-23 quantities, per operation.
    """
    was_enabled = obs.is_enabled()
    registry = obs.get_registry() if was_enabled else obs.enable(obs.MetricsRegistry())
    store, tree = _open_tree(args.file, buffer_capacity=args.buffer)

    # The probe span: the uppermost node's separators bound the data
    # span well enough, without a full-tree scan polluting the metrics.
    node = tree._root()
    while not node.times and not node.is_leaf:
        node = tree._read(node.children[0])
    finite = [t for t in node.times if is_finite(t)]
    lo, hi = (min(finite), max(finite)) if finite else (0, 1)
    span = (hi - lo) or 1
    probes = [lo + span * i / max(1, args.lookups - 1) for i in range(args.lookups)]

    for t in probes:
        tree.lookup(t)
    for i in range(args.ranges):
        start = lo + span * i / max(1, args.ranges)
        tree.range_query(Interval(start, min(hi, start + span / 10)))
    if isinstance(tree, MSBTree):
        for t in probes[:: max(1, len(probes) // 16)]:
            tree.window_lookup(t, span / 8)

    fmt = getattr(args, "format", "table")
    if fmt == "json":
        import json as _json

        from .obs.health import tree_health

        print(
            _json.dumps(
                {
                    "file": args.file,
                    "kind": tree.kind.value,
                    "health": tree_health(tree),
                    "metrics": registry.to_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    elif fmt == "prom":
        from .obs.health import render_prom, tree_health

        for key, value in tree_health(tree).items():
            if isinstance(value, (int, float)):
                registry.gauge(f"health.{key}").set(float(value))
        print(render_prom(registry), end="")
    else:
        print(f"file   : {args.file}")
        print(f"kind   : {tree.kind.value}  height: {tree.height}  "
              f"nodes: {store.node_count()}  buffer: {args.buffer} frames")
        print()
        print(registry.render())
        print()
        bs, ps = store.buffer.stats, store.pager.stats
        print(
            f"totals : buffer hits={bs.hits} misses={bs.misses} "
            f"evictions={bs.evictions} hit-rate={bs.hit_rate:.1%} | "
            f"physical reads={ps.physical_reads} writes={ps.physical_writes}"
        )
    store.close()
    if not was_enabled:
        obs.disable()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the sharded temporal-aggregate service in the foreground.

    Builds a :class:`~repro.sharding.ShardedTree` (optionally seeded
    from a ``value,start,end`` CSV, optionally with one persistent page
    file per shard under ``--paged DIR``), binds the asyncio TCP server,
    and serves until SIGINT/SIGTERM, then drains gracefully.
    """
    import asyncio
    import signal

    from .sharding import ShardedTree, ShardingError
    from .service.server import TemporalAggregateServer

    boundaries = None
    if args.boundaries:
        boundaries = [_number(b) for b in args.boundaries.split(",")]
    stores = None
    if args.paged:
        num = (len(boundaries) + 1) if boundaries is not None else args.shards
        os.makedirs(args.paged, exist_ok=True)
        stores = [
            PagedNodeStore(
                os.path.join(args.paged, f"shard-{i}.sbt"),
                args.kind,
                journaled=args.journal,
            )
            for i in range(num)
        ]
    try:
        if boundaries is not None:
            sharded = ShardedTree(args.kind, boundaries, stores=stores)
        else:
            sharded = ShardedTree(
                args.kind,
                num_shards=args.shards,
                span=(_number(args.lo), _number(args.hi)),
                stores=stores,
            )
    except ShardingError as exc:
        raise SystemExit(f"error: {exc}")

    if args.csv:
        facts = []
        with open(args.csv, newline="") as handle:
            for row in csv.reader(handle):
                try:
                    value, start, end = (_number(cell) for cell in row[:3])
                except (ValueError, IndexError):
                    continue  # tolerate header and blank lines
                facts.append((value, Interval(start, end)))
        sharded.batch_insert(facts)
        print(f"seeded {len(facts)} facts from {args.csv}")

    server = TemporalAggregateServer(
        sharded,
        host=args.host,
        port=args.port,
        batch_max=args.batch_max,
        batch_delay=args.batch_delay,
        health_interval=args.health_interval,
        max_inflight=args.max_inflight,
        dedup_window=args.dedup_window,
        replica_of=args.replica_of,
        replica_name=args.replica_name,
        repl_sync=not args.repl_async,
        repl_ack_timeout=args.repl_ack_timeout,
        # Under --trace the CLI registry already folds span durations;
        # sharing it makes the stats op serve them too.
        registry=obs.get_registry() if obs.is_enabled() else None,
    )
    metrics_http = None
    if args.metrics_port is not None:
        from .obs.health import start_metrics_http

        metrics_http = start_metrics_http(
            server.registry,
            args.metrics_port,
            host=args.host,
            extra=server.refresh_health,
        )
        print(
            f"metrics on http://{metrics_http.host}:{metrics_http.port}/metrics",
            flush=True,
        )

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGINT, stop.set)
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix loops
            pass
        await server.start()
        role = (
            f"replica of {args.replica_of}" if args.replica_of else "primary"
        )
        print(
            f"serving {sharded.kind.value} over {sharded.num_shards} shards"
            f" on {server.host}:{server.port} ({role})",
            flush=True,
        )
        await stop.wait()
        print("draining...", flush=True)
        await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    finally:
        if metrics_http is not None:
            metrics_http.close()
        sharded.close()
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running service with the verified closed-loop workload.

    Prints the latency-percentile table and throughput summary, writes
    ``BENCH_service.json`` under ``--out``, and exits non-zero if any
    reply disagreed with the reference oracle.  ``--compare`` runs the
    codec/pipeline-depth matrix instead (JSON depth-1 baseline vs
    pipelined cells on both codecs) and records the speedup.
    """
    from .service.loadgen import run_codec_comparison, run_loadgen

    span = None
    if args.lo is not None or args.hi is not None:
        if args.lo is None or args.hi is None:
            raise SystemExit("error: pass both --lo and --hi, or neither")
        span = (_number(args.lo), _number(args.hi))
    try:
        if args.compare:
            summary = run_codec_comparison(
                args.host,
                args.port,
                connections=args.connections,
                ops_per_connection=args.ops,
                span=span,
                seed=args.seed,
                out_dir=args.out,
            )
            for cell in summary["cells"]:
                print(
                    f"{cell.codec:6s} depth={cell.pipeline:3d}"
                    f" tput={cell.throughput:9.1f} ops/s"
                    f" errors={cell.errors}"
                    f" verified={'OK' if cell.verified_ok else 'FAILED'}"
                )
            baseline = summary["baseline"]
            print(
                f"speedup vs {baseline.codec} depth={baseline.pipeline}:"
                f" {summary['speedup']:.1f}x"
            )
            if args.out:
                print(f"wrote {os.path.join(args.out, 'BENCH_service.json')}")
            return 0 if all(c.verified_ok for c in summary["cells"]) else 1
        result = run_loadgen(
            args.host,
            args.port,
            connections=args.connections,
            ops_per_connection=args.ops,
            span=span,
            seed=args.seed,
            codec=args.codec,
            pipeline=args.pipeline,
            out_dir=args.out,
        )
    except ConnectionError as exc:
        raise SystemExit(f"error: cannot drive {args.host}:{args.port}: {exc}")
    print(result.render())
    if args.out:
        print(f"wrote {os.path.join(args.out, 'BENCH_service.json')}")
    return 0 if result.verified_ok else 1


def cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a running service (throughput, latency,
    span breakdown, per-shard health); ^C exits."""
    from .service.top import run_top

    return run_top(
        args.host,
        args.port,
        interval=args.interval,
        iterations=args.iterations,
    )


def cmd_view(args: argparse.Namespace) -> int:
    """Manage dynamic materialized views on a running service.

    Verbs: ``create`` declares a view over a base table or another
    view, ``insert`` feeds change rows into a base table, ``query``
    reads one or more views at an instant (with ``--pin`` for a
    consistent multi-view snapshot), ``stats`` dumps the catalog,
    ``refresh`` forces a refresh, ``drop`` removes a view, and
    ``repair`` clears a quarantined view and retries its refresh.
    """
    import json

    from .service.client import ServiceClient, ServiceError

    verb = args.view_command
    try:
        with ServiceClient(args.host, args.port, timeout=15.0) as svc:
            if verb == "create":
                result = svc.create_view(
                    args.name, args.over, args.agg,
                    key=args.key, lag=args.lag,
                )
                print(
                    f"created view {result['name']!r}"
                    f" over {', '.join(result['sources'])}"
                    f" agg={result['agg']}"
                    + (f" key={result['key']}" if result.get("key") else "")
                    + f" lag={result['lag']}"
                )
            elif verb == "insert":
                rows = []
                for spec in args.row:
                    parts = spec.split(",")
                    if len(parts) < 3:
                        raise SystemExit(
                            f"error: --row needs value,start,end[,key]: {spec!r}"
                        )
                    row = [_number(parts[0]), _number(parts[1]), _number(parts[2])]
                    if len(parts) > 3:
                        row.append(",".join(parts[3:]))
                    rows.append(row)
                applied = svc.table_insert(args.table, rows)
                print(f"applied {applied} rows to {args.table!r}")
            elif verb == "query":
                if len(args.name) > 1 or args.pin:
                    result = svc.query_views(
                        args.name, _number(args.at), pin=args.pin
                    )
                    for name in args.name:
                        reading = result["views"][name]
                        print(f"{name}: {json.dumps(reading, sort_keys=True)}")
                else:
                    reading = svc.query_view(
                        args.name[0], _number(args.at), key=args.key
                    )
                    print(json.dumps(reading, sort_keys=True))
            elif verb == "stats":
                print(json.dumps(svc.view_stats(), indent=2, sort_keys=True))
            elif verb == "refresh":
                result = svc.refresh_view(args.name)
                refreshed = result.get("refreshed") or {}
                shown = ", ".join(
                    f"{k}+{v}" for k, v in sorted(refreshed.items())
                ) or "(nothing stale)"
                print(f"refreshed: {shown} ({result.get('events', 0)} events)")
            elif verb == "repair":
                result = svc.repair_view(args.name)
                refreshed = result.get("refreshed") or {}
                shown = ", ".join(
                    f"{k}+{v}" for k, v in sorted(refreshed.items())
                ) or "(nothing stale)"
                was = (
                    "was quarantined"
                    if result.get("was_quarantined")
                    else "was not quarantined"
                )
                print(f"repaired {result['repaired']!r} ({was}): {shown}")
            else:  # drop
                result = svc.drop_view(args.name)
                print(f"dropped view {result['dropped']!r}")
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}")
    except ConnectionError as exc:
        raise SystemExit(f"error: cannot reach {args.host}:{args.port}: {exc}")
    return 0


def cmd_promote(args: argparse.Namespace) -> int:
    """Promote the replica at ``--host:--port`` to primary."""
    from .service.client import ServiceClient, ServiceError

    try:
        with ServiceClient(args.host, args.port, timeout=15.0) as svc:
            result = svc._request("promote")
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}")
    except ConnectionError as exc:
        raise SystemExit(
            f"error: cannot reach {args.host}:{args.port}: {exc}"
        )
    if result.get("promoted"):
        print(f"promoted: now primary at commit {result.get('commit')}")
    else:
        print(
            f"already {result.get('role', 'primary')}"
            f" at commit {result.get('commit')}"
        )
    return 0


def cmd_readscale(args: argparse.Namespace) -> int:
    """Measure read scaling across replica counts (see
    :mod:`repro.service.readscale`); writes BENCH_service.json."""
    from .service.readscale import main as readscale_main

    return readscale_main(args)


def cmd_compact(args: argparse.Namespace) -> int:
    store, tree = _open_tree(args.file)
    before = store.node_count()
    tree.compact()
    store.flush()
    print(f"compacted: {before} -> {store.node_count()} nodes")
    store.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Inspect and query SB-tree / MSB-tree index files.",
    )
    # Options shared by every subcommand (repro.obs tracing).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trace",
        metavar="FILE",
        help="append one JSON line per tree operation (wall time, node "
        "reads, buffer hits/misses, physical I/Os) to FILE",
    )
    common.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="FRACTION",
        help="keep this fraction of trace records (deterministic sampling)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser(
        "build", parents=[common], help="build an index from a CSV of facts"
    )
    p_build.add_argument("file")
    p_build.add_argument("--kind", required=True,
                         choices=[k.value for k in AggregateKind])
    p_build.add_argument("--csv", required=True, help="value,start,end per line")
    p_build.add_argument("--msb", action="store_true",
                         help="build an MSB-tree (MIN/MAX, windowed lookups)")
    p_build.add_argument("--page-size", type=int, default=4096)
    p_build.add_argument("--branching", type=int)
    p_build.add_argument("--leaf-capacity", type=int)
    p_build.set_defaults(fn=cmd_build)

    p_inspect = sub.add_parser("inspect", parents=[common], help="show file and tree statistics")
    p_inspect.add_argument("file")
    p_inspect.set_defaults(fn=cmd_inspect)

    p_dump = sub.add_parser("dump", parents=[common], help="print the aggregate's constant intervals")
    p_dump.add_argument("file")
    p_dump.add_argument("--limit", type=int, default=0)
    p_dump.add_argument("--csv", help="write value,start,end rows to a CSV file")
    p_dump.set_defaults(fn=cmd_dump)

    p_lookup = sub.add_parser("lookup", parents=[common], help="aggregate value at an instant")
    p_lookup.add_argument("file")
    p_lookup.add_argument("instant")
    p_lookup.add_argument("--window", help="cumulative window offset (MSB files)")
    p_lookup.set_defaults(fn=cmd_lookup)

    p_range = sub.add_parser("range", parents=[common], help="aggregate values over [start, end)")
    p_range.add_argument("file")
    p_range.add_argument("start")
    p_range.add_argument("end")
    p_range.set_defaults(fn=cmd_range)

    p_verify = sub.add_parser("verify", parents=[common], help="audit all structural invariants")
    p_verify.add_argument("file")
    p_verify.set_defaults(fn=cmd_verify)

    p_fsck = sub.add_parser(
        "fsck", parents=[common],
        help="offline integrity audit of the raw page file "
        "(checksums, free list, reachability, journal); a .json path "
        "is audited as a dynamic-view catalog checkpoint",
    )
    p_fsck.add_argument("file")
    p_fsck.add_argument(
        "--repair", action="store_true",
        help="quarantine corrupt pages and rebuild the free list",
    )
    p_fsck.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_fsck.set_defaults(fn=cmd_fsck)

    p_compact = sub.add_parser("compact", parents=[common], help="batch-compact the tree (bmerge)")
    p_compact.add_argument("file")
    p_compact.set_defaults(fn=cmd_compact)

    p_stats = sub.add_parser(
        "stats", parents=[common],
        help="probe the index and print per-operation I/O and latency metrics",
    )
    p_stats.add_argument("file")
    p_stats.add_argument(
        "--lookups", type=int, default=100,
        help="number of point lookups to probe with (default 100)",
    )
    p_stats.add_argument(
        "--ranges", type=int, default=8,
        help="number of range queries to probe with (default 8)",
    )
    p_stats.add_argument(
        "--buffer", type=int, default=64,
        help="buffer pool frames for the probe run (default 64)",
    )
    p_stats.add_argument(
        "--format", choices=["table", "json", "prom"], default="table",
        help="output format: human table, JSON (with histogram bucket "
        "bounds), or Prometheus text exposition",
    )
    p_stats.set_defaults(fn=cmd_stats)

    p_serve = sub.add_parser(
        "serve", parents=[common],
        help="run the sharded temporal-aggregate TCP service",
    )
    p_serve.add_argument("--kind", required=True,
                         choices=[k.value for k in AggregateKind])
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7071,
                         help="TCP port (0 picks an ephemeral port)")
    p_serve.add_argument("--shards", type=int, default=4,
                         help="number of time-range shards (default 4)")
    p_serve.add_argument("--lo", default="0",
                         help="span start for even shard boundaries")
    p_serve.add_argument("--hi", default="1000000",
                         help="span end for even shard boundaries")
    p_serve.add_argument("--boundaries",
                         help="explicit comma-separated shard cut points "
                         "(overrides --shards/--lo/--hi)")
    p_serve.add_argument("--csv", help="seed facts from value,start,end CSV")
    p_serve.add_argument("--paged", metavar="DIR",
                         help="persist each shard as DIR/shard-<i>.sbt")
    p_serve.add_argument("--journal", action="store_true",
                         help="journal shard page files (with --paged): "
                         "group commits become durable and the dedup "
                         "window survives restarts")
    p_serve.add_argument("--dedup-window", type=int, default=128,
                         help="remembered idempotency replies per client")
    p_serve.add_argument("--max-inflight", type=int, default=256,
                         help="admission-control bound on concurrent "
                         "requests (excess gets ERR_OVERLOADED)")
    p_serve.add_argument("--batch-max", type=int, default=64,
                         help="group-commit flush threshold in facts")
    p_serve.add_argument("--batch-delay", type=float, default=0.002,
                         help="group-commit flush deadline in seconds")
    p_serve.add_argument("--metrics-port", type=int, metavar="PORT",
                         help="serve Prometheus metrics on "
                         "http://HOST:PORT/metrics (0 picks a port)")
    p_serve.add_argument("--health-interval", type=float, default=5.0,
                         metavar="SECONDS",
                         help="tree-health gauge poll period "
                         "(0 disables; default 5)")
    p_serve.add_argument("--replica-of", metavar="HOST:PORT",
                         help="start as a read replica following the "
                         "primary at HOST:PORT: applies its journal "
                         "stream, serves watermark-tagged reads, and "
                         "rejects writes with a redirect")
    p_serve.add_argument("--replica-name",
                         help="stable follower identity reported to the "
                         "primary (default: this server's host:port)")
    p_serve.add_argument("--repl-async", action="store_true",
                         help="primary acks writes without waiting for "
                         "follower acks (default: semi-sync)")
    p_serve.add_argument("--repl-ack-timeout", type=float, default=10.0,
                         metavar="SECONDS",
                         help="semi-sync wait bound before degrading to "
                         "async (default 10)")
    p_serve.set_defaults(fn=cmd_serve)

    p_promote = sub.add_parser(
        "promote", parents=[common],
        help="promote a read replica to primary (seals its journal "
        "stream and starts accepting writes)",
    )
    p_promote.add_argument("--host", default="127.0.0.1")
    p_promote.add_argument("--port", type=int, required=True)
    p_promote.set_defaults(fn=cmd_promote)

    p_top = sub.add_parser(
        "top", parents=[common],
        help="live dashboard over a running service (throughput, "
        "latency percentiles, span breakdown, shard health)",
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, required=True)
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="poll period in seconds (default 1)")
    p_top.add_argument("--iterations", type=int, default=None,
                       help="render this many frames then exit "
                       "(default: run until ^C)")
    p_top.set_defaults(fn=cmd_top)

    p_view = sub.add_parser(
        "view", parents=[common],
        help="manage dynamic materialized views on a running service "
        "(create / insert / query / stats / refresh / drop / repair)",
    )
    view_common = argparse.ArgumentParser(add_help=False)
    view_common.add_argument("--host", default="127.0.0.1")
    view_common.add_argument("--port", type=int, required=True)
    view_sub = p_view.add_subparsers(dest="view_command", required=True)

    pv_create = view_sub.add_parser(
        "create", parents=[view_common],
        help="declare a view over a base table or another view",
    )
    pv_create.add_argument("name")
    pv_create.add_argument("--over", required=True,
                           help="source relation (base table or view)")
    pv_create.add_argument("--agg", default="sum",
                           choices=[k.value for k in AggregateKind])
    pv_create.add_argument("--key", default=None,
                           help="payload field to group by (omit for a "
                           "single ungrouped aggregate)")
    pv_create.add_argument("--lag", default="downstream",
                           help="freshness target: '5s', '1h', a number of "
                           "seconds, or 'downstream' (refresh only when a "
                           "dependent needs it; default)")
    pv_create.set_defaults(fn=cmd_view)

    pv_insert = view_sub.add_parser(
        "insert", parents=[view_common],
        help="append change rows to a base table (created on first use)",
    )
    pv_insert.add_argument("table")
    pv_insert.add_argument("--row", action="append", required=True,
                           metavar="VALUE,START,END[,KEY]",
                           help="one fact (repeatable); the optional "
                           "fourth field is the grouping key")
    pv_insert.set_defaults(fn=cmd_view)

    pv_query = view_sub.add_parser(
        "query", parents=[view_common],
        help="read one or more views at an instant",
    )
    pv_query.add_argument("name", nargs="+")
    pv_query.add_argument("--at", required=True, help="query instant")
    pv_query.add_argument("--key", default=None,
                          help="group key (single grouped view only)")
    pv_query.add_argument("--pin", action="store_true",
                          help="refresh all named views to one consistent "
                          "set of base watermarks before reading")
    pv_query.set_defaults(fn=cmd_view)

    pv_stats = view_sub.add_parser(
        "stats", parents=[view_common],
        help="dump the view catalog (watermarks, staleness, row counts)",
    )
    pv_stats.set_defaults(fn=cmd_view)

    pv_refresh = view_sub.add_parser(
        "refresh", parents=[view_common],
        help="force a refresh of one view (or every stale view)",
    )
    pv_refresh.add_argument("name", nargs="?", default=None)
    pv_refresh.set_defaults(fn=cmd_view)

    pv_drop = view_sub.add_parser(
        "drop", parents=[view_common],
        help="drop a view (refused while other views depend on it)",
    )
    pv_drop.add_argument("name")
    pv_drop.set_defaults(fn=cmd_view)

    pv_repair = view_sub.add_parser(
        "repair", parents=[view_common],
        help="clear a quarantined view and retry its refresh "
        "(node-local: run it against the node showing QUARANTINED)",
    )
    pv_repair.add_argument("name")
    pv_repair.set_defaults(fn=cmd_view)

    p_loadgen = sub.add_parser(
        "loadgen", parents=[common],
        help="drive a running service with a verified closed-loop workload",
    )
    p_loadgen.add_argument("--host", default="127.0.0.1")
    p_loadgen.add_argument("--port", type=int, required=True)
    p_loadgen.add_argument("--connections", type=int, default=4,
                           help="closed-loop worker connections (default 4)")
    p_loadgen.add_argument("--ops", type=int, default=500,
                           help="operations per connection (default 500)")
    p_loadgen.add_argument("--lo", help="workload span start (default: derive "
                           "from the server's shard boundaries)")
    p_loadgen.add_argument("--hi", help="workload span end")
    p_loadgen.add_argument("--seed", type=int, default=0)
    p_loadgen.add_argument("--codec", default="auto",
                           choices=("auto", "binary", "json"),
                           help="wire codec: auto negotiates binary and "
                           "falls back to json (default auto)")
    p_loadgen.add_argument("--pipeline", type=int, default=1,
                           help="max in-flight requests per connection "
                           "(default 1: one request at a time)")
    p_loadgen.add_argument("--compare", action="store_true",
                           help="run the codec/pipeline-depth comparison "
                           "matrix instead of a single workload")
    p_loadgen.add_argument("--out", metavar="DIR",
                           help="write BENCH_service.json under DIR")
    p_loadgen.set_defaults(fn=cmd_loadgen)

    p_readscale = sub.add_parser(
        "readscale", parents=[common],
        help="benchmark aggregate read throughput against 0/1/2 read "
        "replicas under a write-saturated primary",
    )
    p_readscale.add_argument("--duration", type=float, default=6.0,
                             help="measured seconds per topology cell "
                             "(default 6)")
    p_readscale.add_argument("--readers", type=int, default=4,
                             help="reader processes per cell (default 4)")
    p_readscale.add_argument("--writers", type=int, default=2,
                             help="saturating writer processes (default 2)")
    p_readscale.add_argument("--seed", type=int, default=0)
    p_readscale.add_argument("--cells", type=int, nargs="*", default=None,
                             help="replica counts to sweep (default: 0 1 2)")
    p_readscale.add_argument("--out", dest="out_dir", metavar="DIR",
                             help="merge the read-scaling series into "
                             "DIR/BENCH_service.json (default: cwd)")
    p_readscale.add_argument("--min-speedup", type=float, default=0.0,
                             help="exit nonzero if the last cell's reads/s "
                             "is below this multiple of primary-only")
    p_readscale.add_argument("--views", action="store_true",
                             help="measure replica-served query_view reads "
                             "instead of lookup (recorded as the separate "
                             "view_read_scaling series)")
    p_readscale.set_defaults(fn=cmd_readscale)

    p_tql = sub.add_parser(
        "tql", parents=[common],
        help="run a TQL statement over CSV-backed relations",
    )
    p_tql.add_argument("statement", help="e.g. \"SUM(value) OVER r AT 19\"")
    p_tql.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=CSV",
        help="bind a relation name to a CSV file (repeatable); the CSV "
        "needs header columns value,start,end (+ payload columns)",
    )
    p_tql.set_defaults(fn=cmd_tql)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from .obs import trace

        try:
            sink = obs.TraceSink(trace_path, sample=args.trace_sample)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: cannot open trace sink: {exc}")
        registry = obs.MetricsRegistry()
        obs.enable(registry, sink)
        # One flag drives both layers: per-op records (sampled per
        # record by the sink) and request tracing (head-sampled per
        # trace, span durations folded into the same registry).
        trace.enable(sink, sample=args.trace_sample, registry=registry)
        try:
            return args.fn(args)
        finally:
            trace.disable()
            obs.disable(close_sink=True)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
