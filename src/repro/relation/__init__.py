"""Temporal base tables: tuples, change events, relations."""

from .table import TemporalRelation
from .tuples import ChangeEvent, ChangeKind, TemporalTuple

__all__ = ["ChangeEvent", "ChangeKind", "TemporalRelation", "TemporalTuple"]
