"""Temporal tuples and change events.

The warehouse setting of the paper (Section 1, [YW98]/[YW00]): base
tables hold tuples timestamped with a valid interval, and materialized
views must be maintained as tuples are inserted and deleted.  This
module defines the tuple and the change-event record that flows from a
base table to its subscribed views.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.intervals import Interval

__all__ = ["TemporalTuple", "ChangeKind", "ChangeEvent"]


@dataclass(frozen=True)
class TemporalTuple:
    """One base-table row: an aggregable value valid over an interval.

    ``payload`` carries any further attributes (e.g. the patient name of
    the paper's Prescription table); they are opaque to aggregation.
    """

    tuple_id: int
    value: Any
    valid: Interval
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = f" {dict(self.payload)}" if self.payload else ""
        return f"<#{self.tuple_id} value={self.value} valid={self.valid}{extra}>"


class ChangeKind(enum.Enum):
    """Whether a base-table change adds or removes a tuple."""

    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class ChangeEvent:
    """A single base-table change, delivered to subscribed views."""

    kind: ChangeKind
    tuple: TemporalTuple
