"""Temporal base tables with change notification.

A :class:`TemporalRelation` is the source side of the paper's
warehousing scenario: a set of live temporal tuples plus an observer
list.  Every insert or delete is forwarded to subscribers (materialized
views, indices) as a :class:`~repro.relation.tuples.ChangeEvent`, which
is exactly the information the SB-tree maintenance procedures consume.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..core.intervals import Interval, Time
from .tuples import ChangeEvent, ChangeKind, TemporalTuple

__all__ = ["TemporalRelation"]

Subscriber = Callable[[ChangeEvent], None]


class TemporalRelation:
    """A named collection of temporal tuples with insert/delete streams."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._tuples: Dict[int, TemporalTuple] = {}
        self._ids = itertools.count(1)
        self._subscribers: List[Subscriber] = []

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, value: Any, valid, **payload: Any) -> TemporalTuple:
        """Insert a tuple; returns it (with its assigned id)."""
        if not isinstance(valid, Interval):
            valid = Interval(*valid)
        row = TemporalTuple(next(self._ids), value, valid, payload)
        event = ChangeEvent(ChangeKind.INSERT, row)
        self._validate(event)
        self._tuples[row.tuple_id] = row
        self._notify(event)
        return row

    def delete(self, row_or_id) -> TemporalTuple:
        """Delete a tuple by id or by the tuple object itself.

        The change is validated with every subscriber *before* any state
        is mutated; a subscriber that cannot process it (e.g. a MIN/MAX
        view, which is not maintainable under deletions) vetoes the
        whole change, leaving the relation and all views untouched.
        """
        tuple_id = row_or_id.tuple_id if isinstance(row_or_id, TemporalTuple) else row_or_id
        if tuple_id not in self._tuples:
            raise KeyError(f"no tuple #{tuple_id} in relation {self.name!r}")
        row = self._tuples[tuple_id]
        event = ChangeEvent(ChangeKind.DELETE, row)
        self._validate(event)
        del self._tuples[tuple_id]
        self._notify(event)
        return row

    def restore(self, rows) -> None:
        """Adopt ``(tuple_id, value, valid, payload)`` rows silently.

        Checkpoint-load path: the rows re-enter with their original ids
        and **no subscriber notification** -- a restored view must not
        re-emit change events its consumers already processed.  The id
        counter advances past the highest restored id so later inserts
        cannot collide.
        """
        top = 0
        for tuple_id, value, valid, payload in rows:
            if not isinstance(valid, Interval):
                valid = Interval(*valid)
            tuple_id = int(tuple_id)
            self._tuples[tuple_id] = TemporalTuple(
                tuple_id, value, valid, dict(payload)
            )
            top = max(top, tuple_id)
        next_id = max(top + 1, next(self._ids))
        self._ids = itertools.count(next_id)

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: Subscriber, *, replay: bool = True) -> None:
        """Attach a change consumer; optionally replay the current contents.

        With ``replay`` the subscriber first receives one INSERT per live
        tuple, so a view created over a non-empty table starts complete.
        """
        if replay:
            for row in self._tuples.values():
                subscriber(ChangeEvent(ChangeKind.INSERT, row))
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.remove(subscriber)

    def _validate(self, event: ChangeEvent) -> None:
        """First phase: let every subscriber veto before anything mutates."""
        for subscriber in self._subscribers:
            validate = getattr(subscriber, "validate", None)
            if validate is not None:
                validate(event)

    def _notify(self, event: ChangeEvent) -> None:
        for subscriber in self._subscribers:
            subscriber(event)

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[TemporalTuple]:
        return iter(self._tuples.values())

    def scan(self, *, valid_at: Optional[Time] = None) -> Iterator[TemporalTuple]:
        """Yield live tuples, optionally only those valid at an instant."""
        for row in self._tuples.values():
            if valid_at is None or row.valid.contains(valid_at):
                yield row

    def facts(self) -> List:
        """Return the ``(value, interval)`` pairs of the live tuples."""
        return [(row.value, row.valid) for row in self._tuples.values()]

    def get(self, tuple_id: int) -> TemporalTuple:
        return self._tuples[tuple_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TemporalRelation {self.name!r} with {len(self)} tuples>"
