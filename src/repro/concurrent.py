"""Thread-safe access to SB-trees (the paper's stated future work).

The paper's conclusion: "We also need to design concurrency control
algorithms for SB-trees and MSB-trees if we want to use them in OLTP
systems."  This module provides the simplest correct protocol: a fair
readers-writer lock around whole-tree operations.

Why tree-level locking is the right first step here: unlike a B-tree,
where an update touches one leaf path and latch coupling localizes
conflicts, an SB-tree update can *modify values at interior nodes on two
root-to-leaf paths* (the segment-tree feature), and its compaction can
restructure nodes far from either path.  Any reader concurrently
descending through an interior node whose value is being adjusted would
accumulate a torn sum.  A single reader-writer lock gives linearizable
lookups and updates with unbounded reader parallelism, which matches
the paper's warehouse workload (rare batched maintenance, many
analytical reads).

:class:`ReadWriteLock` is written from scratch (the stdlib has none):
writer-preferring to keep maintenance latency bounded under read-heavy
load.  Both acquire paths take an optional ``timeout`` so callers that
fan out over many locks (the sharded router of :mod:`repro.sharding`)
can bound their worst-case wait instead of hanging on one stuck shard;
the guard form raises :class:`LockTimeout` when the deadline passes.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from . import obs
from .core.intervals import Time
from .core.results import ConstantIntervalTable
from .core.sbtree import IntervalLike
from .obs import trace

__all__ = ["LockTimeout", "ReadWriteLock", "ConcurrentTree"]


class LockTimeout(TimeoutError):
    """A guarded lock acquisition exceeded its timeout."""


class ReadWriteLock:
    """A writer-preferring readers-writer lock.

    Any number of readers may hold the lock together; writers are
    exclusive.  Arriving writers block new readers, so a steady read
    stream cannot starve maintenance.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._readers_ok = threading.Condition(self._lock)
        self._writers_ok = threading.Condition(self._lock)
        self._active_readers = 0
        self._active_writer = False
        self._waiting_writers = 0

    # ------------------------------------------------------------------
    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        """Acquire shared access; returns False if *timeout* expires."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._active_writer or self._waiting_writers:
                if deadline is None:
                    self._readers_ok.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._readers_ok.wait(remaining)
            self._active_readers += 1
            return True

    def release_read(self) -> None:
        with self._lock:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._writers_ok.notify()

    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        """Acquire exclusive access; returns False if *timeout* expires."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._waiting_writers += 1
            try:
                while self._active_writer or self._active_readers:
                    if deadline is None:
                        self._writers_ok.wait()
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._writers_ok.wait(remaining)
                self._active_writer = True
                return True
            finally:
                self._waiting_writers -= 1
                # A timed-out (or interrupted) writer must wake the
                # readers its waiting-writer flag was holding back, or
                # they would stall until the *next* writer releases.
                if not self._active_writer and not self._waiting_writers:
                    self._readers_ok.notify_all()

    def release_write(self) -> None:
        with self._lock:
            self._active_writer = False
            self._writers_ok.notify()
            self._readers_ok.notify_all()

    # ------------------------------------------------------------------
    class _Guard:
        def __init__(self, acquire, release, timeout=None):
            self._acquire = acquire
            self._release = release
            self._timeout = timeout

        def __enter__(self):
            if not self._acquire(self._timeout):
                raise LockTimeout(
                    f"lock not acquired within {self._timeout:.3f}s"
                )
            return self

        def __exit__(self, *exc):
            self._release()

    def read_locked(self, timeout: Optional[float] = None) -> "_Guard":
        """``with lock.read_locked(): ...`` shared-access context."""
        return self._Guard(self.acquire_read, self.release_read, timeout)

    def write_locked(self, timeout: Optional[float] = None) -> "_Guard":
        """``with lock.write_locked(): ...`` exclusive-access context."""
        return self._Guard(self.acquire_write, self.release_write, timeout)


class ConcurrentTree:
    """A linearizable wrapper around any tree-like index.

    Works with :class:`~repro.core.sbtree.SBTree`,
    :class:`~repro.core.msbtree.MSBTree`,
    :class:`~repro.core.fixed_window.FixedWindowTree` and
    :class:`~repro.core.dual.DualTreeAggregate` -- the wrapped object
    only needs the corresponding methods.  Reads run under the shared
    lock, mutations under the exclusive one.

    ``read_timeout`` / ``write_timeout`` (seconds) bound every lock
    acquisition; an expired wait raises :class:`LockTimeout` instead of
    hanging, which is what the sharded service layer relies on to turn
    a stuck shard into a structured error.
    """

    def __init__(
        self,
        tree: Any,
        lock: Optional[ReadWriteLock] = None,
        *,
        read_timeout: Optional[float] = None,
        write_timeout: Optional[float] = None,
    ) -> None:
        self.tree = tree
        self.lock = lock if lock is not None else ReadWriteLock()
        self.read_timeout = read_timeout
        self.write_timeout = write_timeout

    def _guarded(
        self, write: bool, op: str, fn: Callable, *args: Any, **kwargs: Any
    ) -> Any:
        """Run ``fn`` under the right lock; when observability or tracing
        is on, attribute the per-op I/O deltas *and* the time spent
        waiting for the lock."""
        lock = self.lock
        if not obs.ENABLED and not trace.TRACING:
            # Disabled fast path: two global flag loads and a direct
            # acquire/release, no guard or span objects.  The quickcheck
            # overhead gate keeps this within a small factor of the
            # hand-inlined equivalent.
            timeout = self.write_timeout if write else self.read_timeout
            acquired = (
                lock.acquire_write(timeout)
                if write
                else lock.acquire_read(timeout)
            )
            if not acquired:
                raise LockTimeout(f"lock not acquired within {timeout:.3f}s")
            try:
                return fn(*args, **kwargs)
            finally:
                if write:
                    lock.release_write()
                else:
                    lock.release_read()
        guard = (
            lock.write_locked(self.write_timeout)
            if write
            else lock.read_locked(self.read_timeout)
        )
        requested = time.perf_counter()
        with guard:
            waited_us = (time.perf_counter() - requested) * 1e6
            stores = obs.stores_of(self.tree)
            with trace.span(
                "tree." + op,
                stores,
                attrs={"lock_wait_us": round(waited_us, 1)},
            ):
                if not obs.ENABLED:
                    return fn(*args, **kwargs)
                with obs.Op(
                    op,
                    stores,
                    subject=type(self.tree).__name__,
                    lock_wait_us=waited_us,
                ):
                    return fn(*args, **kwargs)

    # ------------------------------------------------------------------
    # Reads (shared)
    # ------------------------------------------------------------------
    def lookup(self, t: Time) -> Any:
        return self._guarded(False, "lookup", self.tree.lookup, t)

    def lookup_final(self, t: Time) -> Any:
        return self._guarded(False, "lookup", self.tree.lookup_final, t)

    def range_query(self, interval: IntervalLike) -> ConstantIntervalTable:
        return self._guarded(
            False, "range_query", self.tree.range_query, interval
        )

    def to_table(self, **kwargs) -> ConstantIntervalTable:
        return self._guarded(False, "range_query", self.tree.to_table, **kwargs)

    def window_lookup(self, t: Time, w: Time) -> Any:
        return self._guarded(False, "mlookup", self.tree.window_lookup, t, w)

    # ------------------------------------------------------------------
    # Writes (exclusive)
    # ------------------------------------------------------------------
    def insert(self, value: Any, interval: IntervalLike) -> None:
        return self._guarded(True, "insert", self.tree.insert, value, interval)

    def delete(self, value: Any, interval: IntervalLike) -> None:
        return self._guarded(True, "delete", self.tree.delete, value, interval)

    def compact(self) -> None:
        return self._guarded(True, "compact", self.tree.compact)

    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        # Read-only passthrough for introspection (height, spec, ...).
        # Guard against infinite recursion when ``self.tree`` does not
        # exist yet: ``copy.copy`` / ``pickle`` probe dunder methods on a
        # blank instance *before* ``__init__`` runs, and a plain
        # ``self.tree`` here would re-enter ``__getattr__`` forever.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        try:
            tree = object.__getattribute__(self, "tree")
        except AttributeError:
            raise AttributeError(name) from None
        return getattr(tree, name)
