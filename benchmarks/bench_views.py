"""Dynamic materialized-view DAG: incremental refresh vs recompute.

The dynamic catalog (``repro.warehouse.dynamic``) refreshes a view by
consuming only the change events past its per-source watermarks, so the
cost of bringing a cascading DAG (base ``doses`` -> grouped
``by_patient`` -> rollup ``total``) up to date after a batch of base
changes should stay flat as history accumulates, while rebuilding the
views from scratch grows linearly with the history.  Both strategies
are verified per batch against the from-scratch oracle inside the
harness (:mod:`repro.warehouse.viewbench`), so every timed point is
also a correctness point.
"""

from repro.benchlib import Series, scaled
from repro.warehouse.viewbench import run_view_bench

EVENTS = scaled(600)


def test_incremental_vs_recompute(report):
    """One stream, both maintenance strategies, per-batch timings."""
    result = run_view_bench(events=EVENTS, batches=8)
    series = Series("events", result["xs"])
    series.add("incremental s/refresh", result["incremental_s"])
    series.add("recompute s/rebuild", result["recompute_s"])
    report(
        "Dynamic views / incremental refresh vs recompute-from-scratch",
        series.render()
        + f"\ntotal incremental {result['total_incremental_s']:.3f}s"
        f"  total recompute {result['total_recompute_s']:.3f}s"
        f"  speedup {result['speedup']:.1f}x",
        series=series,
    )
    # The headline claim: consuming only the events past the watermark
    # beats rebuilding the DAG from its full history.
    assert result["speedup"] > 1.5
    # And the advantage comes from scaling, not constants: the last
    # recompute batch pays for the whole history, the last incremental
    # batch only for its own events.
    assert result["recompute_s"][-1] > result["incremental_s"][-1]


def test_refresh_cost_stays_flat(report):
    """Incremental per-batch cost must not track history size."""
    result = run_view_bench(events=EVENTS, batches=8, seed=29)
    inc = result["incremental_s"]
    early = sum(inc[:2]) / 2
    late = sum(inc[-2:]) / 2
    report(
        "Dynamic views / refresh cost vs history size",
        f"first-two-batches mean {early * 1e3:.2f}ms"
        f"  last-two-batches mean {late * 1e3:.2f}ms"
        f"  ratio {late / early:.2f}x"
        f" (recompute ratio "
        f"{(sum(result['recompute_s'][-2:]) / 2) / (sum(result['recompute_s'][:2]) / 2):.2f}x)",
    )
    # Allow generous noise headroom; the recompute ratio at this size
    # is ~5x, so 3x still separates the regimes cleanly.
    assert late < 3 * early
