"""The disk-based claim: SB-tree operations in page I/Os.

The paper's central systems argument is that the SB-tree is a *disk*
structure: every operation touches O(h) pages, so with any reasonable
buffer pool the physical I/O per update or lookup is tiny, while
recomputing an aggregate from the base table scans everything.  This
benchmark runs the paged store with a real file, a write-back LRU
buffer pool, and physical-I/O counters, sweeping the pool size
(ablation: DESIGN.md "node store abstraction").
"""

import os

import pytest

from repro import Interval, SBTree
from repro.benchlib import Series, format_table, scaled, time_call
from repro.storage import PagedNodeStore
from repro.workloads import uniform

N = scaled(1500)
HORIZON = 60_000
FACTS = uniform(N, horizon=HORIZON, max_duration=400, seed=71)


def _build_on_disk(path, buffer_capacity, page_size=4096):
    store = PagedNodeStore(
        path, "sum", page_size=page_size, buffer_capacity=buffer_capacity
    )
    tree = SBTree(
        "sum",
        store,
        branching=min(32, store.default_branching),
        leaf_capacity=min(32, store.default_leaf_capacity),
    )
    for value, interval in FACTS:
        tree.insert(value, interval)
    store.flush()
    return store, tree


def test_buffer_pool_sweep(report, tmp_path):
    capacities = [4, 16, 64, 256]
    rows = []
    for capacity in capacities:
        store, tree = _build_on_disk(str(tmp_path / f"t{capacity}.sbt"), capacity)
        store.pager.stats.reset()
        store.buffer.stats.reset()
        probes = [HORIZON * i // 200 for i in range(200)]
        for t in probes:
            tree.lookup(t)
        lookup_reads = store.pager.stats.physical_reads / len(probes)
        hit_rate = store.buffer.stats.hit_rate
        store.pager.stats.reset()
        for i in range(100):
            span = Interval(i * 13 % HORIZON, i * 13 % HORIZON + 500)
            tree.insert(1, span)
        update_io = (
            store.pager.stats.physical_reads + store.pager.stats.physical_writes
        ) / 100
        rows.append(
            (capacity, tree.height, round(lookup_reads, 3), f"{hit_rate:.2%}",
             round(update_io, 3))
        )
        store.close()
    report(
        "Disk claim / physical I/O vs buffer pool size",
        format_table(
            ["pool pages", "height", "phys reads/lookup", "hit rate", "phys IO/update"],
            rows,
        ),
    )
    # With a pool comfortably larger than the hot path, lookups are
    # nearly I/O-free; with a tiny pool they still cost only ~height.
    assert rows[-1][2] < 0.5
    assert rows[0][2] <= rows[0][1] + 1


def test_index_lookup_vs_recompute_io(report, tmp_path):
    """An indexed lookup reads O(h) pages; recomputation scans all n."""
    store, tree = _build_on_disk(str(tmp_path / "t.sbt"), buffer_capacity=8)
    total_pages = store.pager.page_count
    store.pager.stats.reset()
    tree.lookup(HORIZON // 2)
    lookup_reads = store.pager.stats.physical_reads
    store.pager.stats.reset()
    tree.range_query(Interval(float("-inf"), float("inf")))
    full_scan_reads = store.pager.stats.physical_reads
    report(
        "Disk claim / lookup vs full reconstruction",
        f"file pages={total_pages}  lookup phys reads={lookup_reads}  "
        f"full-scan phys reads={full_scan_reads}",
    )
    assert lookup_reads <= tree.height
    assert full_scan_reads > 10 * max(1, lookup_reads)
    store.close()


def test_page_size_geometry(report, tmp_path):
    """Bigger pages -> bigger fanout -> shorter trees (fewer I/Os)."""
    rows = []
    for page_size in (512, 1024, 4096, 16384):
        store, tree = _build_on_disk(
            str(tmp_path / f"p{page_size}.sbt"),
            buffer_capacity=64,
            page_size=page_size,
        )
        rows.append(
            (page_size, store.default_branching, store.default_leaf_capacity,
             tree.b, tree.height, store.pager.page_count)
        )
        store.close()
    report(
        "Disk claim / page size vs tree geometry",
        format_table(
            ["page size", "max b", "max l", "used b", "height", "file pages"], rows
        ),
    )
    heights = [r[4] for r in rows]
    assert heights[0] >= heights[-1]


def _page_derived_tree(path, page_size=4096):
    """A tree whose b/l are derived from the page geometry (the paper's
    sizing rule) rather than hand-picked."""
    store = PagedNodeStore(path, "sum", page_size=page_size, buffer_capacity=64)
    tree = SBTree(
        "sum",
        store,
        branching=store.default_branching,
        leaf_capacity=store.default_leaf_capacity,
    )
    return store, tree


def test_page_derived_capacities_give_shallow_trees(report, tmp_path):
    store, tree = _page_derived_tree(str(tmp_path / "wide.sbt"))
    for value, interval in FACTS:
        tree.insert(value, interval)
    report(
        "Disk claim / page-derived fanout",
        f"b={tree.b} l={tree.l} n={N} height={tree.height} "
        f"pages={store.pager.page_count}",
    )
    assert tree.height <= 3  # hundreds-wide fanout keeps trees shallow
    store.close()


@pytest.mark.parametrize("capacity", [8, 128])
def test_benchmark_disk_lookup(benchmark, capacity, tmp_path):
    store, tree = _build_on_disk(str(tmp_path / "b.sbt"), capacity)
    benchmark(tree.lookup, HORIZON // 2)
    store.close()


def test_benchmark_disk_insert(benchmark, tmp_path):
    store, tree = _build_on_disk(str(tmp_path / "b.sbt"), 64)
    span = Interval(10, HORIZON - 10)

    def insert_and_undo():
        tree.insert(1, span)
        tree.delete(1, span)

    benchmark(insert_and_undo)
    store.close()
