"""Figure 23, "compute time" column: build the aggregate from scratch.

Regenerates the comparison table's asymptotic compute claims over seeded
uniform workloads:

=================  ==========  ===========================
algorithm          paper says  expected empirical shape
=================  ==========  ===========================
basic [Tum92]      O(n^2)      exponent ~2
balanced tree      O(n log n)  exponent ~1
end-point sort     O(n log n)  exponent ~1
merge sort         O(n log n)  exponent ~1 (MIN/MAX)
aggregation tree   O(n^2)*     ~1 on random input, ~2 on
                               start-ordered input
SB-tree            O(n log n)  exponent ~1
=================  ==========  ===========================

(*) the aggregation tree's quadratic worst case needs ordered arrivals
-- the warehouse common case -- which is measured separately here and
in bench_ordered_inserts.py.
"""

import pytest

from repro import SBTree
from repro.baselines import (
    aggregation_tree,
    balanced_tree,
    bucket,
    endpoint_sort,
    merge_sort,
    naive,
)
from repro.benchlib import Series, geometric_sizes, scaled, time_call
from repro.workloads import ordered, uniform


def sbtree_compute(facts, kind):
    tree = SBTree(kind, branching=32, leaf_capacity=32)
    for value, interval in facts:
        tree.insert(value, interval)
    return tree.to_table()


INVERTIBLE_ALGOS = {
    "basic[Tum92]": naive.compute,
    "balanced-tree": balanced_tree.compute,
    "endpoint-sort": endpoint_sort.compute,
    "aggr-tree": aggregation_tree.compute,
    "bucket": bucket.compute,
    "SB-tree": sbtree_compute,
}

SIZES = geometric_sizes(scaled(250), 4)


def _compute_workload(n, seed):
    # Durations ~horizon/8 on average: each tuple overlaps a constant
    # fraction of the m constant intervals, which is the regime where
    # the O(mn) basic algorithm is visibly quadratic.
    return uniform(n, horizon=n * 20, max_duration=n * 5, seed=seed)


def test_compute_time_series_sum(report):
    """The full Figure 23 compute-time comparison for SUM."""
    series = Series("n", SIZES)
    tables = {}
    for name, algo in INVERTIBLE_ALGOS.items():
        times = []
        for n in SIZES:
            facts = _compute_workload(n, seed=11)
            tables[(name, n)] = algo(facts, "sum")
            times.append(time_call(lambda: algo(facts, "sum"), repeat=3))
        series.add(name, times)
    report("Figure 23 / compute time (SUM, uniform workload)", series.render(), series=series)
    # Correctness: every algorithm computed the same aggregate.
    for n in SIZES:
        expected = tables[("endpoint-sort", n)]
        for name in INVERTIBLE_ALGOS:
            assert tables[(name, n)] == expected, f"{name} diverged at n={n}"
    # Shape: the quadratic basic algorithm scales visibly worse than the
    # O(n log n) end-point sort, and loses outright at the largest size.
    assert series.exponent("basic[Tum92]") > series.exponent("endpoint-sort") + 0.2
    assert (
        series.columns["basic[Tum92]"][-1] > 2 * series.columns["endpoint-sort"][-1]
    )


def test_compute_time_series_minmax(report):
    """Figure 23 compute-time rows that apply to MIN/MAX."""
    algos = {
        "basic[Tum92]": naive.compute,
        "merge-sort": merge_sort.compute,
        "aggr-tree": aggregation_tree.compute,
        "SB-tree": sbtree_compute,
    }
    series = Series("n", SIZES)
    tables = {}
    for name, algo in algos.items():
        times = []
        for n in SIZES:
            facts = _compute_workload(n, seed=13)
            tables[(name, n)] = algo(facts, "max")
            times.append(time_call(lambda: algo(facts, "max"), repeat=3))
        series.add(name, times)
    report("Figure 23 / compute time (MAX, uniform workload)", series.render(), series=series)
    for n in SIZES:
        expected = tables[("merge-sort", n)]
        for name in algos:
            assert tables[(name, n)] == expected, f"{name} diverged at n={n}"


def test_aggregation_tree_quadratic_on_ordered_input(report):
    """[KS95]'s worst case: ordered arrivals degenerate the tree."""
    series = Series("n", SIZES)
    for name, maker in (
        ("aggr-tree(ordered)", lambda facts: aggregation_tree.compute(facts, "sum")),
        ("SB-tree(ordered)", lambda facts: sbtree_compute(facts, "sum")),
    ):
        times = []
        for n in SIZES:
            facts = ordered(n, k=0, gap=10, max_duration=50, seed=17)
            times.append(time_call(lambda: maker(facts)))
        series.add(name, times)
    # Depth is the deterministic witness of the degeneration.
    depths = []
    heights = []
    for n in SIZES:
        facts = ordered(n, k=0, gap=10, max_duration=50, seed=17)
        tree = aggregation_tree.AggregationTree("sum")
        sb = SBTree("sum", branching=32, leaf_capacity=32)
        for value, interval in facts:
            tree.insert(value, interval)
            sb.insert(value, interval)
        depths.append(tree.depth())
        heights.append(sb.height)
    series.add("aggr-tree depth", depths)
    series.add("SB-tree height", heights)
    report("Figure 23 / ordered-input degeneration", series.render(), series=series)
    assert depths[-1] > SIZES[-1] / 4, "aggregation tree should degenerate"
    assert heights[-1] <= 4, "SB-tree must stay balanced"
    assert series.exponent("aggr-tree depth") > 0.9
    assert series.exponent("SB-tree height") < 0.3


@pytest.mark.parametrize("name", list(INVERTIBLE_ALGOS))
def test_benchmark_compute_sum(benchmark, name):
    """pytest-benchmark timings at a fixed size (SUM)."""
    facts = _compute_workload(scaled(500), seed=11)
    benchmark(INVERTIBLE_ALGOS[name], facts, "sum")


@pytest.mark.parametrize("name,algo", [("merge-sort", merge_sort.compute)])
def test_benchmark_compute_max(benchmark, name, algo):
    facts = _compute_workload(scaled(500), seed=13)
    benchmark(algo, facts, "max")
