"""Section 3.3's segment-tree claim: insertion cost vs valid-interval length.

An SB-tree insertion records a fully covering effect at an interior
interval and stops -- so the cost of inserting a tuple is O(h)
regardless of how long its valid interval is.  Structures without the
segment-tree feature (the directly materialized view; and, for
contrast, the two endpoints' leaf updates alone) pay proportionally to
the number of constant intervals covered.
"""

import pytest

from repro import Interval, SBTree
from repro.benchlib import Series, scaled, time_call
from repro.warehouse import MaterializedView
from repro.workloads import uniform

N = scaled(2000)
HORIZON = 100_000
BASE = uniform(N, horizon=HORIZON, max_duration=300, seed=51)


def _fresh_sb():
    tree = SBTree("sum", branching=32, leaf_capacity=32)
    for value, interval in BASE:
        tree.insert(value, interval)
    return tree


def test_insert_cost_flat_in_interval_length(report):
    lengths = [100, 1_000, 10_000, HORIZON - 2]
    sb = _fresh_sb()
    view = MaterializedView("sum")
    for value, interval in BASE:
        view.insert(value, interval)

    series = Series("interval_len", lengths)
    sb_reads, view_rows, sb_times, view_times = [], [], [], []
    for length in lengths:
        span = Interval(1, 1 + length)
        snapshot = sb.store.stats.snapshot()
        sb.insert(2, span)
        sb.delete(2, span)
        sb_reads.append((sb.store.stats - snapshot).reads / 2)
        before = view.rows_touched
        view.insert(2, span)
        view.delete(2, span)
        view_rows.append((view.rows_touched - before) / 2)
        sb_times.append(
            time_call(lambda: (sb.insert(2, span), sb.delete(2, span))) / 2
        )
        view_times.append(
            time_call(lambda: (view.insert(2, span), view.delete(2, span))) / 2
        )
    series.add("SB-tree node reads", sb_reads)
    series.add("view rows touched", view_rows)
    series.add("SB-tree s/op", sb_times)
    series.add("view s/op", view_times)
    report("Section 3.3 / insert cost vs valid-interval length", series.render(), series=series)
    # SB-tree cost is flat in the interval length...
    assert series.exponent("SB-tree node reads") < 0.25
    # ...the direct view's is essentially linear in covered intervals.
    assert series.exponent("view rows touched") > 0.6
    assert view_rows[-1] > 20 * sb_reads[-1]


def test_height_bounds_every_update(report):
    """Every update touches at most ~4x height nodes (two paths, merges)."""
    sb = _fresh_sb()
    height = sb.height
    worst = 0
    for i, (value, interval) in enumerate(BASE[: scaled(200)]):
        snapshot = sb.store.stats.snapshot()
        sb.insert(value, interval)
        worst = max(worst, (sb.store.stats - snapshot).reads)
    report(
        "Section 3.3 / per-update node-read bound",
        f"height={height}  worst reads in {scaled(200)} updates={worst}  "
        f"bound=8*height={8 * height}",
    )
    assert worst <= 8 * height


@pytest.mark.parametrize("length", [100, 10_000, HORIZON - 2])
def test_benchmark_insert_by_length(benchmark, length):
    sb = _fresh_sb()
    span = Interval(1, 1 + length)

    def insert_and_undo():
        sb.insert(2, span)
        sb.delete(2, span)

    benchmark(insert_and_undo)
