"""Section 2's bucket parallelization ([MLI00], shared-nothing).

Regenerates the claim that bucket partitioning parallelizes temporal
aggregation: buckets are independent work units, so worker count scales
the per-worker load down.  We report wall-clock for sequential,
thread-pool and process-pool execution plus the per-bucket/meta work
split.  (In CPython, thread pools are GIL-bound for this pure-Python
workload; the process pool carries pickling overhead at these sizes --
the *correctness* of the parallel decomposition is asserted, speedup is
reported, and per-bucket independence is what the paper's cluster
exploited.)
"""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro.baselines.bucket import partition
from repro.benchlib import Series, format_table, scaled, time_call
from repro.core import reference
from repro.parallel import parallel_build, parallel_compute
from repro.workloads import uniform

N = scaled(3000)
FACTS = uniform(N, horizon=N * 20, max_duration=N, seed=73)


def test_parallel_routes_report(report):
    rows = []
    expected = reference.instantaneous_table(FACTS, "sum")
    sequential = time_call(lambda: parallel_compute(FACTS, "sum", num_buckets=8))
    rows.append(("sequential", 1, sequential))
    for workers in (2, 4):
        with ThreadPoolExecutor(max_workers=workers) as pool:
            got_table = parallel_compute(FACTS, "sum", num_buckets=8, executor=pool)
            assert got_table == expected
            elapsed = time_call(
                lambda: parallel_compute(FACTS, "sum", num_buckets=8, executor=pool)
            )
        rows.append((f"threads x{workers}", workers, elapsed))
    with ProcessPoolExecutor(max_workers=2) as pool:
        got_table = parallel_compute(FACTS, "sum", num_buckets=8, executor=pool)
        assert got_table == expected
        elapsed = time_call(
            lambda: parallel_compute(FACTS, "sum", num_buckets=8, executor=pool)
        )
    rows.append(("processes x2", 2, elapsed))
    report(
        "Section 2 / parallel bucket aggregation",
        format_table(["executor", "workers", "seconds"], rows),
    )


def test_bucket_load_balance(report):
    """Per-bucket independence: the work split the cluster would see."""
    lo = min(i.start for _, i in FACTS)
    hi = max(i.end for _, i in FACTS)
    rows = []
    for nb in (4, 16, 64):
        width = (hi - lo) / nb
        edges = [lo + i * width for i in range(nb)] + [hi]
        buckets, meta = partition(FACTS, edges)
        sizes = sorted(len(b) for b in buckets)
        rows.append(
            (nb, len(meta), sizes[-1], sizes[len(sizes) // 2], sizes[0])
        )
    report(
        "Section 2 / bucket load balance (meta array = long spanners)",
        format_table(
            ["buckets", "meta facts", "max bucket", "median", "min"], rows
        ),
    )
    # More buckets push more tuples into the meta array (they span more
    # boundaries) -- the trade-off [MLI00] tunes.
    metas = [r[1] for r in rows]
    assert metas[0] <= metas[-1]


def test_parallel_build_equivalence():
    with ThreadPoolExecutor(max_workers=4) as pool:
        tree = parallel_build(
            FACTS, "sum", num_buckets=8, executor=pool,
            branching=32, leaf_capacity=32,
        )
    assert tree.to_table() == reference.instantaneous_table(FACTS, "sum")


@pytest.mark.parametrize("route", ["sequential", "threads"])
def test_benchmark_parallel_compute(benchmark, route):
    if route == "sequential":
        benchmark(parallel_compute, FACTS, "sum", num_buckets=8)
    else:
        with ThreadPoolExecutor(max_workers=4) as pool:
            benchmark(
                lambda: parallel_compute(FACTS, "sum", num_buckets=8, executor=pool)
            )
