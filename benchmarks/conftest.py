"""Shared benchmark infrastructure.

Each benchmark module measures one figure/table/claim of the paper (see
DESIGN.md's experiment index) and records a printed series via the
``report`` fixture.  Reports are written to ``benchmarks/results/`` and
echoed in the terminal summary, so they survive pytest's output capture
and ``--benchmark-only`` runs alike.

Set ``REPRO_BENCH_SCALE`` (default 1) to scale every sweep size up or
down, e.g. ``REPRO_BENCH_SCALE=4`` for slower, higher-resolution runs.

When a benchmark passes its :class:`repro.benchlib.Series` to the
``report`` fixture (``report(title, text, series=series)``), a
machine-readable ``BENCH_<slug>.json`` companion is written next to the
text report.
"""

import os

import pytest

from repro.benchlib import Series, slugify, write_bench_json

_REPORTS = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture()
def report():
    """Record a named series report (printed in the terminal summary)."""

    def _record(title: str, text: str, series: Series = None) -> None:
        _REPORTS.append((title, text))
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        with open(os.path.join(_RESULTS_DIR, f"{slugify(title)}.txt"), "w") as f:
            f.write(text + "\n")
        if series is not None:
            write_bench_json(_RESULTS_DIR, title, series)

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for title, text in _REPORTS:
        terminalreporter.section(title)
        terminalreporter.write_line(text)
