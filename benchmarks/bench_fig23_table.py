"""Figure 23, reproduced as a single table.

The paper's evaluation centrepiece is a comparison matrix: per
algorithm, the aggregates handled, memory- vs disk-residency, compute
complexity, incremental maintainability, usability as an index, and
cumulative-aggregate support.  This benchmark regenerates the whole
matrix, replacing the paper's analytical O(.) entries with measured
log-log scaling exponents over seeded sweeps (compute: build time;
update/lookup: logical node touches on ordered arrivals, the warehouse
worst case).
"""

from repro import DualTreeAggregate, MSBTree, SBTree
from repro.baselines import (
    AggregationTree,
    aggregation_tree,
    balanced_tree,
    endpoint_sort,
    merge_sort,
    naive,
)
from repro.benchlib import Series, fit_exponent, format_table, geometric_sizes, scaled, time_call
from repro.workloads import ordered, uniform

SIZES = geometric_sizes(scaled(250), 3)


def _sbtree_build(facts, kind="sum"):
    tree = SBTree(kind, branching=32, leaf_capacity=32)
    for value, interval in facts:
        tree.insert(value, interval)
    return tree


def _compute_exponent(builder) -> float:
    times = []
    for n in SIZES:
        facts = uniform(n, horizon=n * 20, max_duration=n * 5, seed=101)
        times.append(time_call(lambda: builder(facts), repeat=3))
    return fit_exponent(SIZES, times)


def _sbtree_touch_exponents():
    """Measured update/lookup node touches vs n (ordered arrivals)."""
    updates, lookups = [], []
    for n in SIZES:
        facts = ordered(n, k=0, gap=7, max_duration=70, seed=103)
        tree = _sbtree_build(facts)
        snapshot = tree.store.stats.snapshot()
        tree.insert(1, (0, n * 7))
        updates.append((tree.store.stats - snapshot).reads)
        snapshot = tree.store.stats.snapshot()
        tree.lookup(n * 3)
        lookups.append((tree.store.stats - snapshot).reads)
    return fit_exponent(SIZES, updates), fit_exponent(SIZES, lookups)


def _aggtree_depth_exponent():
    depths = []
    for n in SIZES:
        facts = ordered(n, k=0, gap=7, max_duration=70, seed=103)
        tree = AggregationTree("sum")
        for value, interval in facts:
            tree.insert(value, interval)
        depths.append(tree.depth())
    return fit_exponent(SIZES, depths)


def test_figure23_reproduced(report):
    compute = {
        "basic [Tum92]": _compute_exponent(lambda f: naive.compute(f, "sum")),
        "balanced tree [MLI00]": _compute_exponent(
            lambda f: balanced_tree.compute(f, "sum")
        ),
        "end-point sort (App. A)": _compute_exponent(
            lambda f: endpoint_sort.compute(f, "sum")
        ),
        "merge sort [MLI00]": _compute_exponent(
            lambda f: merge_sort.compute(f, "max")
        ),
        "aggregation tree [KS95]": _compute_exponent(
            lambda f: aggregation_tree.compute(f, "sum")
        ),
        "SB-tree": _compute_exponent(_sbtree_build),
        "dual SB-trees": _compute_exponent(
            lambda f: _dual_build(f)
        ),
        "MSB-tree": _compute_exponent(lambda f: _msb_build(f)),
    }
    update_exp, lookup_exp = _sbtree_touch_exponents()
    agg_depth_exp = _aggtree_depth_exponent()

    def fmt(e):
        return f"~n^{e:.2f}"

    rows = [
        ("basic [Tum92]", "all", "disk", fmt(compute["basic [Tum92]"]),
         "no", "no", "no"),
        ("balanced tree [MLI00]", "SUM/COUNT/AVG", "memory",
         fmt(compute["balanced tree [MLI00]"]), "no", "no", "no"),
        ("end-point sort (App. A)", "SUM/COUNT/AVG", "disk",
         fmt(compute["end-point sort (App. A)"]), "no", "no", "no"),
        ("merge sort [MLI00]", "MIN/MAX", "disk",
         fmt(compute["merge sort [MLI00]"]), "no", "no", "no"),
        ("aggregation tree [KS95]", "all", "memory",
         fmt(compute["aggregation tree [KS95]"]),
         f"O(n): depth {fmt(agg_depth_exp)}",
         f"O(n): depth {fmt(agg_depth_exp)}", "no"),
        ("SB-tree", "all", "disk", fmt(compute["SB-tree"]),
         f"touches {fmt(update_exp)}", f"reads {fmt(lookup_exp)}",
         "fixed offset"),
        ("dual SB-trees", "SUM/COUNT/AVG", "disk",
         fmt(compute["dual SB-trees"]), f"touches {fmt(update_exp)}",
         f"reads {fmt(lookup_exp)}", "any offset"),
        ("MSB-tree", "MIN/MAX", "disk", fmt(compute["MSB-tree"]),
         f"touches {fmt(update_exp)}", f"reads {fmt(lookup_exp)}",
         "any offset"),
    ]
    report(
        "Figure 23 reproduced (measured scaling exponents)",
        format_table(
            ["algorithm", "aggregates", "residency", "compute",
             "incremental update", "index lookup", "cumulative"],
            rows,
        ),
    )
    # The paper's qualitative separations, measured:
    assert compute["basic [Tum92]"] > compute["end-point sort (App. A)"] + 0.2
    assert update_exp < 0.4 and lookup_exp < 0.4
    assert agg_depth_exp > 0.8


def _dual_build(facts):
    dual = DualTreeAggregate("sum", branching=32, leaf_capacity=32)
    for value, interval in facts:
        dual.insert(value, interval)
    return dual


def _msb_build(facts):
    msb = MSBTree("max", branching=32, leaf_capacity=32)
    for value, interval in facts:
        msb.insert(value, interval)
    return msb
