"""Ablation: branching factor / leaf capacity sweep (DESIGN.md).

The paper sizes b and l so one node fills one disk page ("on the order
of hundreds").  This sweep shows why: higher fanout means shorter trees
and fewer node touches per operation, until per-node list-manipulation
costs start to dominate in-memory.
"""

import pytest

from repro import SBTree
from repro.benchlib import Series, scaled, time_call
from repro.workloads import uniform

N = scaled(2000)
FACTS = uniform(N, horizon=N * 20, max_duration=400, seed=91)
PROBES = [N * 20 * i // 100 for i in range(100)]


def test_branching_sweep(report):
    factors = [4, 8, 32, 128]
    series = Series("b=l", factors)
    heights, nodes, build_times, lookup_reads = [], [], [], []
    for b in factors:
        tree = SBTree("sum", branching=b, leaf_capacity=b)
        build_times.append(
            time_call(lambda: [tree.insert(v, i) for v, i in FACTS])
        )
        heights.append(tree.height)
        nodes.append(tree.node_count())
        snapshot = tree.store.stats.snapshot()
        for t in PROBES:
            tree.lookup(t)
        lookup_reads.append((tree.store.stats - snapshot).reads / len(PROBES))
    series.add("height", heights)
    series.add("nodes", nodes)
    series.add("build s", build_times)
    series.add("reads/lookup", lookup_reads)
    report("Ablation / branching factor sweep", series.render(with_exponents=False), series=series)
    assert heights[-1] < heights[0]
    assert lookup_reads[-1] < lookup_reads[0]
    # Same logical contents at every fanout.
    tables = []
    for b in (4, 128):
        tree = SBTree("sum", branching=b, leaf_capacity=b)
        for value, interval in FACTS[: scaled(300)]:
            tree.insert(value, interval)
        tables.append(tree.to_table())
    assert tables[0] == tables[1]


def test_leaf_capacity_vs_branching(report):
    """The paper: l may exceed b since leaves store no child pointers."""
    combos = [(8, 8), (8, 16), (8, 32)]
    rows = []
    for b, l in combos:
        tree = SBTree("sum", branching=b, leaf_capacity=l)
        for value, interval in FACTS:
            tree.insert(value, interval)
        rows.append((f"b={b},l={l}", tree.height, tree.node_count()))
    from repro.benchlib import format_table

    report(
        "Ablation / leaf capacity vs branching",
        format_table(["config", "height", "nodes"], rows),
    )
    # Larger leaves -> fewer nodes overall.
    assert rows[-1][2] < rows[0][2]


@pytest.mark.parametrize("b", [4, 32, 128])
def test_benchmark_build_by_branching(benchmark, b):
    facts = FACTS[: scaled(500)]

    def build():
        tree = SBTree("sum", branching=b, leaf_capacity=b)
        for value, interval in facts:
            tree.insert(value, interval)
        return tree

    benchmark(build)
