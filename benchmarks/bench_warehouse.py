"""End-to-end warehouse maintenance throughput.

The paper's setting is a warehouse keeping *several* temporal aggregate
views fresh over one change stream.  This benchmark measures update
throughput as the number of maintained views grows (each additional
view adds one O(log n) index maintenance per change), and compares the
all-views cost against recomputing any single aggregate from scratch --
the incremental-vs-recompute argument of Section 1.
"""

import pytest

from repro.baselines import endpoint_sort
from repro.benchlib import Series, format_table, scaled, time_call
from repro.relation import TemporalRelation
from repro.warehouse import ANY_WINDOW, TemporalAggregateView
from repro.workloads import insert_delete_stream

OPS = insert_delete_stream(
    scaled(1200), delete_fraction=0.25, horizon=40_000, max_duration=2_000, seed=97
)


def _make_views(relation, count):
    """A realistic mix of view shapes, cycled up to *count*."""
    shapes = [
        ("sum", 0),
        ("avg", 0),
        ("count", 7_000),
        ("sum", ANY_WINDOW),
        ("avg", ANY_WINDOW),
    ]
    views = []
    for i in range(count):
        kind, window = shapes[i % len(shapes)]
        views.append(
            TemporalAggregateView(
                f"v{i}", relation, kind, window=window,
                branching=32, leaf_capacity=32,
            )
        )
    return views


def _replay(relation):
    live = {}
    for i, op in enumerate(OPS):
        if op.is_insert:
            live[i] = relation.insert(op.value, op.interval)
        else:
            victim_key = next(
                k for k, row in live.items()
                if row.value == op.value and row.valid == op.interval
            )
            relation.delete(live.pop(victim_key))


def test_throughput_vs_view_count(report):
    counts = [0, 1, 2, 5, 10]
    series = Series("views", [c or 0.5 for c in counts])
    seconds, per_op_us = [], []
    for count in counts:
        relation = TemporalRelation("stream")
        _make_views(relation, count)
        elapsed = time_call(lambda: _replay(relation))
        seconds.append(elapsed)
        per_op_us.append(elapsed / len(OPS) * 1e6)
    series.add("replay s", seconds)
    series.add("us/op", per_op_us)
    report(
        "Warehouse / maintenance throughput vs view count",
        series.render(with_exponents=False),
        series=series,
    )
    # Cost grows roughly linearly in the number of views: the marginal
    # cost of the tenth view is in the same ballpark as the first's.
    marginal_first = seconds[1] - seconds[0]
    marginal_avg_at_ten = (seconds[-1] - seconds[0]) / 10
    assert marginal_avg_at_ten < 3 * marginal_first


def test_incremental_vs_recompute(report):
    """After history accumulates, one more update is far cheaper than a
    recomputation -- and recomputation needs the full base table, which
    the warehouse may not even retain (Section 1)."""
    relation = TemporalRelation("stream")
    view = TemporalAggregateView(
        "sum", relation, "sum", branching=32, leaf_capacity=32
    )
    _replay(relation)
    facts = relation.facts()

    update = time_call(
        lambda: (
            relation.delete(relation.insert(5, (100, 20_000)))
        )
    )
    recompute = time_call(lambda: endpoint_sort.compute(facts, "sum"))
    report(
        "Warehouse / one incremental update vs full recomputation",
        format_table(
            ["approach", "seconds"],
            [
                ("incremental (insert+delete)", update),
                ("recompute from base table", recompute),
            ],
        ),
    )
    assert update < recompute


@pytest.mark.parametrize("views", [1, 5])
def test_benchmark_replay(benchmark, views):
    ops = OPS[: scaled(300)]

    def run():
        relation = TemporalRelation("stream")
        _make_views(relation, views)
        live = {}
        for i, op in enumerate(ops):
            if op.is_insert:
                live[i] = relation.insert(op.value, op.interval)
            else:
                victim_key = next(
                    k for k, row in live.items()
                    if row.value == op.value and row.valid == op.interval
                )
                relation.delete(live.pop(victim_key))

    benchmark(run)
