"""Section 1's motivating experiment: maintaining a materialized temporal
aggregate view directly vs via an SB-tree index.

The paper's "Gill" example: inserting one tuple with a long valid
interval into `Prescription` forces more than half of the directly
materialized `SumDosage` rows to be rewritten, while the SB-tree absorbs
the same insertion in O(log m) node touches.  This benchmark replays a
mixed insert/delete warehouse stream against both representations and
sweeps the long-interval fraction.
"""

import pytest

from repro import Interval, SBTree
from repro.benchlib import Series, scaled, time_call
from repro.core import reference
from repro.warehouse import MaterializedView
from repro.workloads import insert_delete_stream, long_interval_mix

N = scaled(1500)


def _replay(index, ops):
    for op in ops:
        if op.is_insert:
            index.insert(op.value, op.interval)
        else:
            index.delete(op.value, op.interval)


def test_mixed_stream_maintenance(report):
    """Replay a warehouse change stream into both representations."""
    fractions = [0.0, 0.02, 0.1, 0.3]
    series = Series("long_frac", [f or 0.001 for f in fractions])
    view_times, sb_times, view_rows, sb_reads = [], [], [], []
    for fraction in fractions:
        facts = long_interval_mix(
            N, horizon=50_000, short_duration=200, long_fraction=fraction, seed=41
        )
        view = MaterializedView("sum")
        sb = SBTree("sum", branching=32, leaf_capacity=32)
        view_times.append(
            time_call(lambda: [view.insert(v, i) for v, i in facts]) / N
        )
        sb_times.append(time_call(lambda: [sb.insert(v, i) for v, i in facts]) / N)
        view_rows.append(view.rows_touched / N)
        sb_reads.append(sb.store.stats.reads / N)
        assert sb.to_table() == view.to_table()
    series.add("view s/update", view_times)
    series.add("SB-tree s/update", sb_times)
    series.add("view rows/update", view_rows)
    series.add("SB-tree reads/update", sb_reads)
    report(
        "Section 1 / direct view maintenance vs SB-tree (long-interval sweep)",
        series.render(with_exponents=False),
        series=series,
    )
    # With 30% long intervals the direct view touches orders of
    # magnitude more rows than the SB-tree touches nodes.
    assert view_rows[-1] > 10 * sb_reads[-1]
    # And the effect grows with the long fraction.
    assert view_rows[-1] > 5 * view_rows[0]


def test_deletion_stream_correctness(report):
    """Both representations stay correct under interleaved deletions."""
    ops = insert_delete_stream(
        scaled(800), delete_fraction=0.35, horizon=20_000, max_duration=2_000, seed=43
    )
    view = MaterializedView("avg")
    sb = SBTree("avg", branching=32, leaf_capacity=32)
    live = []
    for op in ops:
        if op.is_insert:
            view.insert(op.value, op.interval)
            sb.insert(op.value, op.interval)
            live.append((op.value, op.interval))
        else:
            view.delete(op.value, op.interval)
            sb.delete(op.value, op.interval)
            live.remove((op.value, op.interval))
    expected = reference.instantaneous_table(live, "avg")
    assert sb.to_table() == expected
    assert view.to_table() == expected
    report(
        "Section 1 / mixed insert-delete stream",
        f"ops={len(ops)}  live tuples={len(live)}  "
        f"constant intervals={len(expected)}\n"
        f"view rows touched={view.rows_touched}  "
        f"SB-tree node reads={sb.store.stats.reads}",
    )


@pytest.mark.parametrize("target", ["materialized_view", "sbtree"])
def test_benchmark_long_interval_update(benchmark, target):
    """The 'Gill' insertion against a large existing view."""
    facts = long_interval_mix(N, horizon=50_000, long_fraction=0.0, seed=47)
    if target == "materialized_view":
        index = MaterializedView("sum")
    else:
        index = SBTree("sum", branching=32, leaf_capacity=32)
    for value, interval in facts:
        index.insert(value, interval)
    gill = Interval(100, 49_000)

    def insert_and_undo():
        index.insert(5, gill)
        index.delete(5, gill)

    benchmark(insert_and_undo)
