"""Section 2's k-ordered discussion: chronological warehouse arrivals.

Claims regenerated:

* [KS95]'s k-ordered aggregation tree garbage-collects finalized
  intervals, bounding memory -- but it stops being usable as an index,
  and its worst case is still O(n^2).
* The SB-tree needs no such trade-off: balanced under any arrival
  order, full history remains indexed.
"""

import pytest

from repro import SBTree
from repro.baselines import AggregationTree, KOrderedAggregationTree
from repro.benchlib import Series, format_table, geometric_sizes, scaled, time_call
from repro.workloads import ordered


def test_memory_and_indexability(report):
    n = scaled(3000)
    facts = ordered(n, k=3, gap=5, max_duration=60, seed=81)
    plain = AggregationTree("sum")
    gc = KOrderedAggregationTree("sum", k=3)
    sb = SBTree("sum", branching=32, leaf_capacity=32)
    for value, interval in facts:
        plain.insert(value, interval)
        gc.insert(value, interval)
        sb.insert(value, interval)
    assert gc.to_table() == plain.to_table() == sb.to_table()
    # The GC variant cannot answer historical lookups any more...
    early_instant = facts[0][1].start
    with pytest.raises(KeyError):
        gc.lookup(early_instant)
    # ...but the SB-tree can.
    assert sb.lookup(early_instant) == plain.lookup(early_instant)
    report(
        "Section 2 / k-ordered GC vs SB-tree (n=%d, k=3)" % n,
        format_table(
            ["structure", "live nodes", "indexes history?"],
            [
                ("aggregation tree", plain.node_count, "yes (O(n) lookups)"),
                ("k-ordered aggr tree", gc.live_node_count, "no (GC'd)"),
                ("SB-tree", sb.node_count(), "yes (O(log n) lookups)"),
            ],
        ),
    )
    assert gc.live_node_count < plain.node_count / 10
    assert sb.node_count() < plain.node_count


def test_build_time_under_ordered_arrival(report):
    sizes = geometric_sizes(scaled(250), 4)
    series = Series("n", sizes)
    results = {"aggr-tree": [], "k-ordered": [], "SB-tree": []}
    for n in sizes:
        facts = ordered(n, k=0, gap=5, max_duration=60, seed=83)
        plain = AggregationTree("sum")
        results["aggr-tree"].append(
            time_call(lambda: [plain.insert(v, i) for v, i in facts])
        )
        gc = KOrderedAggregationTree("sum", k=0)
        results["k-ordered"].append(
            time_call(lambda: [gc.insert(v, i) for v, i in facts])
        )
        sb = SBTree("sum", branching=32, leaf_capacity=32)
        results["SB-tree"].append(
            time_call(lambda: [sb.insert(v, i) for v, i in facts])
        )
    for name, times in results.items():
        series.add(name, times)
    report("Section 2 / build time under ordered arrival", series.render(), series=series)
    # The plain aggregation tree is superlinear; the SB-tree near-linear.
    assert series.exponent("aggr-tree") > series.exponent("SB-tree") + 0.25


@pytest.mark.parametrize("structure", ["aggr-tree", "k-ordered", "sb-tree"])
def test_benchmark_ordered_build(benchmark, structure):
    n = scaled(500)
    facts = ordered(n, k=0, gap=5, max_duration=60, seed=83)

    def build():
        if structure == "aggr-tree":
            index = AggregationTree("sum")
        elif structure == "k-ordered":
            index = KOrderedAggregationTree("sum", k=0)
        else:
            index = SBTree("sum", branching=32, leaf_capacity=32)
        for value, interval in facts:
            index.insert(value, interval)
        return index

    benchmark(build)
