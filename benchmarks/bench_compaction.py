"""Section 3.6's compaction claims.

* SUM/COUNT/AVG trees are kept compact *at all times* by per-update
  ``imerge``: after deleting everything, the tree is empty again, and
  tree size tracks the number of constant intervals m, not the number
  of updates n.
* MIN/MAX trees skip per-update merging; their size tracks n until a
  batch ``bmerge`` compacts them to m in O(n + m log m).
"""

import pytest

from repro import Interval, MSBTree, SBTree, check_tree
from repro.benchlib import Series, geometric_sizes, scaled, time_call
from repro.workloads import insert_delete_stream, uniform


def test_sum_tree_size_tracks_constant_intervals(report):
    """imerge keeps the SUM tree proportional to m even as n churns."""
    ops = insert_delete_stream(
        scaled(2000), delete_fraction=0.45, horizon=5_000, max_duration=500, seed=61
    )
    tree = SBTree("sum", branching=8, leaf_capacity=8)
    points = []
    live = 0
    for i, op in enumerate(ops):
        if op.is_insert:
            tree.insert(op.value, op.interval)
            live += 1
        else:
            tree.delete(op.value, op.interval)
            live -= 1
        if (i + 1) % (len(ops) // 8) == 0:
            points.append((i + 1, live, len(tree.to_table()), tree.node_count()))
    check_tree(tree)
    from repro.benchlib import format_table

    report(
        "Section 3.6 / SUM tree stays compact under churn",
        format_table(["ops", "live tuples", "constant intervals m", "tree nodes"], points),
    )
    # Node count stays proportional to m (amply bounded by it).
    for _, _, m, nodes in points:
        assert nodes <= max(4, m), f"{nodes} nodes for {m} constant intervals"


def test_minmax_bmerge_compacts(report):
    """MIN/MAX trees are not kept compact per update; bmerge reclaims.

    The tree accumulates boundaries from n varied inserts; one final
    dominating tuple makes almost every leaf interval carry the same
    MAX, yet without per-update merging the structure keeps all its
    boundaries.  ``bmerge`` collapses it to the m constant intervals.
    """
    sizes = geometric_sizes(scaled(250), 4)
    series = Series("n", sizes)
    before_nodes, after_nodes, m_sizes, bmerge_times = [], [], [], []
    for n in sizes:
        facts = uniform(
            n, horizon=50_000, max_duration=500, value_range=(1, 100), seed=63
        )
        tree = SBTree("max", branching=8, leaf_capacity=8)
        for value, interval in facts:
            tree.insert(value, interval)
        tree.insert(1000, Interval(0, 60_000))  # dominates everything
        table = tree.to_table()
        before_nodes.append(tree.node_count())
        m_sizes.append(len(table))
        bmerge_times.append(time_call(tree.compact))
        after_nodes.append(tree.node_count())
        assert tree.to_table() == table  # compaction preserves contents
        check_tree(tree, check_compact=True)
    series.add("m", m_sizes)
    series.add("nodes before", before_nodes)
    series.add("nodes after bmerge", after_nodes)
    series.add("bmerge seconds", bmerge_times)
    report("Section 3.6 / bmerge compaction of a MAX tree", series.render(), series=series)
    # Uncompacted size grows with n; compacted size tracks m ~ 1.
    assert series.exponent("nodes before") > 0.4
    assert after_nodes[-1] <= 2
    assert before_nodes[-1] > 20 * after_nodes[-1]


def test_msb_mbmerge_preserves_window_lookups():
    facts = uniform(
        scaled(500), horizon=5_000, max_duration=2_000, value_range=(1, 3), seed=65
    )
    msb = MSBTree("min", branching=8, leaf_capacity=8)
    for value, interval in facts:
        msb.insert(value, interval)
    probes = [(t, w) for t in range(0, 7_000, 500) for w in (0, 100, 2_000)]
    expected = {(t, w): msb.window_lookup(t, w) for t, w in probes}
    msb.mbmerge()
    for (t, w), want in expected.items():
        assert msb.window_lookup(t, w) == want


def test_bulk_vs_insert_rebuild(report):
    """Ablation: the paper's insert-based bmerge vs bottom-up bulk load.

    Both produce logically identical trees; the bulk path is linear in m
    and packs leaves full, the insert path is O(m log m) and leaves
    nodes ~half full after splits.
    """
    sizes = geometric_sizes(scaled(500), 3)
    series = Series("m", [])
    ms, insert_times, bulk_times, insert_nodes, bulk_nodes = [], [], [], [], []
    for n in sizes:
        facts = uniform(n, horizon=n * 40, max_duration=n, seed=69)
        tree = SBTree("sum", branching=8, leaf_capacity=8)
        for value, interval in facts:
            tree.insert(value, interval)
        ms.append(len(tree.to_table()))
        insert_times.append(time_call(lambda: tree.compact()))
        insert_nodes.append(tree.node_count())
        bulk_times.append(time_call(lambda: tree.compact(bulk=True)))
        bulk_nodes.append(tree.node_count())
        check_tree(tree)
    series = Series("m", ms)
    series.add("insert rebuild s", insert_times)
    series.add("bulk rebuild s", bulk_times)
    series.add("insert nodes", insert_nodes)
    series.add("bulk nodes", bulk_nodes)
    report("Ablation / bmerge rebuild strategy", series.render(with_exponents=False), series=series)
    assert all(b <= i for b, i in zip(bulk_nodes, insert_nodes))
    assert bulk_times[-1] < insert_times[-1]


@pytest.mark.parametrize("kind", ["max", "min"])
def test_benchmark_bmerge(benchmark, kind):
    facts = uniform(
        scaled(500), horizon=5_000, max_duration=2_000, value_range=(1, 3), seed=67
    )

    def build_and_compact():
        tree = SBTree(kind, branching=8, leaf_capacity=8)
        for value, interval in facts:
            tree.insert(value, interval)
        tree.compact()
        return tree

    benchmark(build_and_compact)
